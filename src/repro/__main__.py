"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — print the profile's Tables 1-3;
* ``tutmac`` — run the workstation reference simulation and print the
  Table 4 profiling report;
* ``flow`` — run the full Figure 2 design flow on the TUTMAC/TUTWLAN
  system, writing XMI, generated C, the log-file and the report; with
  ``--fault-rate`` the simulation runs under a seeded fault plan;
* ``faults`` — run a seeded fault-injection campaign on the ARQ-enabled
  TUTMAC model and print the recovery ledger;
* ``explore`` — design-space exploration on the supervised candidate-
  evaluation engine: an exhaustive TUTMAC mapping sweep (default) or a
  multi-seed fault-campaign sweep, with ``--workers`` fan-out, a
  ``--cache-dir`` content-addressed result cache, static pruning of
  provably bad candidates (``--prune-static``/``--prune-margin``) and a
  fault-tolerance policy (``--timeout``, ``--max-retries``,
  ``--quarantine-after``).
  Exit codes: 0 clean, 3 interrupted (Ctrl-C, SIGTERM or
  ``--interrupt-after-events`` — completed results are flushed to the
  cache for resume), 4 completed but with quarantined candidates
  (partial ranking; the failure ledger is in the JSON output).
  ``--remote URL`` submits the same campaign to an exploration farm and
  renders the identical result (see ``docs/service.md``);
* ``serve`` — host the exploration farm: an HTTP job queue
  (submit/status/result/cancel/list, ``/v1/metrics``, ``/v1/health``)
  over a crash-safe ``--spool`` directory, with an in-process worker
  pool (``--pool``), bounded queueing (``--max-queue`` → HTTP 429) and
  a cache fast path.  Ctrl-C / SIGTERM drains cleanly and exits 3;
* ``work`` — a standalone farm worker sharding the same ``--spool`` /
  ``--cache-dir`` (run on any machine with the shared filesystem);
  exits 0 after ``--max-jobs``, 3 when interrupted;
* ``submit`` / ``status`` / ``result`` / ``cancel`` / ``jobs`` — farm
  clients: spool a campaign (``submit --wait`` blocks and adopts the
  job's exit code), poll one job, fetch and render its ranking, cancel
  it, or list the ledger;
* ``checkpoint`` — operate on simulation snapshot stores:
  ``inspect`` lists a store's snapshots, ``diff`` structurally compares
  two snapshot files, ``resume`` continues an interrupted ``flow`` run
  from its latest snapshot (byte-identical artefacts, see
  ``docs/checkpoint.md``);
* ``timeline`` — simulate on the TUTWLAN platform and draw a text Gantt
  of the processors;
* ``trace`` — run the example system under the observability tracer and
  print per-PE/bus metrics (``--format text|json``) or the Chrome-trace
  JSON that loads in ui.perfetto.dev (``--format chrome``);
* ``validate <model.xmi>`` — parse an XMI file and run UML well-formedness
  plus the TUT-Profile design rules over it;
* ``lint [model.xmi]`` — run the tutlint static-analysis engine (EFSM,
  dataflow, interval value-analysis, signal-flow and platform-mapping
  passes) over an XMI file or, by default, the built-in TUTMAC/TUTWLAN
  system; ``--rules A001,M002`` restricts the run to listed rules and
  ``--list-rules`` prints the catalogue.

``validate`` and ``lint`` share ``--format text|json`` and a
severity-threshold exit code (``--fail-on``).  Every ``--format json``
output (except ``trace --format chrome``, which must stay a plain
Chrome-trace container) uses the shared envelope
``{"schema": "repro.<kind>/1", "results": ...}`` from
:mod:`repro.util.jsonout`.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tables(args) -> int:
    from repro.tutprofile import TUT_PROFILE, render_table1, render_table2, render_table3

    print(render_table1(TUT_PROFILE))
    print()
    print(render_table2(TUT_PROFILE))
    print()
    print(render_table3(TUT_PROFILE))
    return 0


def _cmd_tutmac(args) -> int:
    from repro.cases.tutmac import build_tutmac
    from repro.profiling import profile_run, render_report
    from repro.simulation import run_reference_simulation

    application = build_tutmac()
    result = run_reference_simulation(application, duration_us=args.duration_us)
    data = profile_run(result, application)
    print(render_report(data, title="TUTMAC profiling report (workstation reference)"))
    return 0


def _flow_inputs(args):
    """The (application, platform, mapping, faults) quad for ``flow``."""
    from repro.cases.tutwlan import build_tutwlan_system

    faults = None
    if args.fault_rate > 0.0:
        from repro.cases.tutmac.params import TutmacParameters
        from repro.faults import build_campaign_plan

        application, platform, mapping = build_tutwlan_system(
            params=TutmacParameters(arq_enabled=True)
        )
        faults = build_campaign_plan(seed=args.seed, fault_rate=args.fault_rate)
    else:
        application, platform, mapping = build_tutwlan_system()
    return application, platform, mapping, faults


def _cmd_flow(args) -> int:
    from repro.flow import run_design_flow

    application, platform, mapping, faults = _flow_inputs(args)
    result = run_design_flow(
        application,
        platform,
        mapping,
        args.workdir,
        duration_us=args.duration_us,
        faults=faults,
        lint=args.lint,
        trace=args.trace,
        explore_factory=(
            "repro.cases.tutwlan:exploration_factory" if args.explore else None
        ),
        explore_cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_events=args.checkpoint_every_events,
    )
    print(result.report_text)
    print()
    print("artefacts:")
    for kind, path in sorted(result.artifacts.items()):
        print(f"  {kind:<8} {path}")
    return 0


def _explore_sweep_specs(args):
    """The candidate list an ``explore``/``submit`` invocation describes."""
    from repro.exploration import mapping_sweep_specs
    from repro.faults import fault_sweep_specs

    if args.mode == "mappings":
        return mapping_sweep_specs(
            "repro.cases.tutwlan:exploration_factory",
            duration_us=args.duration_us,
            limit=args.limit,
        )
    seeds = [int(seed) for seed in args.seeds.split(",") if seed.strip()]
    return fault_sweep_specs(
        seeds, fault_rate=args.fault_rate, duration_us=args.duration_us
    )


def _render_explore_run(run, args) -> int:
    """Shared result rendering for local and ``--remote`` campaigns.

    Returns the campaign exit code: 0 clean, 4 quarantined candidates
    (partial ranking — see docs/exploration.md).
    """
    exit_code = 4 if run.quarantined else 0

    if args.format == "json":
        from repro.util.jsonout import render_envelope

        print(render_envelope("explore", run.to_json_dict(top=args.top)))
        return exit_code

    from repro.util.tables import render_table

    rows = []
    for rank, outcome in enumerate(run.ranking()[: args.top]):
        result = outcome.result
        row = [
            rank + 1,
            round(outcome.cost, 1),
            result.bus_bytes,
            f"{result.max_pe_utilization:.1%}",
        ]
        if args.mode == "faults":
            row += [
                result.fault_injected,
                result.fault_recovered,
                result.fault_residual,
            ]
        row += [
            "cache" if outcome.cached else f"{outcome.elapsed_s:.2f}s",
            outcome.spec.label,
        ]
        rows.append(row)
    headers = ["Rank", "Cost", "Bus bytes", "Peak util"]
    if args.mode == "faults":
        headers += ["Injected", "Recovered", "Residual"]
    headers += ["Time", "Candidate"]
    title = (
        "TUTMAC mapping sweep"
        if args.mode == "mappings"
        else "TUTMAC fault-campaign sweep"
    )
    print(render_table(headers, rows, title=f"{title} (top {len(rows)})"))
    print()
    print(
        f"evaluated {run.evaluated} of {len(run.outcomes)} candidates "
        f"({run.cache_hits} cache hits) in {run.wall_s:.2f}s "
        f"with workers={run.workers}"
    )
    if run.pruned:
        submitted = len(run.outcomes) + len(run.pruned)
        infeasible = sum(1 for r in run.pruned if r.reason == "infeasible")
        print(
            f"pruned {len(run.pruned)} of {submitted} candidates statically "
            f"({infeasible} infeasible, {len(run.pruned) - infeasible} "
            f"dominated; margin {run.prune_margin:g})"
        )
    counters = run.supervisor_counters()
    if any(counters.values()) or run.quarantined:
        print(
            "failures: "
            f"{counters['timeouts']} timeouts, {counters['crashes']} crashes, "
            f"{counters['errors']} errors; {counters['retries']} retries, "
            f"{len(run.quarantined)} quarantined"
        )
    return exit_code


def _explore_job_request(args, specs):
    """Map ``explore``-family flags onto a service :class:`JobRequest`."""
    from repro.service import JobRequest

    return JobRequest(
        specs=tuple(specs),
        workers=args.workers,
        mode=args.mode,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        quarantine_after=args.quarantine_after,
        worker_faults=tuple(args.inject_worker_fault),
        prune_static=args.prune_static,
        prune_margin=args.prune_margin,
        label=f"cli:{args.mode}",
    )


def _explore_remote(args, specs) -> int:
    """Run the campaign through an exploration farm (``--remote URL``).

    Same flags, same rendering, same 0/3/4 exit contract as the local
    path — the service is a transport, not a different tool.  Ctrl-C or
    SIGTERM while waiting cancels the job server-side and exits 3.
    """
    import signal

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    for flag, value in (
        ("--checkpoint-dir", args.checkpoint_dir),
        ("--interrupt-after-events", args.interrupt_after_events),
    ):
        if value is not None:
            print(
                f"error: {flag} is local-only and cannot be combined with "
                "--remote (the farm manages its own checkpoints)",
                file=sys.stderr,
            )
            return 2

    try:
        request = _explore_job_request(args, specs)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.remote)
    text = args.format == "text"
    last_state = [None]

    def on_poll(record):
        if text and record.get("state") != last_state[0]:
            last_state[0] = record.get("state")
            print(f"[{record['id']}] {last_state[0]}", file=sys.stderr)

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    record = None
    try:
        record = client.submit(request)
        if text:
            print(
                f"[{record['id']}] {record['state']} "
                f"(digest {record['digest'][:16]}, {len(specs)} candidates)",
                file=sys.stderr,
            )
        from repro.service import TERMINAL_STATES

        if record["state"] not in TERMINAL_STATES:
            record = client.wait(record["id"], on_poll=on_poll)
    except KeyboardInterrupt:
        if record is not None:
            try:
                client.cancel(record["id"])
                print(
                    f"interrupted: job {record['id']} cancelled — completed "
                    "candidates stay in the farm's cache; resubmit to resume",
                    file=sys.stderr,
                )
            except ServiceError as exc:
                print(f"interrupted (cancel failed: {exc})", file=sys.stderr)
        else:
            print("interrupted before submission", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)

    if record["state"] == "cancelled":
        print(f"job {record['id']} was cancelled", file=sys.stderr)
        return 3
    if record["state"] == "failed":
        print(
            f"job {record['id']} failed on the farm:\n{record.get('error')}",
            file=sys.stderr,
        )
        return 1
    try:
        run = client.result_run(record["id"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _render_explore_run(run, args)


def _cmd_explore(args) -> int:
    import signal

    from repro.exploration import (
        PruneConfig,
        SupervisorConfig,
        parse_worker_faults,
        run_candidates,
    )

    specs = _explore_sweep_specs(args)
    if args.remote is not None:
        return _explore_remote(args, specs)

    def progress(outcome, done, total):
        origin = "cache" if outcome.cached else f"{outcome.elapsed_s:.2f}s"
        print(
            f"[{done}/{total}] cost={outcome.cost:.1f} ({origin}) "
            f"{outcome.spec.label}",
            file=sys.stderr,
        )

    from repro.errors import ExplorationError, SimulationInterrupted

    try:
        supervisor = SupervisorConfig(
            timeout_s=args.timeout,
            max_retries=args.max_retries,
            quarantine_after=args.quarantine_after,
        )
        worker_faults = parse_worker_faults(args.inject_worker_fault)
        prune = None
        if args.prune_static:
            prune = (
                PruneConfig(margin=args.prune_margin)
                if args.prune_margin is not None
                else PruneConfig()
            )
        elif args.prune_margin is not None:
            raise ExplorationError("--prune-margin requires --prune-static")
    except ExplorationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # a polite SIGTERM (timeout(1), CI job cancellation, kill <pid>) must
    # take the same clean-shutdown path as Ctrl-C: terminate the pool,
    # flush completed results to the cache, exit 3
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    try:
        run = run_candidates(
            specs,
            workers=args.workers,
            cache_dir=args.cache_dir,
            progress=progress if args.format == "text" else None,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_events=args.checkpoint_every_events,
            interrupt_after_events=args.interrupt_after_events,
            supervisor=supervisor,
            worker_faults=worker_faults,
            prune_static=prune,
        )
    except SimulationInterrupted as exc:
        print(
            f"interrupted: {exc} — re-run the same command (without "
            "--interrupt-after-events) to resume",
            file=sys.stderr,
        )
        return 3
    except KeyboardInterrupt:
        print(
            "interrupted: campaign stopped — completed results were "
            "flushed to the cache; re-run the same command to resume",
            file=sys.stderr,
        )
        return 3
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)

    # exit-code contract: 0 clean, 3 interrupted (above), 4 completed but
    # with quarantined candidates (partial ranking — see docs/exploration.md)
    return _render_explore_run(run, args)


def _cmd_serve(args) -> int:
    """Run an exploration farm: HTTP frontend + in-process worker pool.

    Runs until Ctrl-C or SIGTERM, then drains: workers stop at the next
    candidate boundary, in-flight jobs return to the queue with their
    leases released, completed results are already in the cache, and the
    process exits 3 (the interrupted code of the exploration contract) —
    a restart resumes from the spool exactly where it stopped.
    """
    import signal
    import time as time_module
    from pathlib import Path

    from repro.errors import ServiceError
    from repro.service import ExplorationService

    log_path = (
        args.log
        if args.log is not None
        else str(Path(args.spool) / "logs" / "service.log")
    )

    # install the shutdown path before anything is listening, so a
    # SIGTERM racing the startup still drains instead of killing us
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    service = None
    try:
        try:
            service = ExplorationService(
                args.spool,
                args.cache_dir,
                host=args.host,
                port=args.port,
                pool_size=args.pool,
                max_queue=args.max_queue,
                lease_s=args.lease_s,
                log_path=log_path,
            )
            host, port = service.start()
        except (ServiceError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        recovered = service.recovery.get("requeued", 0)
        print(
            f"exploration farm on http://{host}:{port} "
            f"(spool {args.spool}, pool {args.pool}, "
            f"max queue {args.max_queue}, requeued {recovered})",
            flush=True,
        )
        while True:
            time_module.sleep(3600)
    except KeyboardInterrupt:
        if service is None:
            return 3
        clean = service.drain(timeout_s=args.drain_timeout)
        print(
            "interrupted: farm drained — queued and in-flight jobs persist "
            "in the spool; restart `repro serve` to resume"
            + ("" if clean else " (some workers outlived the drain timeout)"),
            file=sys.stderr,
        )
        return 3
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)


def _cmd_work(args) -> int:
    """Drain a farm spool from this process (no HTTP involved).

    Point any number of these — across machines, over a shared
    filesystem — at the same ``--spool``/``--cache-dir`` to shard a
    campaign backlog.  Ctrl-C/SIGTERM releases the in-flight job back to
    the queue and exits 3.
    """
    import signal
    import threading

    from repro.service import JobStore, run_worker_loop

    store = JobStore(args.spool)
    recovered = store.recover(lease_grace_s=args.lease_s)
    if recovered.get("requeued"):
        print(
            f"requeued {recovered['requeued']} expired-lease job(s)",
            file=sys.stderr,
        )
    stop = threading.Event()

    def _sigterm(signum, frame):
        stop.set()
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    try:
        done = run_worker_loop(
            store,
            args.cache_dir,
            lease_s=args.lease_s,
            poll_s=args.poll_s,
            max_jobs=args.max_jobs,
            stop=stop,
        )
    except KeyboardInterrupt:
        print(
            "interrupted: worker stopped — any in-flight job was released "
            "back to the queue",
            file=sys.stderr,
        )
        return 3
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    print(f"processed {done} job(s)", file=sys.stderr)
    return 0


def _print_job_record(record, as_json: bool) -> None:
    if as_json:
        from repro.util.jsonout import render_envelope

        print(render_envelope("job", record))
        return
    summary = record.get("summary") or {}
    line = f"{record['id']}  {record['state']}"
    if record.get("served"):
        line += f"  served={record['served']}"
    if summary:
        line += (
            f"  candidates={summary.get('candidates')}"
            f"  evaluated={summary.get('evaluated')}"
            f"  cache_hits={summary.get('cache_hits')}"
        )
    if record.get("error"):
        line += f"\n  error: {record['error'].strip().splitlines()[-1]}"
    print(line)


def _job_exit_code(record) -> int:
    """Terminal job record -> CLI exit code (0 done, 3 cancelled, 1 failed)."""
    state = record.get("state")
    if state == "done":
        return 0
    if state == "cancelled":
        return 3
    return 1


def _cmd_submit(args) -> int:
    """Submit an exploration campaign to a farm (``repro submit``)."""
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    try:
        request = _explore_job_request(args, _explore_sweep_specs(args))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    try:
        record = client.submit(request)
        if args.wait and record.get("state") not in ("done", "failed", "cancelled"):
            record = client.wait(record["id"], timeout_s=args.timeout_s)
    except KeyboardInterrupt:
        print("interrupted while waiting; the job keeps running", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_job_record(record, args.format == "json")
    return _job_exit_code(record) if args.wait else 0


def _cmd_job(args) -> int:
    """status / result / cancel / jobs — one handler, four subcommands."""
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.command == "status":
            _print_job_record(client.job(args.job_id), args.format == "json")
            return 0
        if args.command == "result":
            if args.format == "json":
                import json as json_module

                print(
                    json_module.dumps(
                        client.result(args.job_id), indent=2, sort_keys=True
                    )
                )
                return 0
            record = client.job(args.job_id)
            run = client.result_run(args.job_id)
            render_args = argparse.Namespace(
                format="text",
                top=args.top,
                mode=(record.get("request") or {}).get("mode", "mappings"),
            )
            return _render_explore_run(run, render_args)
        if args.command == "cancel":
            record = client.cancel(args.job_id)
            print(f"{record['id']}  {record['state']}  ({record['cancel']})")
            return 0
        # jobs: ledger listing
        records = client.jobs(state=args.state)
        if args.format == "json":
            from repro.util.jsonout import render_envelope

            print(render_envelope("job-list", records, meta={"count": len(records)}))
            return 0
        for record in records:
            _print_job_record(record, False)
        if not records:
            print("no jobs", file=sys.stderr)
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_checkpoint(args) -> int:
    from repro.checkpoint import CheckpointStore, diff_states
    from repro.errors import CheckpointError

    if args.action == "inspect":
        store = CheckpointStore(args.dir)
        rows = []
        for path in store.list(args.tag):
            try:
                snapshot = store.load(path)
            except CheckpointError as exc:
                print(f"unreadable: {path}: {exc}", file=sys.stderr)
                continue
            rows.append(
                {
                    "tag": snapshot.tag,
                    "dispatched": snapshot.dispatched,
                    "now_ps": snapshot.now_ps,
                    "state_hash": snapshot.digest,
                    "path": str(path),
                }
            )
        if args.format == "json":
            from repro.util.jsonout import render_envelope

            print(render_envelope("checkpoint-list", rows, meta={"dir": args.dir}))
            return 0
        if not rows:
            print(f"no snapshots under {args.dir}")
            return 0
        from repro.util.tables import render_table

        print(
            render_table(
                ["Tag", "Events", "Time (ps)", "Hash", "Path"],
                [
                    [
                        row["tag"],
                        row["dispatched"],
                        row["now_ps"],
                        row["state_hash"][:12],
                        row["path"],
                    ]
                    for row in rows
                ],
                title=f"snapshots in {args.dir}",
            )
        )
        return 0

    if args.action == "diff":
        store = CheckpointStore(".")  # load() only needs the paths
        left = store.load(args.first)
        right = store.load(args.second)
        lines = diff_states(left.state, right.state)
        if not lines:
            print("snapshots are identical")
            return 0
        for line in lines:
            print(line)
        return 1

    # resume: continue an interrupted `flow` run from its latest snapshot
    store = CheckpointStore(args.checkpoint_dir)
    if store.latest("flow") is None:
        print(
            f"nothing to resume: no 'flow' snapshot under "
            f"{args.checkpoint_dir}",
            file=sys.stderr,
        )
        return 2
    from repro.flow import run_design_flow

    application, platform, mapping, faults = _flow_inputs(args)
    result = run_design_flow(
        application,
        platform,
        mapping,
        args.workdir,
        duration_us=args.duration_us,
        faults=faults,
        trace=args.trace,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_events=args.checkpoint_every_events,
    )
    print(result.report_text)
    print()
    print("artefacts:")
    for kind, path in sorted(result.artifacts.items()):
        print(f"  {kind:<8} {path}")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import run_fault_campaign
    from repro.profiling import render_fault_section, render_report

    campaign = run_fault_campaign(
        seed=args.seed, fault_rate=args.fault_rate, duration_us=args.duration_us
    )
    if args.full_report:
        print(render_report(campaign.profiling, title="Fault campaign report"))
    else:
        print(render_fault_section(campaign.profiling))
    stats = campaign.stats
    ok = stats.injected == stats.detected == stats.recovered + stats.residual
    return 0 if ok else 1


def _cmd_timeline(args) -> int:
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.diagrams import timeline_text, utilization_summary
    from repro.simulation import SystemSimulation

    result = SystemSimulation(*build_tutwlan_system()).run(args.duration_us)
    window_ps = args.window_us * 1_000_000
    print(timeline_text(result.log, width=args.width, end_ps=window_ps))
    print()
    print(utilization_summary(result.log))
    return 0


def _cmd_trace(args) -> int:
    from repro.cases.tutwlan import build_tutwlan_system
    from repro.observability import (
        Tracer,
        collect_metrics,
        render_chrome_trace,
        render_metrics_text,
        write_chrome_trace,
    )
    from repro.profiling.groupinfo import group_info_from_model
    from repro.simulation import SystemSimulation

    application, platform, mapping = build_tutwlan_system()
    tracer = Tracer()
    simulation = SystemSimulation(application, platform, mapping, tracer=tracer)
    result = simulation.run(args.duration_us)
    metadata = {
        "application": application.top.name,
        "platform": platform.top.name,
        "duration_us": args.duration_us,
    }
    if args.out:
        write_chrome_trace(tracer, args.out, metadata=metadata)
    if args.format == "chrome":
        print(render_chrome_trace(tracer, metadata))
        return 0
    group_of = dict(group_info_from_model(application.model).process_to_group)
    report = collect_metrics(tracer, result.end_time_ps, group_of=group_of)
    if args.format == "json":
        from repro.util.jsonout import render_envelope

        print(render_envelope("trace-metrics", report.to_dict(), meta=metadata))
        return 0
    print(render_metrics_text(report))
    if args.out:
        print()
        print(f"trace written to {args.out} (open it in ui.perfetto.dev)")
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis import render_records, validation_records
    from repro.tutprofile import TUT_PROFILE, check_design_rules
    from repro.uml import read_model, validate_model

    model = read_model(args.model, profiles=[TUT_PROFILE])
    wellformed = validate_model(model)
    rules = check_design_rules(model)
    records = validation_records(wellformed, source="wellformedness")
    records += validation_records(rules, source="design-rules")
    print(
        render_records(
            records,
            format=args.format,
            title=f"validation: {args.model}",
            meta={"model": args.model},
            kind="validate",
        )
    )
    if args.fail_on == "never":
        return 0
    severities = {r["severity"] for r in records}
    if "error" in severities:
        return 1
    if args.fail_on == "warning" and "warning" in severities:
        return 1
    return 0


def _load_lint_inputs(model_path):
    """The (application, platform, mapping) triple for the lint command.

    Without a path the built-in TUTMAC-on-TUTWLAN system is linted; with
    one, the XMI document's views are reconstructed (platform and mapping
    are optional — purely behavioural rules still run without them).
    """
    if model_path is None:
        from repro.cases.tutwlan import build_tutwlan_system

        return build_tutwlan_system()

    from repro.application.model import ApplicationModel
    from repro.errors import ReproError
    from repro.tutprofile import TUT_PROFILE
    from repro.uml import read_model

    model = read_model(model_path, profiles=[TUT_PROFILE])
    application = ApplicationModel.from_model(model)
    platform = mapping = None
    try:
        from repro.mapping.model import MappingModel
        from repro.platform.library import standard_library
        from repro.platform.model import PlatformModel

        platform = PlatformModel.from_model(
            model, standard_library(profile=application.profile)
        )
        mapping = MappingModel.from_model(application, platform)
    except ReproError:
        platform = mapping = None
    return application, platform, mapping


def _cmd_lint(args) -> int:
    from repro.analysis import (
        LintConfig,
        lint_records,
        render_matrix,
        render_records,
        render_rule_catalogue,
        rule_catalogue_records,
        run_lint,
        signal_flow_matrix,
    )
    from repro.errors import LintConfigError

    if args.list_rules:
        if args.format == "json":
            from repro.util.jsonout import render_envelope

            print(render_envelope("lint-rules", rule_catalogue_records()))
        else:
            print(render_rule_catalogue())
        return 0

    selected = None
    if args.rules is not None:
        selected = [
            rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()
        ]
    application, platform, mapping = _load_lint_inputs(args.model)
    config = LintConfig(fail_on=args.fail_on, rules=selected)
    try:
        report = run_lint(application, platform, mapping, config=config)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records = lint_records(report, show_suppressed=args.show_suppressed)
    subject = args.model or "TUTMAC/TUTWLAN (built-in)"
    meta = {"model": subject}
    if args.matrix and args.format == "json":
        meta["matrix"] = {
            f"{sender} -> {receiver}": signals
            for (sender, receiver), signals in signal_flow_matrix(application).items()
        }
    print(
        render_records(
            records,
            format=args.format,
            title=f"tutlint: {subject}",
            meta=meta,
            kind="lint",
        )
    )
    if args.matrix and args.format == "text":
        print()
        print(render_matrix(signal_flow_matrix(application)))
    return report.exit_code(args.fail_on)


def _cmd_generate_model(args) -> int:
    from repro.errors import GeneratorError
    from repro.genmodel import (
        GeneratorConfig,
        blueprint_json,
        builder_token,
        generate_blueprint,
        generate_model,
        known_defects,
    )

    if args.list_defects:
        for rule in known_defects():
            print(rule)
        return 0

    defects = ()
    if args.defects:
        if args.defects.strip() == "all":
            defects = tuple(known_defects())
        else:
            defects = tuple(
                rule.strip() for rule in args.defects.split(",") if rule.strip()
            )
    try:
        config = GeneratorConfig(
            seed=args.seed,
            n_processes=args.processes,
            efsm_depth=args.depth,
            fanout=args.fanout,
            n_variables=args.variables,
            guard_terms=args.guard_terms,
            request_reply=args.request_reply,
            drive_period_us=args.drive_period_us,
            topology=args.topology,
            n_segments=args.segments,
            n_pes=args.pes,
            heterogeneous=not args.homogeneous,
            n_groups=args.groups,
            inject_defects=defects,
        )
    except GeneratorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.print_token:
        print(builder_token(config))
        return 0

    try:
        if args.format == "json":
            text = blueprint_json(generate_blueprint(config))
            if args.out:
                with open(args.out, "w", encoding="ascii") as handle:
                    handle.write(text + "\n")
                print(f"blueprint written to {args.out}")
            else:
                print(text)
        else:
            if not args.out:
                print(
                    "error: --format xmi requires --out", file=sys.stderr
                )
                return 2
            from repro.uml import write_model

            generated = generate_model(config)
            write_model(generated.application.model, args.out)
            print(f"model written to {args.out}")
    except GeneratorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TUT-Profile (DATE 2005) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print profile Tables 1-3").set_defaults(
        handler=_cmd_tables
    )

    tutmac = subparsers.add_parser(
        "tutmac", help="Table 4: TUTMAC on the workstation reference"
    )
    tutmac.add_argument("--duration-us", type=int, default=200_000)
    tutmac.set_defaults(handler=_cmd_tutmac)

    flow = subparsers.add_parser("flow", help="run the full Figure 2 design flow")
    flow.add_argument("--workdir", default="./tut_flow_output")
    flow.add_argument("--duration-us", type=int, default=100_000)
    flow.add_argument(
        "--seed", type=int, default=1, help="fault-plan seed (with --fault-rate)"
    )
    flow.add_argument(
        "--fault-rate",
        type=_rate,
        default=0.0,
        help="per-transfer corruption probability; 0 disables fault injection",
    )
    flow.add_argument(
        "--lint",
        action="store_true",
        help="run tutlint static analysis before code generation",
    )
    flow.add_argument(
        "--trace",
        action="store_true",
        help="simulate under the observability tracer and write trace.json "
        "(Perfetto) and metrics.json artefacts",
    )
    flow.add_argument(
        "--explore",
        action="store_true",
        help="close the Figure 2 loop: improve the mapping from profiling "
        "feedback and write exploration.json",
    )
    flow.add_argument(
        "--cache-dir",
        default=None,
        help="exploration result cache directory (with --explore)",
    )
    flow.add_argument(
        "--checkpoint-dir",
        default=None,
        help="snapshot the simulation here and resume from the latest "
        "snapshot when one exists (see docs/checkpoint.md)",
    )
    flow.add_argument(
        "--checkpoint-every-events",
        type=int,
        default=5_000,
        help="snapshot stride in dispatched events (with --checkpoint-dir)",
    )
    flow.set_defaults(handler=_cmd_flow)

    explore = subparsers.add_parser(
        "explore",
        help="parallel design-space exploration with result caching",
    )
    explore.add_argument(
        "--mode",
        choices=("mappings", "faults"),
        default="mappings",
        help="sweep all TUTMAC mappings, or one fault campaign per seed",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = serial in-process, same ranking)",
    )
    explore.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache; warm re-runs evaluate nothing",
    )
    explore.add_argument(
        "--top", type=int, default=10, help="candidates shown in the ranking"
    )
    explore.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    explore.add_argument("--duration-us", type=int, default=20_000)
    explore.add_argument(
        "--limit", type=int, default=None, help="cap the number of candidates"
    )
    explore.add_argument(
        "--seeds",
        default="1,2,3,4",
        help="comma-separated fault-plan seeds (--mode faults)",
    )
    explore.add_argument("--fault-rate", type=_rate, default=0.05)
    explore.add_argument(
        "--prune-static",
        action="store_true",
        help="skip candidates the static mapping estimator proves "
        "infeasible or dominated, before any simulation (the skipped "
        "candidates are recorded in the pruned ledger)",
    )
    explore.add_argument(
        "--prune-margin",
        type=float,
        default=None,
        help="dominance factor for --prune-static: keep candidates within "
        "this multiple of the best static estimate (default 3.0)",
    )
    explore.add_argument(
        "--checkpoint-dir",
        default=None,
        help="snapshot in-flight candidate simulations here; re-running "
        "the same command resumes the campaign (pair with --cache-dir)",
    )
    explore.add_argument(
        "--checkpoint-every-events",
        type=int,
        default=5_000,
        help="snapshot stride in dispatched kernel events",
    )
    explore.add_argument(
        "--interrupt-after-events",
        type=int,
        default=None,
        help="deterministically interrupt the (serial) campaign after this "
        "many events — exits 3 with a final snapshot, for resume testing",
    )
    explore.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-candidate wall-clock timeout in seconds (parallel "
        "workers only); a timed-out attempt counts as one failure",
    )
    explore.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="failed attempts retried per candidate (with exponential "
        "backoff) before it is quarantined",
    )
    explore.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        help="total failures after which a candidate is quarantined "
        "(recorded in the failure ledger, excluded from the ranking)",
    )
    explore.add_argument(
        "--inject-worker-fault",
        action="append",
        default=[],
        metavar="INDEX:MODE[:COUNT]",
        help="inject a worker fault at candidate INDEX: one of "
        "crash|hang|slow|flaky|poison, repeated COUNT attempts "
        "(testing aid; repeatable)",
    )
    explore.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="run the campaign through an exploration farm (`repro serve`) "
        "instead of in-process: same flags, same output, same exit codes; "
        "Ctrl-C cancels the remote job (local-only flags like "
        "--checkpoint-dir are rejected)",
    )
    explore.set_defaults(handler=_cmd_explore)

    serve = subparsers.add_parser(
        "serve",
        help="run an exploration farm: HTTP job queue + worker pool "
        "over a crash-safe spool (see docs/service.md)",
    )
    serve.add_argument(
        "--spool",
        required=True,
        help="job spool directory (shared by every server/worker of a farm)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache shared by the farm; warm "
        "submissions are served synchronously without queueing",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8753, help="0 picks a free port"
    )
    serve.add_argument(
        "--pool",
        type=int,
        default=1,
        help="in-process worker loops (0 = frontend only; drain the spool "
        "with `repro work` processes instead)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="queued-job bound; submissions beyond it get HTTP 429",
    )
    serve.add_argument(
        "--lease-s",
        type=float,
        default=60.0,
        help="worker heartbeat lease; a running job whose lease expires "
        "is requeued on recovery",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for workers at shutdown before exiting anyway",
    )
    serve.add_argument(
        "--log",
        default=None,
        help="service log file (default <spool>/logs/service.log)",
    )
    serve.set_defaults(handler=_cmd_serve)

    work = subparsers.add_parser(
        "work",
        help="drain an exploration-farm spool from this process "
        "(shard a farm across processes or machines)",
    )
    work.add_argument("--spool", required=True, help="farm spool directory")
    work.add_argument(
        "--cache-dir", default=None, help="the farm's shared result cache"
    )
    work.add_argument("--lease-s", type=float, default=60.0)
    work.add_argument(
        "--poll-s", type=float, default=0.5, help="idle poll interval"
    )
    work.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after this many jobs (default: run until interrupted)",
    )
    work.set_defaults(handler=_cmd_work)

    def _farm_client_args(command_parser, with_format=True):
        command_parser.add_argument(
            "--url",
            default="http://127.0.0.1:8753",
            help="exploration farm base URL",
        )
        if with_format:
            command_parser.add_argument(
                "--format", choices=("text", "json"), default="text"
            )

    submit = subparsers.add_parser(
        "submit",
        help="submit an exploration campaign to a farm and print the job id",
    )
    _farm_client_args(submit)
    submit.add_argument(
        "--mode", choices=("mappings", "faults"), default="mappings"
    )
    submit.add_argument(
        "--workers",
        type=int,
        default=0,
        help="campaign fan-out on the worker that claims the job",
    )
    submit.add_argument("--duration-us", type=int, default=20_000)
    submit.add_argument("--limit", type=int, default=None)
    submit.add_argument("--seeds", default="1,2,3,4")
    submit.add_argument("--fault-rate", type=_rate, default=0.05)
    submit.add_argument("--prune-static", action="store_true")
    submit.add_argument("--prune-margin", type=float, default=None)
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--max-retries", type=int, default=2)
    submit.add_argument("--quarantine-after", type=int, default=3)
    submit.add_argument(
        "--inject-worker-fault",
        action="append",
        default=[],
        metavar="INDEX:MODE[:COUNT]",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job is terminal; exit 0 done / 3 cancelled / "
        "1 failed",
    )
    submit.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="give up waiting after this many seconds (with --wait)",
    )
    submit.set_defaults(handler=_cmd_submit)

    status = subparsers.add_parser("status", help="one farm job's record")
    status.add_argument("job_id")
    _farm_client_args(status)
    status.set_defaults(handler=_cmd_job)

    result = subparsers.add_parser(
        "result",
        help="a finished farm job's campaign result "
        "(text ranking table, or the repro.explore/1 JSON)",
    )
    result.add_argument("job_id")
    _farm_client_args(result)
    result.add_argument("--top", type=int, default=10)
    result.set_defaults(handler=_cmd_job)

    cancel = subparsers.add_parser(
        "cancel",
        help="cancel a queued farm job, or request cancellation of a "
        "running one",
    )
    cancel.add_argument("job_id")
    _farm_client_args(cancel, with_format=False)
    cancel.set_defaults(handler=_cmd_job)

    jobs = subparsers.add_parser("jobs", help="list a farm's job ledger")
    _farm_client_args(jobs)
    jobs.add_argument(
        "--state",
        choices=("queued", "running", "done", "failed", "cancelled"),
        default=None,
    )
    jobs.set_defaults(handler=_cmd_job)

    checkpoint = subparsers.add_parser(
        "checkpoint", help="inspect, diff or resume simulation snapshots"
    )
    checkpoint_actions = checkpoint.add_subparsers(dest="action", required=True)
    inspect = checkpoint_actions.add_parser(
        "inspect", help="list the snapshots in a store directory"
    )
    inspect.add_argument("--dir", default="./checkpoints")
    inspect.add_argument("--tag", default=None, help="only this snapshot tag")
    inspect.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    inspect.set_defaults(handler=_cmd_checkpoint)
    diff = checkpoint_actions.add_parser(
        "diff", help="structurally compare two snapshot files"
    )
    diff.add_argument("first")
    diff.add_argument("second")
    diff.set_defaults(handler=_cmd_checkpoint)
    resume = checkpoint_actions.add_parser(
        "resume",
        help="continue an interrupted flow run from its latest snapshot",
    )
    resume.add_argument("--checkpoint-dir", required=True)
    resume.add_argument(
        "--checkpoint-every-events",
        type=int,
        default=5_000,
        help="must match the interrupted run's snapshot stride",
    )
    resume.add_argument("--workdir", default="./tut_flow_output")
    resume.add_argument("--duration-us", type=int, default=100_000)
    resume.add_argument(
        "--seed", type=int, default=1, help="fault-plan seed (with --fault-rate)"
    )
    resume.add_argument(
        "--fault-rate",
        type=_rate,
        default=0.0,
        help="must match the interrupted run's fault rate",
    )
    resume.add_argument(
        "--trace",
        action="store_true",
        help="must match the interrupted run's --trace",
    )
    resume.set_defaults(handler=_cmd_checkpoint)

    faults = subparsers.add_parser(
        "faults", help="seeded fault-injection campaign on ARQ-enabled TUTMAC"
    )
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument("--fault-rate", type=_rate, default=0.05)
    faults.add_argument("--duration-us", type=int, default=200_000)
    faults.add_argument(
        "--full-report",
        action="store_true",
        help="print the whole profiling report, not just the fault ledger",
    )
    faults.set_defaults(handler=_cmd_faults)

    timeline = subparsers.add_parser(
        "timeline", help="text Gantt of the TUTWLAN processors"
    )
    timeline.add_argument("--duration-us", type=int, default=10_000)
    timeline.add_argument("--window-us", type=int, default=3_000)
    timeline.add_argument("--width", type=int, default=100)
    timeline.set_defaults(handler=_cmd_timeline)

    trace = subparsers.add_parser(
        "trace",
        help="traced example simulation: per-PE/bus metrics + Perfetto export",
    )
    trace.add_argument(
        "target",
        nargs="?",
        choices=("examples",),
        default="examples",
        help="what to trace (the built-in TUTMAC-on-TUTWLAN example system)",
    )
    trace.add_argument("--duration-us", type=int, default=10_000)
    trace.add_argument(
        "--format",
        choices=("text", "json", "chrome"),
        default="text",
        help="metrics tables, enveloped metrics JSON, or Chrome-trace JSON",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="also write the Chrome-trace JSON to this path",
    )
    trace.set_defaults(handler=_cmd_trace)

    validate = subparsers.add_parser("validate", help="validate an XMI model file")
    validate.add_argument("model")
    validate.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    validate.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    validate.set_defaults(handler=_cmd_validate)

    lint = subparsers.add_parser(
        "lint", help="run tutlint static analysis over a model"
    )
    lint.add_argument(
        "model",
        nargs="?",
        default=None,
        help="XMI model file (default: the built-in TUTMAC/TUTWLAN system)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include findings silenced by tutlint: disable= comments",
    )
    lint.add_argument(
        "--matrix",
        action="store_true",
        help="also print the static signal-flow matrix (Figure 2's static twin)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. A001,M002); "
        "unknown ids are rejected with exit code 2",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (text table, or the "
        "repro.lint-rules/1 envelope with --format json) and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    generate = subparsers.add_parser(
        "generate-model",
        help="generate a seeded synthetic TUT-Profile model",
    )
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument(
        "--processes", type=int, default=4, help="token-ring length"
    )
    generate.add_argument(
        "--depth", type=int, default=2, help="EFSM state-hierarchy depth"
    )
    generate.add_argument(
        "--fanout", type=int, default=2,
        help="guarded token-handling alternatives per EFSM",
    )
    generate.add_argument(
        "--variables", type=int, default=2, help="scratch variables per EFSM"
    )
    generate.add_argument(
        "--guard-terms", type=int, default=2,
        help="comparison terms per generated guard",
    )
    generate.add_argument(
        "--request-reply", type=int, default=1,
        help="client/server request-reply chains",
    )
    generate.add_argument(
        "--drive-period-us", type=int, default=200,
        help="token-injection timer period (µs)",
    )
    generate.add_argument(
        "--topology",
        choices=("single", "paper", "chain", "star", "mesh"),
        default="paper",
        help="HIBI segment/bridge layout",
    )
    generate.add_argument(
        "--segments", type=int, default=2,
        help="HIBI segments (chain/star/mesh topologies)",
    )
    generate.add_argument(
        "--pes", type=int, default=3, help="processing elements"
    )
    generate.add_argument(
        "--homogeneous",
        action="store_true",
        help="all NiosCPU instead of alternating NiosCPU/NiosDSP",
    )
    generate.add_argument(
        "--groups", type=int, default=3, help="process groups"
    )
    generate.add_argument(
        "--defects",
        default="",
        metavar="IDS",
        help="comma-separated lint rule ids whose defect constructions "
        "to inject (e.g. E003,A001), or 'all'",
    )
    generate.add_argument(
        "--list-defects",
        action="store_true",
        help="print the injectable rule ids and exit",
    )
    generate.add_argument(
        "--format",
        choices=("json", "xmi"),
        default="json",
        help="blueprint JSON (canonical bytes) or an XMI model document",
    )
    generate.add_argument(
        "--out", default=None, help="output path (stdout for json)"
    )
    generate.add_argument(
        "--print-token",
        action="store_true",
        help="print the exploration builder token for this configuration",
    )
    generate.set_defaults(handler=_cmd_generate_model)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
