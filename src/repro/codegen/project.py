"""Emission of a complete, compilable C project from an application model.

``generate_project`` writes, into a target directory:

* ``<component>.c/.h`` per functional component (via :class:`CGenerator`);
* ``tut_app.h/c`` — the application table: signal names/ids, process table,
  the routing table (pre-resolved from the composite structure), and the
  dispatch functions binding processes to their generated handlers;
* ``tut_runtime.h/c`` — the runtime library;
* ``main.c`` and a ``Makefile``.

The resulting program runs the application natively with a cooperative
scheduler and (when instrumented) writes a TUTLOG simulation log-file —
the same flow as the paper's TAU G2 code generation plus custom logging
functions.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.errors import CodegenError, ModelError
from repro.application.model import ApplicationModel
from repro.codegen.cgen import CGenerator, sanitize
from repro.codegen.runtime import RUNTIME_HEADER, RUNTIME_SOURCE, makefile


class GeneratedProject:
    """Paths and metadata of one emitted C project."""

    def __init__(self, directory: str, files: Dict[str, str]) -> None:
        self.directory = directory
        self.files = files  # file name -> content

    def write(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        for name, content in self.files.items():
            with open(os.path.join(self.directory, name), "w", encoding="utf-8") as f:
                f.write(content)

    @property
    def file_names(self) -> List[str]:
        return sorted(self.files)

    def total_lines(self) -> int:
        return sum(content.count("\n") for content in self.files.values())


def _routing_entries(app: ApplicationModel) -> List[Tuple[str, str, str, str]]:
    """(sender, signal, port or '', receiver) entries for the C route table."""
    entries: List[Tuple[str, str, str, str]] = []
    for process_name, process in app.processes.items():
        seen_default: Dict[str, str] = {}
        for port in process.component.all_ports():
            if not port.is_constrained:
                continue
            for signal_name in port.required:
                try:
                    receiver, _ = app.route(process_name, signal_name, port.name)
                except ModelError:
                    continue
                entries.append((process_name, signal_name, port.name, receiver))
                seen_default.setdefault(signal_name, receiver)
        for signal_name, receiver in seen_default.items():
            try:
                receiver_default, _ = app.route(process_name, signal_name, None)
            except ModelError:
                continue
            entries.append((process_name, signal_name, "", receiver_default))
    return entries


def generate_project(
    app: ApplicationModel,
    directory: str,
    instrument: bool = True,
    duration_us: int = 100_000,
    lint: bool = False,
) -> GeneratedProject:
    """Generate the C project for ``app`` into ``directory`` (not written yet:
    call :meth:`GeneratedProject.write`).

    ``lint=True`` runs the tutlint per-machine precondition on every
    component behaviour first; error-severity findings raise
    :class:`CodegenError` before any file content is produced.
    """
    signal_ids = {name: index for index, name in enumerate(sorted(app.signals))}
    process_names = list(app.processes)
    process_ids = {name: index for index, name in enumerate(process_names)}

    files: Dict[str, str] = {
        "tut_runtime.h": RUNTIME_HEADER,
        "tut_runtime.c": RUNTIME_SOURCE,
    }

    component_prefixes: Dict[str, str] = {}
    generated_components = set()
    for process in app.processes.values():
        component = process.component
        if component.name in generated_components:
            component_prefixes[process.name] = sanitize(component.name)
            continue
        generator = CGenerator(
            component,
            signal_ids,
            instrument=instrument,
            lint=lint,
            signal_decls=app.signals,
        )
        files[f"{generator.prefix}.h"] = generator.header()
        files[f"{generator.prefix}.c"] = generator.source()
        generated_components.add(component.name)
        component_prefixes[process.name] = generator.prefix

    files["tut_app.h"] = _app_header(app, component_prefixes)
    files["tut_app.c"] = _app_source(
        app, signal_ids, process_ids, component_prefixes, instrument
    )
    files["main.c"] = _main_source(app, duration_us, instrument)
    files["Makefile"] = makefile(
        sorted({sanitize(p.component.name) for p in app.processes.values()})
    )
    return GeneratedProject(directory, files)


def _app_header(app: ApplicationModel, component_prefixes: Dict[str, str]) -> str:
    lines = [
        f"/* Generated application table for {app.top.name} */",
        "#ifndef TUT_APP_H",
        "#define TUT_APP_H",
        "",
        '#include "tut_runtime.h"',
        "",
    ]
    for index, name in enumerate(sorted(app.signals)):
        lines.append(f"#define SIG_{sanitize(name).upper()} {index}")
    lines += [
        "",
        "int tut_process_count(void);",
        "tut_process *tut_process_at(int index);",
        "int tut_route(int sender, int signal_id, const char *via_port);",
        "void tut_dispatch_start(void);",
        "void tut_dispatch_signal(int process_index, const tut_signal_t *sig);",
        "void tut_dispatch_timer(int process_index, int timer_id);",
        "",
        "#endif /* TUT_APP_H */",
        "",
    ]
    return "\n".join(lines)


def _app_source(
    app: ApplicationModel,
    signal_ids: Dict[str, int],
    process_ids: Dict[str, int],
    component_prefixes: Dict[str, str],
    instrument: bool,
) -> str:
    includes = sorted(
        {f'#include "{prefix}.h"' for prefix in component_prefixes.values()}
    )
    lines = [
        f"/* Generated application table for {app.top.name} */",
        '#include "tut_app.h"',
    ]
    lines.extend(includes)
    lines.append("")
    lines.append("static const char *tut_signal_names[] = {")
    for name in sorted(app.signals):
        lines.append(f'    "{name}",')
    lines.append("};")
    lines.append("")
    lines.append("const char *tut_signal_name(int id)")
    lines.append("{")
    lines.append(
        f"    if (id < 0 || id >= {len(app.signals)}) return \"?\";"
    )
    lines.append("    return tut_signal_names[id];")
    lines.append("}")
    lines.append("")
    for name, process in app.processes.items():
        prefix = component_prefixes[name]
        lines.append(f"static {prefix}_ctx_t proc_{sanitize(name)};")
    lines.append("")
    lines.append("static tut_process *tut_processes[] = {")
    for name in app.processes:
        lines.append(f"    &proc_{sanitize(name)}.base,")
    lines.append("};")
    lines.append("")
    lines.append("int tut_process_count(void)")
    lines.append("{")
    lines.append(f"    return {len(app.processes)};")
    lines.append("}")
    lines.append("")
    lines.append("tut_process *tut_process_at(int index)")
    lines.append("{")
    lines.append("    return tut_processes[index];")
    lines.append("}")
    lines.append("")
    # routing table
    lines.append("typedef struct { int sender; int signal; const char *port; int receiver; } tut_route_t;")
    lines.append("static const tut_route_t tut_routes[] = {")
    entries = _routing_entries(app)
    for sender, signal_name, port, receiver in entries:
        port_text = f'"{port}"' if port else "NULL"
        lines.append(
            f"    {{ {process_ids[sender]}, {signal_ids[signal_name]}, "
            f"{port_text}, {process_ids[receiver]} }},  "
            f"/* {sender} -{signal_name}-> {receiver} */"
        )
    lines.append("};")
    lines.append("")
    lines.append("int tut_route(int sender, int signal_id, const char *via_port)")
    lines.append("{")
    lines.append(
        f"    for (unsigned i = 0; i < {len(entries)}u; i++) {{"
    )
    lines.append("        const tut_route_t *r = &tut_routes[i];")
    lines.append("        if (r->sender != sender || r->signal != signal_id) continue;")
    lines.append("        if (via_port == NULL && r->port == NULL) return r->receiver;")
    lines.append(
        "        if (via_port != NULL && r->port != NULL && "
        "strcmp(via_port, r->port) == 0) return r->receiver;"
    )
    lines.append("    }")
    lines.append("    /* fall back to any entry for (sender, signal) */")
    lines.append(
        f"    for (unsigned i = 0; i < {len(entries)}u; i++) {{"
    )
    lines.append("        const tut_route_t *r = &tut_routes[i];")
    lines.append(
        "        if (r->sender == sender && r->signal == signal_id) return r->receiver;"
    )
    lines.append("    }")
    lines.append("    return -1;")
    lines.append("}")
    lines.append("")
    # dispatch functions
    lines.append("void tut_dispatch_start(void)")
    lines.append("{")
    for name, process in app.processes.items():
        prefix = component_prefixes[name]
        c_name = sanitize(name)
        lines.append(f"    proc_{c_name}.base.name = \"{name}\";")
        lines.append(f"    proc_{c_name}.base.index = {process_ids[name]};")
        lines.append(
            f"    proc_{c_name}.base.priority = {process.priority()};"
        )
        lines.append(f"    proc_{c_name}.base.queue_head = 0;")
        lines.append(f"    proc_{c_name}.base.queue_len = 0;")
        lines.append(
            "    for (int t = 0; t < TUT_MAX_TIMERS; t++) "
            f"proc_{c_name}.base.timer_deadline[t] = -1;"
        )
        lines.append(f"    {prefix}_init(&proc_{c_name});")
    for name in app.processes:
        prefix = component_prefixes[name]
        lines.append(f"    {prefix}_start(&proc_{sanitize(name)});")
    lines.append("}")
    lines.append("")
    lines.append("void tut_dispatch_signal(int process_index, const tut_signal_t *sig)")
    lines.append("{")
    lines.append("    switch (process_index) {")
    for name in app.processes:
        prefix = component_prefixes[name]
        lines.append(f"    case {process_ids[name]}:")
        lines.append(
            f"        {prefix}_handle_signal(&proc_{sanitize(name)}, sig);"
        )
        lines.append("        break;")
    lines.append("    default: break;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    lines.append("void tut_dispatch_timer(int process_index, int timer_id)")
    lines.append("{")
    lines.append("    switch (process_index) {")
    for name in app.processes:
        prefix = component_prefixes[name]
        lines.append(f"    case {process_ids[name]}:")
        lines.append(
            f"        {prefix}_handle_timer(&proc_{sanitize(name)}, timer_id);"
        )
        lines.append("        break;")
    lines.append("    default: break;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def _main_source(app: ApplicationModel, duration_us: int, instrument: bool) -> str:
    lines = [
        f"/* Generated main for {app.top.name} */",
        '#include "tut_app.h"',
        "",
        "int main(int argc, char **argv)",
        "{",
        f"    long long duration_us = {duration_us};",
        "    if (argc > 1) duration_us = atoll(argv[1]);",
    ]
    if instrument:
        lines.append('    tut_log_open(argc > 2 ? argv[2] : "simulation.tutlog");')
    lines += [
        "    tut_scheduler_run(duration_us);",
    ]
    if instrument:
        lines.append("    tut_log_close();")
    lines += [
        '    printf("simulated %lld us\\n", duration_us);',
        "    return 0;",
        "}",
        "",
    ]
    return "\n".join(lines)
