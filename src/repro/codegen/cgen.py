"""EFSM → C translation.

The paper's flow generates C code from the UML model ("Code generation →
Application C code → Compilation and linking", Figure 2).  This module
translates each functional component's state machine into a C source/header
pair against the runtime library of :mod:`repro.codegen.runtime`:

* EFSM variables become fields of the process context struct;
* states become an enum; transitions a nested ``switch``;
* action-language statements map 1:1 onto C statements;
* ``send``/``set_timer`` map onto runtime calls;
* entry actions and completion transitions become ``<comp>_enter_<state>``
  functions that chain to each other.

With ``instrument=True`` the generator inserts the profiling hooks
(``tut_log_exec``) that produce the simulation log-file — the paper's
"custom C functions" complementing generated code (Section 4.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import CodegenError
from repro.uml.actions import (
    Assign,
    BinaryOp,
    BoolLiteral,
    Call,
    Conditional,
    Expr,
    If,
    IntLiteral,
    Name,
    ResetTimer,
    Send,
    SetTimer,
    Stmt,
    UnaryOp,
    While,
)
from repro.uml.classifier import Class
from repro.uml.statemachine import (
    CompletionTrigger,
    SignalTrigger,
    StateMachine,
    TimerTrigger,
    Transition,
)


def sanitize(name: str) -> str:
    """Make a model name a valid C identifier."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def check_lintable(machine: StateMachine, signal_decls=None) -> None:
    """Codegen precondition: refuse machines with error-severity lint findings.

    A machine tutlint rejects (unreachable states read by nobody, undefined
    names, constant division by zero, ...) would translate into C that can
    never run correctly, so generation fails fast with the findings instead
    of emitting broken code.  Inline ``tutlint: disable=`` suppressions
    apply as usual.
    """
    from repro.analysis import lint_machine

    report = lint_machine(machine, signal_decls)
    if report.errors:
        summary = "; ".join(str(f) for f in report.errors[:5])
        raise CodegenError(
            f"machine {machine.name!r} fails static analysis with "
            f"{len(report.errors)} error(s): {summary}"
        )


class CGenerator:
    """Translates one component's state machine to C."""

    def __init__(
        self,
        component: Class,
        signal_ids: Dict[str, int],
        instrument: bool = True,
        lint: bool = False,
        signal_decls=None,
    ) -> None:
        if component.classifier_behavior is None:
            raise CodegenError(
                f"component {component.name!r} has no behaviour to generate"
            )
        if lint:
            check_lintable(component.classifier_behavior, signal_decls)
        self.component = component
        self.machine: StateMachine = component.classifier_behavior
        self.signal_ids = signal_ids
        self.instrument = instrument
        self.prefix = sanitize(component.name)
        self.timer_ids = {
            name: index for index, name in enumerate(self.machine.timer_names())
        }
        # set_timer targets may include timers no trigger listens to yet
        for state in self.machine.states:
            for block in (state.entry, state.exit):
                self._collect_timers(block)
        for transition in self.machine.transitions:
            self._collect_timers(transition.effect)

    def _collect_timers(self, stmts: Sequence[Stmt]) -> None:
        from repro.uml.actions import walk_statements

        for stmt in walk_statements(stmts):
            if isinstance(stmt, (SetTimer, ResetTimer)):
                if stmt.timer not in self.timer_ids:
                    self.timer_ids[stmt.timer] = len(self.timer_ids)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def expr(self, node: Expr, params: Sequence[str]) -> str:
        if isinstance(node, IntLiteral):
            return str(node.value)
        if isinstance(node, BoolLiteral):
            return "1" if node.value else "0"
        if isinstance(node, Name):
            if node.identifier in params:
                return sanitize(node.identifier)
            return f"ctx->v_{sanitize(node.identifier)}"
        if isinstance(node, UnaryOp):
            return f"({node.op}{self.expr(node.operand, params)})"
        if isinstance(node, BinaryOp):
            left = self.expr(node.left, params)
            right = self.expr(node.right, params)
            return f"({left} {node.op} {right})"
        if isinstance(node, Conditional):
            return (
                f"({self.expr(node.condition, params)} ? "
                f"{self.expr(node.then_value, params)} : "
                f"{self.expr(node.else_value, params)})"
            )
        if isinstance(node, Call):
            args = [self.expr(arg, params) for arg in node.args]
            if node.function == "crc32":
                if len(args) == 1:
                    args.append("0")
                return f"tut_crc32({args[0]}, {args[1]})"
            if node.function == "rand16":
                return "tut_rand16(&ctx->rng)"
            if node.function in ("min", "max"):
                if len(args) != 2:
                    raise CodegenError(f"{node.function}() needs two arguments in C")
                return f"tut_{node.function}({args[0]}, {args[1]})"
            if node.function == "abs":
                return f"tut_abs({args[0]})"
            raise CodegenError(f"unknown builtin {node.function!r}")
        raise CodegenError(f"cannot translate expression {node!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def block(self, stmts: Sequence[Stmt], params: Sequence[str], indent: int) -> List[str]:
        lines: List[str] = []
        pad = "    " * indent
        for stmt in stmts:
            lines.extend(self.statement(stmt, params, pad, indent))
        return lines

    def statement(self, stmt: Stmt, params, pad: str, indent: int) -> List[str]:
        if isinstance(stmt, Assign):
            return [f"{pad}ctx->v_{sanitize(stmt.target)} = {self.expr(stmt.value, params)};"]
        if isinstance(stmt, Send):
            signal_id = self.signal_ids.get(stmt.signal)
            if signal_id is None:
                raise CodegenError(f"undeclared signal {stmt.signal!r} in send")
            args = ", ".join(self.expr(a, params) for a in stmt.args)
            array = f"(int32_t[]){{{args}}}" if stmt.args else "NULL"
            port = f'"{stmt.via}"' if stmt.via else "NULL"
            return [
                f"{pad}tut_send(ctx, SIG_{sanitize(stmt.signal).upper()}, "
                f"{array}, {len(stmt.args)}, {port});"
            ]
        if isinstance(stmt, If):
            lines = [f"{pad}if ({self.expr(stmt.condition, params)}) {{"]
            lines.extend(self.block(stmt.then_body, params, indent + 1))
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                lines.extend(self.block(stmt.else_body, params, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(stmt, While):
            lines = [f"{pad}while ({self.expr(stmt.condition, params)}) {{"]
            lines.extend(self.block(stmt.body, params, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(stmt, SetTimer):
            timer_id = self.timer_ids[stmt.timer]
            return [
                f"{pad}tut_set_timer(ctx, {timer_id}, "
                f"{self.expr(stmt.duration, params)});"
            ]
        if isinstance(stmt, ResetTimer):
            return [f"{pad}tut_reset_timer(ctx, {self.timer_ids[stmt.timer]});"]
        raise CodegenError(f"cannot translate statement {stmt!r}")

    # ------------------------------------------------------------------
    # header
    # ------------------------------------------------------------------

    def header(self) -> str:
        guard = f"TUT_{self.prefix.upper()}_H"
        lines = [
            f"/* Generated from UML component {self.component.name} */",
            f"#ifndef {guard}",
            f"#define {guard}",
            "",
            '#include "tut_runtime.h"',
            "",
            f"typedef enum {{",
        ]
        for index, state in enumerate(self.machine.states):
            lines.append(
                f"    {self.prefix.upper()}_STATE_{sanitize(state.name).upper()} = {index},"
            )
        lines += [
            f"}} {self.prefix}_state_t;",
            "",
            "typedef struct {",
            "    tut_process base;",
        ]
        for name in sorted(self.machine.variables):
            lines.append(f"    int32_t v_{sanitize(name)};")
        lines += [
            "    uint16_t rng;",
            f"}} {self.prefix}_ctx_t;",
            "",
            f"void {self.prefix}_init({self.prefix}_ctx_t *ctx);",
            f"void {self.prefix}_start({self.prefix}_ctx_t *ctx);",
            f"void {self.prefix}_handle_signal({self.prefix}_ctx_t *ctx, "
            "const tut_signal_t *sig);",
            f"void {self.prefix}_handle_timer({self.prefix}_ctx_t *ctx, int timer_id);",
            "",
            f"#endif /* {guard} */",
            "",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # source
    # ------------------------------------------------------------------

    def source(self) -> str:
        lines = [
            f"/* Generated from UML component {self.component.name} */",
            f'#include "{self.prefix}.h"',
            '#include "tut_app.h"',
            "",
        ]
        lines.extend(self._enter_prototypes())
        lines.append("")
        lines.extend(self._init_function())
        lines.append("")
        lines.extend(self._enter_functions())
        lines.append("")
        lines.extend(self._start_function())
        lines.append("")
        lines.extend(self._signal_function())
        lines.append("")
        lines.extend(self._timer_function())
        lines.append("")
        return "\n".join(lines)

    def _state_const(self, state) -> str:
        return f"{self.prefix.upper()}_STATE_{sanitize(state.name).upper()}"

    # -- hierarchy helpers (static flattening of composite states) ----------

    def _leaf_states(self):
        """States that can be the active leaf."""
        return [s for s in self.machine.states if not s.is_composite]

    @staticmethod
    def _lca(source, target):
        source_chain = {id(s) for s in source.ancestors()}
        node = target.parent
        while node is not None:
            if id(node) in source_chain:
                return node
            node = node.parent
        return None

    @staticmethod
    def _exit_chain(leaf, lca):
        """States exited from ``leaf`` up to (exclusive) ``lca``."""
        chain = []
        node = leaf
        while node is not None and node is not lca:
            chain.append(node)
            node = node.parent
        return chain

    @staticmethod
    def _enter_path(target, lca):
        """States entered above ``target`` (below the LCA), outermost first."""
        return [
            state
            for state in target.path_from_root()
            if state is not target
            and not (lca is not None and (state is lca or not lca.contains(state)))
        ]

    def _effective_transitions(self, leaf, trigger_type):
        """Transitions available in ``leaf``: own first, then ancestors'."""
        result = []
        for source in [leaf] + leaf.ancestors():
            for transition in self.machine.outgoing(source):
                if isinstance(transition.trigger, trigger_type):
                    result.append(transition)
        return result

    def _enter_prototypes(self) -> List[str]:
        return [
            f"static void {self.prefix}_enter_{sanitize(state.name)}"
            f"({self.prefix}_ctx_t *ctx);"
            for state in self.machine.states
        ]

    def _init_function(self) -> List[str]:
        lines = [f"void {self.prefix}_init({self.prefix}_ctx_t *ctx)", "{"]
        for name in sorted(self.machine.variables):
            lines.append(
                f"    ctx->v_{sanitize(name)} = {self.machine.variables[name]};"
            )
        lines.append("    ctx->rng = 0x2F6E;")
        initial = self.machine.initial_state
        lines.append(f"    ctx->base.state = {self._state_const(initial)};")
        lines.append("    ctx->base.terminated = 0;")
        lines.append("}")
        return lines

    def _enter_functions(self) -> List[str]:
        lines: List[str] = []
        for state in self.machine.states:
            lines.append(
                f"static void {self.prefix}_enter_{sanitize(state.name)}"
                f"({self.prefix}_ctx_t *ctx)"
            )
            lines.append("{")
            lines.append(f"    ctx->base.state = {self._state_const(state)};")
            if state.is_final:
                if state.parent is None:
                    lines.append("    ctx->base.terminated = 1;")
                lines.append("}")
                lines.append("")
                continue
            lines.extend(self.block(state.entry, (), 1))
            if state.initial_substate is not None:
                # composite: descend into the initial substate
                lines.append(
                    f"    {self.prefix}_enter_"
                    f"{sanitize(state.initial_substate.name)}(ctx);"
                )
                lines.append("}")
                lines.append("")
                continue
            if state.is_composite:
                raise CodegenError(
                    f"composite state {state.name!r} has no initial substate; "
                    "the generated code cannot enter it"
                )
            # leaf: chase completion transitions (own, then ancestors')
            for transition in self._effective_transitions(
                state, CompletionTrigger
            ):
                condition = (
                    self.expr(transition.guard, ())
                    if transition.guard is not None
                    else "1"
                )
                lines.append(f"    if ({condition}) {{")
                lines.extend(self._fire(transition, state, (), 2))
                lines.append("    }")
            lines.append("}")
            lines.append("")
        return lines

    def _start_function(self) -> List[str]:
        initial = self.machine.initial_state
        lines = [f"void {self.prefix}_start({self.prefix}_ctx_t *ctx)", "{"]
        if self.instrument:
            lines.append('    tut_log_exec(&ctx->base, "start");')
        lines.append(f"    {self.prefix}_enter_{sanitize(initial.name)}(ctx);")
        lines.append("}")
        return lines

    def _fire(
        self, transition: Transition, leaf, params: Sequence[str], indent: int
    ) -> List[str]:
        """Emit the code a transition runs when the active leaf is ``leaf``."""
        pad = "    " * indent
        lines: List[str] = []
        if transition.internal:
            lines.extend(self.block(transition.effect, params, indent))
        else:
            lca = self._lca(transition.source, transition.target)
            for state in self._exit_chain(leaf, lca):
                lines.extend(self.block(state.exit, params, indent))
            lines.extend(self.block(transition.effect, params, indent))
            for state in self._enter_path(transition.target, lca):
                lines.extend(self.block(state.entry, (), indent))
            lines.append(
                f"{pad}{self.prefix}_enter_"
                f"{sanitize(transition.target.name)}(ctx);"
            )
        lines.append(f"{pad}return;")
        return lines

    def _signal_function(self) -> List[str]:
        lines = [
            f"void {self.prefix}_handle_signal({self.prefix}_ctx_t *ctx, "
            "const tut_signal_t *sig)",
            "{",
        ]
        if self.instrument:
            lines.append("    tut_log_exec(&ctx->base, tut_signal_name(sig->id));")
        lines.append("    switch (ctx->base.state) {")
        for state in self._leaf_states():
            transitions = self._effective_transitions(state, SignalTrigger)
            if not transitions:
                continue
            lines.append(f"    case {self._state_const(state)}:")
            lines.append("        switch (sig->id) {")
            by_signal: Dict[str, List[Transition]] = {}
            for transition in transitions:
                by_signal.setdefault(transition.trigger.signal_name, []).append(
                    transition
                )
            for signal_name, group in by_signal.items():
                lines.append(f"        case SIG_{sanitize(signal_name).upper()}: {{")
                params = group[0].trigger.parameter_names
                for index, param in enumerate(params):
                    lines.append(
                        f"            int32_t {sanitize(param)} = "
                        f"sig->args[{index}];"
                    )
                    lines.append(f"            (void){sanitize(param)};")
                for transition in group:
                    if transition.guard is not None:
                        lines.append(
                            f"            if ({self.expr(transition.guard, params)}) {{"
                        )
                        lines.extend(self._fire(transition, state, params, 4))
                        lines.append("            }")
                    else:
                        lines.extend(self._fire(transition, state, params, 3))
                        break
                lines.append("            break;")
                lines.append("        }")
            lines.append("        default: break;")
            lines.append("        }")
            lines.append("        break;")
        lines.append("    default: break;")
        lines.append("    }")
        lines.append("}")
        return lines

    def _timer_function(self) -> List[str]:
        lines = [
            f"void {self.prefix}_handle_timer({self.prefix}_ctx_t *ctx, int timer_id)",
            "{",
        ]
        if self.instrument:
            lines.append('    tut_log_exec(&ctx->base, "timer");')
        lines.append("    switch (ctx->base.state) {")
        for state in self._leaf_states():
            transitions = self._effective_transitions(state, TimerTrigger)
            if not transitions:
                continue
            lines.append(f"    case {self._state_const(state)}:")
            for transition in transitions:
                timer_id = self.timer_ids[transition.trigger.timer_name]
                condition = f"timer_id == {timer_id}"
                if transition.guard is not None:
                    condition += f" && ({self.expr(transition.guard, ())})"
                lines.append(f"        if ({condition}) {{")
                lines.extend(self._fire(transition, state, (), 3))
                lines.append("        }")
            lines.append("        break;")
        lines.append("    default: break;")
        lines.append("    }")
        lines.append("}")
        return lines
