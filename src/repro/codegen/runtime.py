"""The generated C project's runtime library (queues, timers, logging).

Paper Figure 2 shows the executable application linking "run-time libraries
& custom functions".  These templates provide that library: signal queues,
a cooperative priority scheduler, a timer wheel, a CRC-32 routine, and the
log-file hooks the profiling tool consumes.
"""

from __future__ import annotations

RUNTIME_HEADER = """\
/* tut_runtime.h — runtime library for TUT-Profile generated applications */
#ifndef TUT_RUNTIME_H
#define TUT_RUNTIME_H

#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define TUT_MAX_ARGS 4
#define TUT_MAX_TIMERS 8
#define TUT_QUEUE_DEPTH 256

typedef struct {
    int id;
    int32_t args[TUT_MAX_ARGS];
    int argc;
    int sender;                /* process index */
} tut_signal_t;

typedef struct tut_process {
    const char *name;
    int index;
    int state;
    int priority;
    int terminated;
    tut_signal_t queue[TUT_QUEUE_DEPTH];
    int queue_head, queue_len;
    int64_t timer_deadline[TUT_MAX_TIMERS];  /* -1 = disarmed, in us */
} tut_process;

/* implemented by the generated application table */
const char *tut_signal_name(int id);

/* runtime services used by generated code */
void tut_send(void *ctx, int signal_id, const int32_t *args, int argc,
              const char *via_port);
void tut_set_timer(void *ctx, int timer_id, int32_t duration_us);
void tut_reset_timer(void *ctx, int timer_id);
uint32_t tut_crc32(uint32_t value, uint32_t seed);
int32_t tut_rand16(uint16_t *state);
static inline int32_t tut_min(int32_t a, int32_t b) { return a < b ? a : b; }
static inline int32_t tut_max(int32_t a, int32_t b) { return a > b ? a : b; }
static inline int32_t tut_abs(int32_t a) { return a < 0 ? -a : a; }

/* profiling instrumentation (the paper's custom log-file functions) */
void tut_log_open(const char *path);
void tut_log_exec(tut_process *proc, const char *trigger);
void tut_log_signal(tut_process *sender, tut_process *receiver, int signal_id);
void tut_log_close(void);

/* scheduler */
void tut_scheduler_run(int64_t duration_us);

#endif /* TUT_RUNTIME_H */
"""

RUNTIME_SOURCE = """\
/* tut_runtime.c — runtime library implementation */
#include "tut_runtime.h"
#include "tut_app.h"

static FILE *tut_log_file = NULL;
static int64_t tut_now_us = 0;

/* ---------------------------------------------------------------- CRC-32 */

static uint32_t tut_crc_table[256];
static int tut_crc_ready = 0;

static void tut_crc_init(void)
{
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t r = i;
        for (int b = 0; b < 8; b++)
            r = (r & 1) ? (r >> 1) ^ 0xEDB88320u : (r >> 1);
        tut_crc_table[i] = r;
    }
    tut_crc_ready = 1;
}

uint32_t tut_crc32(uint32_t value, uint32_t seed)
{
    if (!tut_crc_ready) tut_crc_init();
    uint32_t r = seed ^ 0xFFFFFFFFu;
    for (int i = 0; i < 4; i++) {
        uint8_t byte = (uint8_t)(value >> (8 * i));
        r = (r >> 8) ^ tut_crc_table[(r ^ byte) & 0xFFu];
    }
    return r ^ 0xFFFFFFFFu;
}

int32_t tut_rand16(uint16_t *state)
{
    *state = (uint16_t)((*state * 75 + 74) % 65537u);
    return (int32_t)(*state & 0xFFFF);
}

/* ------------------------------------------------------------- logging */

void tut_log_open(const char *path)
{
    tut_log_file = fopen(path, "w");
    if (tut_log_file) fprintf(tut_log_file, "TUTLOG 1\\n");
}

void tut_log_exec(tut_process *proc, const char *trigger)
{
    if (tut_log_file)
        fprintf(tut_log_file,
                "EXEC time=%lld process=%s pe=native cycles=1 duration=0 "
                "from=- to=- trigger=%s\\n",
                (long long)tut_now_us * 1000000LL, proc->name, trigger);
}

void tut_log_signal(tut_process *sender, tut_process *receiver, int signal_id)
{
    if (tut_log_file)
        fprintf(tut_log_file,
                "SIG time=%lld signal=%s sender=%s receiver=%s bytes=0 "
                "latency=0 transport=local\\n",
                (long long)tut_now_us * 1000000LL, tut_signal_name(signal_id),
                sender ? sender->name : "-", receiver->name);
}

void tut_log_close(void)
{
    if (tut_log_file) {
        fprintf(tut_log_file, "END time=%lld events=0\\n",
                (long long)tut_now_us * 1000000LL);
        fclose(tut_log_file);
        tut_log_file = NULL;
    }
}

/* ------------------------------------------------------------- queues */

static void tut_enqueue(tut_process *proc, const tut_signal_t *sig)
{
    if (proc->queue_len >= TUT_QUEUE_DEPTH) {
        fprintf(stderr, "queue overflow on %s\\n", proc->name);
        return;
    }
    int tail = (proc->queue_head + proc->queue_len) % TUT_QUEUE_DEPTH;
    proc->queue[tail] = *sig;
    proc->queue_len++;
}

void tut_send(void *ctx, int signal_id, const int32_t *args, int argc,
              const char *via_port)
{
    tut_process *sender = (tut_process *)ctx;
    int receiver_index = tut_route(sender->index, signal_id, via_port);
    if (receiver_index < 0) return;
    tut_process *receiver = tut_process_at(receiver_index);
    tut_signal_t sig;
    memset(&sig, 0, sizeof sig);
    sig.id = signal_id;
    sig.argc = argc > TUT_MAX_ARGS ? TUT_MAX_ARGS : argc;
    for (int i = 0; i < sig.argc; i++) sig.args[i] = args[i];
    sig.sender = sender->index;
    tut_enqueue(receiver, &sig);
    tut_log_signal(sender, receiver, signal_id);
}

/* ------------------------------------------------------------- timers */

void tut_set_timer(void *ctx, int timer_id, int32_t duration_us)
{
    tut_process *proc = (tut_process *)ctx;
    if (timer_id >= 0 && timer_id < TUT_MAX_TIMERS)
        proc->timer_deadline[timer_id] = tut_now_us + duration_us;
}

void tut_reset_timer(void *ctx, int timer_id)
{
    tut_process *proc = (tut_process *)ctx;
    if (timer_id >= 0 && timer_id < TUT_MAX_TIMERS)
        proc->timer_deadline[timer_id] = -1;
}

/* ----------------------------------------------------------- scheduler */

static int tut_fire_due_timers(void)
{
    int fired = 0;
    for (int p = 0; p < tut_process_count(); p++) {
        tut_process *proc = tut_process_at(p);
        if (proc->terminated) continue;
        for (int t = 0; t < TUT_MAX_TIMERS; t++) {
            if (proc->timer_deadline[t] >= 0 &&
                proc->timer_deadline[t] <= tut_now_us) {
                proc->timer_deadline[t] = -1;
                tut_dispatch_timer(p, t);
                fired++;
            }
        }
    }
    return fired;
}

static int tut_drain_one_signal(void)
{
    /* highest priority process with a pending signal runs first */
    int best = -1;
    for (int p = 0; p < tut_process_count(); p++) {
        tut_process *proc = tut_process_at(p);
        if (proc->terminated || proc->queue_len == 0) continue;
        if (best < 0 || proc->priority > tut_process_at(best)->priority)
            best = p;
    }
    if (best < 0) return 0;
    tut_process *proc = tut_process_at(best);
    tut_signal_t sig = proc->queue[proc->queue_head];
    proc->queue_head = (proc->queue_head + 1) % TUT_QUEUE_DEPTH;
    proc->queue_len--;
    tut_dispatch_signal(best, &sig);
    return 1;
}

static int64_t tut_next_deadline(void)
{
    int64_t next = -1;
    for (int p = 0; p < tut_process_count(); p++) {
        tut_process *proc = tut_process_at(p);
        for (int t = 0; t < TUT_MAX_TIMERS; t++) {
            int64_t d = proc->timer_deadline[t];
            if (d >= 0 && (next < 0 || d < next)) next = d;
        }
    }
    return next;
}

void tut_scheduler_run(int64_t duration_us)
{
    tut_now_us = 0;
    tut_dispatch_start();
    while (tut_now_us <= duration_us) {
        tut_fire_due_timers();
        while (tut_drain_one_signal())
            ;
        int64_t next = tut_next_deadline();
        if (next < 0) break;          /* nothing left to happen */
        if (next <= tut_now_us) next = tut_now_us + 1;
        tut_now_us = next;
    }
}
"""


def makefile(component_names) -> str:
    """A Makefile building the generated project."""
    objects = " ".join(f"{name}.o" for name in component_names)
    return f"""\
# Generated Makefile for the TUT-Profile application build
CC ?= cc
CFLAGS ?= -std=c99 -Wall -Wextra -O2

OBJS = tut_runtime.o tut_app.o main.o {objects}

app: $(OBJS)
\t$(CC) $(CFLAGS) -o $@ $(OBJS)

%.o: %.c
\t$(CC) $(CFLAGS) -c $< -o $@

clean:
\trm -f app *.o
.PHONY: clean
"""
