"""Automatic code generation (paper Figure 2: model → C → executable)."""

from repro.codegen.cgen import CGenerator, sanitize
from repro.codegen.project import GeneratedProject, generate_project
from repro.codegen.runtime import RUNTIME_HEADER, RUNTIME_SOURCE, makefile

__all__ = [
    "CGenerator",
    "GeneratedProject",
    "RUNTIME_HEADER",
    "RUNTIME_SOURCE",
    "generate_project",
    "makefile",
    "sanitize",
]
