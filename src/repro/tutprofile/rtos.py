"""RTOS extension of TUT-Profile (the paper's announced future work).

Paper Section 5: "In addition, real-time operating system will be used in
system processors, which will also be accounted in the TUT-Profile."

«PlatformRtos» annotates a «PlatformComponentInstance» with the operating
system configuration of that processor:

* ``Scheduling`` — the ready-queue policy: ``priority`` (the default
  non-preemptive priority scheduling), ``fifo`` (arrival order), or
  ``round-robin`` (fair rotation over the mapped processes);
* ``DispatchOverhead`` — cycles the RTOS dispatcher adds to every
  run-to-completion step;
* ``TickPeriod`` — the RTOS tick in microseconds (bounds timer
  resolution: timers round up to the next tick).

The simulator honours all three (see
:class:`repro.simulation.system.SystemSimulation`).
"""

from __future__ import annotations

from repro.uml.profile import Profile, Stereotype, TagType

PLATFORM_RTOS = "PlatformRtos"


class SchedulingPolicy:
    """Ready-queue policies of «PlatformRtos»."""

    PRIORITY = "priority"
    FIFO = "fifo"
    ROUND_ROBIN = "round-robin"

    ALL = (PRIORITY, FIFO, ROUND_ROBIN)


def extend_with_rtos(profile: Profile) -> Profile:
    """Add the «PlatformRtos» stereotype to a TUT-Profile instance."""
    if profile.stereotype(PLATFORM_RTOS) is not None:
        return profile
    rtos = Stereotype(
        PLATFORM_RTOS,
        metaclasses=("Property", "InstanceSpecification"),
        description="RTOS configuration of a platform component instance",
    )
    rtos.define_tag(
        "Scheduling",
        TagType.ENUM,
        "Ready-queue scheduling policy",
        enum_values=SchedulingPolicy.ALL,
        default=SchedulingPolicy.PRIORITY,
    )
    rtos.define_tag(
        "DispatchOverhead",
        TagType.INT,
        "Cycles the RTOS dispatcher adds per step",
        default=0,
    )
    rtos.define_tag(
        "TickPeriod",
        TagType.INT,
        "RTOS tick period in microseconds (0 = tickless)",
        default=0,
    )
    profile.add_stereotype(rtos)
    return profile
