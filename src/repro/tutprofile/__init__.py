"""TUT-Profile: the paper's UML 2.0 profile (stereotypes, tags, rules).

The module-level :data:`TUT_PROFILE` is the shared default instance,
already extended with the HIBI specialisations of Section 4.2.  Call
:func:`fresh_profile` for an isolated copy (e.g. to mutate in tests).
"""

from repro.tutprofile.stereotypes import (
    ALL_STEREOTYPES,
    APPLICATION,
    APPLICATION_COMPONENT,
    APPLICATION_PROCESS,
    APPLICATION_STEREOTYPES,
    MAPPING_STEREOTYPES,
    PLATFORM,
    PLATFORM_COMMUNICATION_SEGMENT,
    PLATFORM_COMMUNICATION_WRAPPER,
    PLATFORM_COMPONENT,
    PLATFORM_COMPONENT_INSTANCE,
    PLATFORM_MAPPING,
    PLATFORM_STEREOTYPES,
    PROCESS_GROUP,
    PROCESS_GROUPING,
    PROFILE_NAME,
    build_tut_profile,
)
from repro.tutprofile.hibi import HIBI_SEGMENT, HIBI_STEREOTYPES, HIBI_WRAPPER, extend_with_hibi
from repro.tutprofile.rtos import PLATFORM_RTOS, SchedulingPolicy, extend_with_rtos
from repro.tutprofile.tags import (
    Arbitration,
    ComponentType,
    ProcessType,
    RealTimeType,
    process_runs_on,
)
from repro.tutprofile.rules import check_design_rules
from repro.tutprofile.summary import (
    describe_stereotype,
    profile_hierarchy_edges,
    render_table1,
    render_table2,
    render_table3,
    stereotype_summary_rows,
    tagged_value_rows,
)


def fresh_profile(with_hibi: bool = True, with_rtos: bool = True):
    """Build an isolated TUT-Profile instance."""
    profile = build_tut_profile()
    if with_hibi:
        extend_with_hibi(profile)
    if with_rtos:
        extend_with_rtos(profile)
    return profile


#: Shared default profile instance (with HIBI specialisations).
TUT_PROFILE = fresh_profile()

__all__ = [
    "ALL_STEREOTYPES",
    "PLATFORM_RTOS",
    "SchedulingPolicy",
    "extend_with_rtos",
    "APPLICATION",
    "APPLICATION_COMPONENT",
    "APPLICATION_PROCESS",
    "APPLICATION_STEREOTYPES",
    "Arbitration",
    "ComponentType",
    "HIBI_SEGMENT",
    "HIBI_STEREOTYPES",
    "HIBI_WRAPPER",
    "MAPPING_STEREOTYPES",
    "PLATFORM",
    "PLATFORM_COMMUNICATION_SEGMENT",
    "PLATFORM_COMMUNICATION_WRAPPER",
    "PLATFORM_COMPONENT",
    "PLATFORM_COMPONENT_INSTANCE",
    "PLATFORM_MAPPING",
    "PLATFORM_STEREOTYPES",
    "PROCESS_GROUP",
    "PROCESS_GROUPING",
    "PROFILE_NAME",
    "ProcessType",
    "RealTimeType",
    "TUT_PROFILE",
    "build_tut_profile",
    "check_design_rules",
    "describe_stereotype",
    "extend_with_hibi",
    "fresh_profile",
    "process_runs_on",
    "profile_hierarchy_edges",
    "render_table1",
    "render_table2",
    "render_table3",
    "stereotype_summary_rows",
    "tagged_value_rows",
]
