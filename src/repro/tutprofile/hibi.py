"""HIBI specialisations of the platform communication stereotypes.

Paper Section 4.2: "For HIBI, the platform stereotypes are specialized …
«HIBIWrapper» from «PlatformCommunicationWrapper», and «HIBISegment» from
«PlatformCommunicationSegment».  The specialized information contains sizes
of buffers, bus arbitration, and addressing."

The specialisations inherit the base tags and add HIBI v2 specifics.
"""

from __future__ import annotations

from repro.uml.profile import Profile, Stereotype, TagType
from repro.tutprofile.stereotypes import (
    PLATFORM_COMMUNICATION_SEGMENT,
    PLATFORM_COMMUNICATION_WRAPPER,
)

HIBI_WRAPPER = "HIBIWrapper"
HIBI_SEGMENT = "HIBISegment"

HIBI_STEREOTYPES = (HIBI_WRAPPER, HIBI_SEGMENT)


def extend_with_hibi(profile: Profile) -> Profile:
    """Add the HIBI specialisations to an existing TUT-Profile instance."""
    base_wrapper = profile.stereotype(PLATFORM_COMMUNICATION_WRAPPER)
    base_segment = profile.stereotype(PLATFORM_COMMUNICATION_SEGMENT)
    if base_wrapper is None or base_segment is None:
        raise ValueError(
            "profile lacks the base communication stereotypes; build it with "
            "build_tut_profile() first"
        )
    if profile.stereotype(HIBI_WRAPPER) is not None:
        return profile  # already extended

    hibi_wrapper = Stereotype(
        HIBI_WRAPPER,
        metaclasses=(),
        description="HIBI v2 wrapper connecting an agent to a HIBI segment",
        specializes=base_wrapper,
    )
    hibi_wrapper.define_tag(
        "TxBufferSize",
        TagType.INT,
        "Transmit buffer depth (words)",
        default=8,
    )
    hibi_wrapper.define_tag(
        "RxBufferSize",
        TagType.INT,
        "Receive buffer depth (words)",
        default=8,
    )
    hibi_wrapper.define_tag(
        "PriorityClass",
        TagType.INT,
        "HIBI arbitration priority class of this wrapper",
        default=0,
    )
    profile.add_stereotype(hibi_wrapper)

    hibi_segment = Stereotype(
        HIBI_SEGMENT,
        metaclasses=(),
        description="HIBI v2 bus segment",
        specializes=base_segment,
    )
    hibi_segment.define_tag(
        "IsBridge",
        TagType.BOOL,
        "True when this segment bridges two other segments",
        default=False,
    )
    hibi_segment.define_tag(
        "BurstLength",
        TagType.INT,
        "Maximum burst length in words",
        default=8,
    )
    profile.add_stereotype(hibi_segment)
    return profile
