"""Enumerated tag value domains used by TUT-Profile (Tables 2 and 3)."""

from __future__ import annotations


class RealTimeType:
    """Type of real-time requirements (Table 2)."""

    HARD = "hard"
    SOFT = "soft"
    NONE = "none"

    ALL = (HARD, SOFT, NONE)


class ProcessType:
    """Type of an application process (Table 2)."""

    GENERAL = "general"
    DSP = "dsp"
    HARDWARE = "hardware"

    ALL = (GENERAL, DSP, HARDWARE)


class ComponentType:
    """Type of a platform component (Table 3)."""

    GENERAL = "general"
    DSP = "dsp"
    HW_ACCELERATOR = "hw accelerator"

    ALL = (GENERAL, DSP, HW_ACCELERATOR)


class Arbitration:
    """Arbitration scheme of a communication segment (Table 3)."""

    PRIORITY = "priority"
    ROUND_ROBIN = "round-robin"

    ALL = (PRIORITY, ROUND_ROBIN)


#: Which process types a component type can execute natively.  A general
#: purpose CPU runs anything (hardware processes fall back to software);
#: a DSP prefers dsp processes; an accelerator only hosts hardware processes.
COMPATIBLE_PROCESS_TYPES = {
    ComponentType.GENERAL: (ProcessType.GENERAL, ProcessType.DSP, ProcessType.HARDWARE),
    ComponentType.DSP: (ProcessType.GENERAL, ProcessType.DSP),
    ComponentType.HW_ACCELERATOR: (ProcessType.HARDWARE,),
}


def process_runs_on(process_type: str, component_type: str) -> bool:
    """True if a process of ``process_type`` may be mapped onto ``component_type``."""
    return process_type in COMPATIBLE_PROCESS_TYPES.get(component_type, ())
