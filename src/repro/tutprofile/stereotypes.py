"""The TUT-Profile stereotype definitions (paper Tables 1, 2 and 3).

``build_tut_profile()`` constructs a fresh :class:`~repro.uml.Profile`
containing the eleven stereotypes of Table 1, each with the tagged values of
Tables 2/3.  The module-level :data:`TUT_PROFILE` is the shared default
instance used throughout the library.

Metaclass choices: the paper applies «Application», «ApplicationComponent»,
«ProcessGroup», «Platform», «PlatformComponent» and
«PlatformCommunicationSegment» to classes; «ApplicationProcess» and
«PlatformComponentInstance» to parts (class instances in composite
structures, metaclass Property); «ProcessGrouping», «PlatformMapping» and
«PlatformCommunicationWrapper» to dependencies.  Stereotypes applicable to
Property are also accepted on InstanceSpecification so library entries can
be annotated directly.
"""

from __future__ import annotations

from repro.uml.profile import Profile, Stereotype, TagType
from repro.tutprofile.tags import Arbitration, ComponentType, ProcessType, RealTimeType

PROFILE_NAME = "TUTProfile"

# Stereotype names (Table 1)
APPLICATION = "Application"
APPLICATION_COMPONENT = "ApplicationComponent"
APPLICATION_PROCESS = "ApplicationProcess"
PROCESS_GROUP = "ProcessGroup"
PROCESS_GROUPING = "ProcessGrouping"
PLATFORM = "Platform"
PLATFORM_COMPONENT = "PlatformComponent"
PLATFORM_COMPONENT_INSTANCE = "PlatformComponentInstance"
PLATFORM_COMMUNICATION_WRAPPER = "PlatformCommunicationWrapper"
PLATFORM_COMMUNICATION_SEGMENT = "PlatformCommunicationSegment"
PLATFORM_MAPPING = "PlatformMapping"

APPLICATION_STEREOTYPES = (
    APPLICATION,
    APPLICATION_COMPONENT,
    APPLICATION_PROCESS,
    PROCESS_GROUP,
    PROCESS_GROUPING,
)

PLATFORM_STEREOTYPES = (
    PLATFORM,
    PLATFORM_COMPONENT,
    PLATFORM_COMPONENT_INSTANCE,
    PLATFORM_COMMUNICATION_WRAPPER,
    PLATFORM_COMMUNICATION_SEGMENT,
)

MAPPING_STEREOTYPES = (PLATFORM_MAPPING,)

ALL_STEREOTYPES = APPLICATION_STEREOTYPES + PLATFORM_STEREOTYPES + MAPPING_STEREOTYPES


def build_tut_profile() -> Profile:
    """Create a fresh TUT-Profile instance (Tables 1-3)."""
    profile = Profile(PROFILE_NAME)

    # -- application stereotypes (Table 2) -----------------------------------

    application = Stereotype(
        APPLICATION,
        metaclasses=("Class",),
        description="Top-level application class",
    )
    application.define_tag(
        "Priority", TagType.INT, "Execution priority of an application", default=0
    )
    application.define_tag(
        "CodeMemory", TagType.INT, "Required memory for application code", default=0
    )
    application.define_tag(
        "DataMemory", TagType.INT, "Required memory for application data", default=0
    )
    application.define_tag(
        "RealTimeType",
        TagType.ENUM,
        "Type of real-time requirements (hard/soft/none)",
        enum_values=RealTimeType.ALL,
        default=RealTimeType.NONE,
    )
    profile.add_stereotype(application)

    component = Stereotype(
        APPLICATION_COMPONENT,
        metaclasses=("Class",),
        description="Functional application component (active class, has behavior)",
    )
    component.define_tag(
        "CodeMemory",
        TagType.INT,
        "Required memory for application component code",
        default=0,
    )
    component.define_tag(
        "DataMemory",
        TagType.INT,
        "Required memory for application component data",
        default=0,
    )
    component.define_tag(
        "RealTimeType",
        TagType.ENUM,
        "Type of real-time requirements (hard/soft/none)",
        enum_values=RealTimeType.ALL,
        default=RealTimeType.NONE,
    )
    profile.add_stereotype(component)

    process = Stereotype(
        APPLICATION_PROCESS,
        metaclasses=("Property", "InstanceSpecification"),
        description="Instance of a functional application component",
    )
    process.define_tag(
        "Priority", TagType.INT, "Execution priority of application process", default=0
    )
    process.define_tag(
        "CodeMemory",
        TagType.INT,
        "Required memory for application process code",
        default=0,
    )
    process.define_tag(
        "DataMemory",
        TagType.INT,
        "Required memory for application process data",
        default=0,
    )
    process.define_tag(
        "RealTimeType",
        TagType.ENUM,
        "Type of real-time requirements (hard/soft/none)",
        enum_values=RealTimeType.ALL,
        default=RealTimeType.NONE,
    )
    process.define_tag(
        "ProcessType",
        TagType.ENUM,
        "Type of process (general/dsp/hardware)",
        enum_values=ProcessType.ALL,
        default=ProcessType.GENERAL,
    )
    profile.add_stereotype(process)

    group = Stereotype(
        PROCESS_GROUP,
        metaclasses=("Class", "Property", "InstanceSpecification"),
        description="Group of application processes",
    )
    group.define_tag(
        "Fixed",
        TagType.BOOL,
        "Defines if the group is fixed (true/false)",
        default=False,
    )
    group.define_tag(
        "ProcessType",
        TagType.ENUM,
        "Type of processes in a group (general/dsp/hardware)",
        enum_values=ProcessType.ALL,
        default=ProcessType.GENERAL,
    )
    profile.add_stereotype(group)

    grouping = Stereotype(
        PROCESS_GROUPING,
        metaclasses=("Dependency",),
        description="Dependency between an application process and a process group",
    )
    grouping.define_tag(
        "Fixed",
        TagType.BOOL,
        "Defines if the grouping is fixed (true/false)",
        default=False,
    )
    profile.add_stereotype(grouping)

    # -- platform stereotypes (Table 3) ---------------------------------------

    platform = Stereotype(
        PLATFORM,
        metaclasses=("Class",),
        description="Top-level platform class",
    )
    profile.add_stereotype(platform)

    platform_component = Stereotype(
        PLATFORM_COMPONENT,
        metaclasses=("Class",),
        description="Defines features of a platform component",
    )
    platform_component.define_tag(
        "Type",
        TagType.ENUM,
        "Type of a component (general/dsp/hw accelerator)",
        enum_values=ComponentType.ALL,
        default=ComponentType.GENERAL,
    )
    platform_component.define_tag(
        "Area", TagType.REAL, "Area of a component", default=0.0
    )
    platform_component.define_tag(
        "Power", TagType.REAL, "Power consumption of a component", default=0.0
    )
    profile.add_stereotype(platform_component)

    instance = Stereotype(
        PLATFORM_COMPONENT_INSTANCE,
        metaclasses=("Property", "InstanceSpecification"),
        description="Instantiated platform component",
    )
    instance.define_tag(
        "Priority",
        TagType.INT,
        "Execution priority of a component instance",
        default=0,
    )
    instance.define_tag(
        "ID", TagType.INT, "Unique ID of a component instance", required=True
    )
    instance.define_tag(
        "IntMemory", TagType.INT, "Amount of internal memory", default=0
    )
    profile.add_stereotype(instance)

    wrapper = Stereotype(
        PLATFORM_COMMUNICATION_WRAPPER,
        metaclasses=("Dependency", "Connector"),
        description="Defines wrapper parameters of a communication agent",
    )
    wrapper.define_tag("Address", TagType.INT, "Address of a wrapper", required=True)
    wrapper.define_tag(
        "BufferSize", TagType.INT, "Buffer size of a wrapper", default=8
    )
    wrapper.define_tag(
        "MaxTime",
        TagType.INT,
        "Maximum time a wrapper can reserve the segment",
        default=0,
    )
    profile.add_stereotype(wrapper)

    segment = Stereotype(
        PLATFORM_COMMUNICATION_SEGMENT,
        metaclasses=("Class", "Property", "InstanceSpecification"),
        description="Interconnection structure of communicating agents",
    )
    segment.define_tag(
        "DataWidth",
        TagType.INT,
        "Data width (in bits) of a communication segment",
        default=32,
    )
    segment.define_tag(
        "Frequency",
        TagType.INT,
        "Clock frequency of a communication segment",
        default=50_000_000,
    )
    segment.define_tag(
        "Arbitration",
        TagType.ENUM,
        "Arbitration scheme (e.g. priority or round-robin)",
        enum_values=Arbitration.ALL,
        default=Arbitration.PRIORITY,
    )
    profile.add_stereotype(segment)

    # -- mapping stereotype (Section 3.3) --------------------------------------

    mapping = Stereotype(
        PLATFORM_MAPPING,
        metaclasses=("Dependency",),
        description=(
            "Dependency between a process group and a platform component instance"
        ),
    )
    mapping.define_tag(
        "Fixed",
        TagType.BOOL,
        "Defines if the mapping is fixed (true/false)",
        default=False,
    )
    profile.add_stereotype(mapping)

    return profile
