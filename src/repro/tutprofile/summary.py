"""Generators for the paper's Tables 1-3, derived from the live profile.

These functions read the stereotype registry — they do not hard-code the
tables — so the benchmark output stays consistent with the profile
definition by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.uml.profile import Profile, Stereotype
from repro.util.tables import render_table
from repro.tutprofile import stereotypes as st


def stereotype_summary_rows(profile: Profile) -> List[Tuple[str, str]]:
    """Rows of Table 1: (name with extended metaclass, description)."""
    rows = []
    for stereotype in profile.iter_stereotypes():
        if stereotype.name not in st.ALL_STEREOTYPES:
            continue  # specialisations (HIBI) are Section 4 material
        metaclasses = "/".join(stereotype.effective_metaclasses())
        rows.append((f"{stereotype.name} ({metaclasses})", stereotype.description))
    return rows


def render_table1(profile: Profile) -> str:
    """Render Table 1: TUT-Profile stereotype summary."""
    return render_table(
        ("Stereotype name (extended Metaclass)", "Description"),
        stereotype_summary_rows(profile),
        title="Table 1. TUT-Profile stereotype summary.",
    )


def tagged_value_rows(
    profile: Profile, stereotype_names: Sequence[str]
) -> List[Tuple[str, str, str]]:
    """Rows of Tables 2/3: (stereotype, tagged value, description)."""
    rows = []
    for name in stereotype_names:
        stereotype = profile.stereotype(name)
        if stereotype is None:
            continue
        for definition in stereotype.tag_definitions:
            rows.append((f"«{name}»", definition.name, definition.description))
    return rows


def render_table2(profile: Profile) -> str:
    """Render Table 2: tagged values of application stereotypes."""
    return render_table(
        ("Stereotype", "Tagged value", "Description"),
        tagged_value_rows(profile, st.APPLICATION_STEREOTYPES),
        title="Table 2. Tagged values of application stereotypes.",
    )


def render_table3(profile: Profile) -> str:
    """Render Table 3: tagged values of platform stereotypes."""
    return render_table(
        ("Stereotype", "Tagged value", "Description"),
        tagged_value_rows(
            profile, st.PLATFORM_STEREOTYPES + st.MAPPING_STEREOTYPES
        ),
        title="Table 3. Tagged values of platform stereotypes.",
    )


def profile_hierarchy_edges() -> List[Tuple[str, str, str]]:
    """The Figure 3 hierarchy as (source, relation, target) edges."""
    return [
        (st.APPLICATION, "composition", st.APPLICATION_COMPONENT),
        (st.APPLICATION_COMPONENT, "instantiate", st.APPLICATION_PROCESS),
        (st.APPLICATION_PROCESS, "grouping", st.PROCESS_GROUP),
        (st.PROCESS_GROUP, "mapping", st.PLATFORM_COMPONENT_INSTANCE),
        (st.PLATFORM_COMPONENT, "instantiate", st.PLATFORM_COMPONENT_INSTANCE),
        (st.PLATFORM, "composition", st.PLATFORM_COMPONENT),
    ]


def describe_stereotype(stereotype: Stereotype) -> str:
    """One-paragraph description: metaclasses, specialisation, tags."""
    lines = [f"«{stereotype.name}» extends {'/'.join(stereotype.effective_metaclasses())}"]
    if stereotype.specializes is not None:
        lines.append(f"  specializes «{stereotype.specializes.name}»")
    if stereotype.description:
        lines.append(f"  {stereotype.description}")
    for definition in stereotype.all_tag_definitions():
        default = f" = {definition.default!r}" if definition.default is not None else ""
        required = " (required)" if definition.required else ""
        lines.append(
            f"  - {definition.name}: {definition.tag_type}{default}{required}"
        )
    return "\n".join(lines)
