"""TUT-Profile design rules.

The paper: "TUT-Profile classifies different application and platform
components by defining various stereotypes and strict rules how to use
them. The objective is to enhance the support of external tools for
automatic analyzing, profiling, and modifying the UML 2.0 model."

This module is that rule book, executed: :func:`check_design_rules` runs
every rule over a model and returns a :class:`ValidationReport`.  The rules
encode Section 3 of the paper:

R1  «Application» marks exactly one top-level application class.
R2  «ApplicationComponent» is applied only to active classes with behaviour.
R3  Structural (passive) components carry no TUT-Profile stereotype.
R4  «ApplicationProcess» parts are typed by «ApplicationComponent» classes.
R5  Every «ApplicationProcess» belongs to exactly one process group, via a
    «ProcessGrouping» dependency targeting a «ProcessGroup».
R6  A fixed «ProcessGroup» is not the target of non-fixed groupings.
R7  «Platform» marks exactly one top-level platform class.
R8  «PlatformComponentInstance» parts are typed by «PlatformComponent»
    classes, and their ``ID`` tags are unique.
R9  «PlatformMapping» dependencies run from a «ProcessGroup» to a
    «PlatformComponentInstance».
R10 Every process group is mapped to exactly one component instance (when a
    mapping model is present).
R11 A group's ProcessType must be executable by its target component's Type.
R12 A group containing processes of mixed ProcessType gets a warning, and
    its declared ProcessType must match its members'.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.uml.classifier import Class
from repro.uml.dependency import Dependency
from repro.uml.element import Element
from repro.uml.structure import Property
from repro.uml.validation import ValidationReport
from repro.uml.visitor import iter_instances, iter_tree
from repro.tutprofile import stereotypes as st
from repro.tutprofile.tags import process_runs_on


def check_design_rules(root: Element) -> ValidationReport:
    """Run all TUT-Profile design rules over the tree rooted at ``root``."""
    report = ValidationReport()
    context = _Context(root)
    _rule_application_top(context, report)
    _rule_application_components(context, report)
    _rule_structural_unstereotyped(context, report)
    _rule_process_typing(context, report)
    _rule_groupings(context, report)
    _rule_platform_top(context, report)
    _rule_component_instances(context, report)
    _rule_mappings(context, report)
    return report


class _Context:
    """Pre-collected stereotyped elements, shared across rules."""

    def __init__(self, root: Element) -> None:
        self.root = root
        self.applications: List[Class] = []
        self.app_components: List[Class] = []
        self.processes: List[Element] = []
        self.groups: List[Element] = []
        self.groupings: List[Dependency] = []
        self.platforms: List[Class] = []
        self.platform_components: List[Class] = []
        self.instances: List[Element] = []
        self.mappings: List[Dependency] = []
        for element in iter_tree(root):
            if element.has_stereotype(st.APPLICATION):
                self.applications.append(element)
            if element.has_stereotype(st.APPLICATION_COMPONENT):
                self.app_components.append(element)
            if element.has_stereotype(st.APPLICATION_PROCESS):
                self.processes.append(element)
            if element.has_stereotype(st.PROCESS_GROUP):
                self.groups.append(element)
            if element.has_stereotype(st.PROCESS_GROUPING):
                self.groupings.append(element)
            if element.has_stereotype(st.PLATFORM):
                self.platforms.append(element)
            if element.has_stereotype(st.PLATFORM_COMPONENT):
                self.platform_components.append(element)
            if element.has_stereotype(st.PLATFORM_COMPONENT_INSTANCE):
                self.instances.append(element)
            if element.has_stereotype(st.PLATFORM_MAPPING):
                self.mappings.append(element)

    def group_of(self, process: Element) -> List[Element]:
        """Process groups that ``process`` is assigned to via groupings."""
        return [
            grouping.supplier
            for grouping in self.groupings
            if process in grouping.clients
        ]


def _describe(element: Element) -> str:
    name = getattr(element, "qualified_name", None) or getattr(element, "name", "")
    return name or repr(element)


def _rule_application_top(context: _Context, report: ValidationReport) -> None:
    if context.app_components and not context.applications:
        report.error(
            "R1-application-top",
            "model has «ApplicationComponent» classes but no «Application» "
            "top-level class",
        )
    if len(context.applications) > 1:
        names = ", ".join(_describe(a) for a in context.applications)
        report.error(
            "R1-application-top",
            f"more than one «Application» top-level class: {names}",
        )


def _rule_application_components(context: _Context, report: ValidationReport) -> None:
    for component in context.app_components:
        if not isinstance(component, Class):
            continue
        if not component.is_active:
            report.error(
                "R2-functional-active",
                f"«ApplicationComponent» {_describe(component)} must be an "
                "active class",
                component,
            )
        elif component.classifier_behavior is None:
            report.error(
                "R2-functional-behavior",
                f"«ApplicationComponent» {_describe(component)} has no behaviour",
                component,
            )


def _rule_structural_unstereotyped(context: _Context, report: ValidationReport) -> None:
    application_classes = set(context.applications)
    for application in context.applications:
        if not isinstance(application, Class):
            continue
        for part in application.parts:
            part_type = part.type
            if not isinstance(part_type, Class):
                continue
            if part_type.is_structural and part.has_stereotype(st.APPLICATION_PROCESS):
                report.error(
                    "R3-structural-process",
                    f"part {_describe(part)} is typed by the structural "
                    f"component {part_type.name!r} and must not be an "
                    "«ApplicationProcess»",
                    part,
                )
    for component in context.app_components:
        if isinstance(component, Class) and component in application_classes:
            report.error(
                "R3-exclusive-stereotypes",
                f"{_describe(component)} is both «Application» and "
                "«ApplicationComponent»",
                component,
            )


def _rule_process_typing(context: _Context, report: ValidationReport) -> None:
    component_set = set(context.app_components)
    for process in context.processes:
        if not isinstance(process, Property):
            continue
        process_type = process.type
        if process_type is None:
            report.error(
                "R4-process-typed",
                f"«ApplicationProcess» {_describe(process)} is untyped",
                process,
            )
            continue
        if process_type not in component_set:
            report.error(
                "R4-process-component",
                f"«ApplicationProcess» {_describe(process)} is typed by "
                f"{process_type.name!r}, which is not an «ApplicationComponent»",
                process,
            )


def _rule_groupings(context: _Context, report: ValidationReport) -> None:
    group_set = set(context.groups)
    assignments: Dict[int, List[Element]] = {}
    for grouping in context.groupings:
        if len(grouping.clients) != 1 or len(grouping.suppliers) != 1:
            report.error(
                "R5-grouping-binary",
                f"«ProcessGrouping» {_describe(grouping)} must be binary",
                grouping,
            )
            continue
        process = grouping.client
        group = grouping.supplier
        if not process.has_stereotype(st.APPLICATION_PROCESS):
            report.error(
                "R5-grouping-client",
                f"«ProcessGrouping» client {_describe(process)} is not an "
                "«ApplicationProcess»",
                grouping,
            )
        if not group.has_stereotype(st.PROCESS_GROUP):
            report.error(
                "R5-grouping-supplier",
                f"«ProcessGrouping» supplier {_describe(group)} is not a "
                "«ProcessGroup»",
                grouping,
            )
        assignments.setdefault(id(process), []).append(group)
        if group.tag(st.PROCESS_GROUP, "Fixed", False) and not grouping.tag(
            st.PROCESS_GROUPING, "Fixed", False
        ):
            report.error(
                "R6-fixed-group",
                f"group {_describe(group)} is fixed but grouping "
                f"{_describe(grouping)} is not",
                grouping,
            )
        group_type = group.tag(st.PROCESS_GROUP, "ProcessType")
        process_type = process.tag(st.APPLICATION_PROCESS, "ProcessType")
        if group_type and process_type and group_type != process_type:
            report.warning(
                "R12-group-process-type",
                f"process {_describe(process)} ({process_type}) grouped into "
                f"{_describe(group)} ({group_type})",
                grouping,
            )
    for process in context.processes:
        groups = assignments.get(id(process), [])
        if not groups:
            report.warning(
                "R5-ungrouped-process",
                f"«ApplicationProcess» {_describe(process)} belongs to no "
                "process group",
                process,
            )
        elif len(groups) > 1:
            names = ", ".join(_describe(g) for g in groups)
            report.error(
                "R5-multiple-groups",
                f"«ApplicationProcess» {_describe(process)} belongs to "
                f"{len(groups)} groups: {names}",
                process,
            )


def _rule_platform_top(context: _Context, report: ValidationReport) -> None:
    if context.platform_components and not context.platforms:
        report.error(
            "R7-platform-top",
            "model has «PlatformComponent» classes but no «Platform» top-level "
            "class",
        )
    if len(context.platforms) > 1:
        names = ", ".join(_describe(p) for p in context.platforms)
        report.error(
            "R7-platform-top", f"more than one «Platform» top-level class: {names}"
        )


def _rule_component_instances(context: _Context, report: ValidationReport) -> None:
    component_set = set(context.platform_components)
    seen_ids: Dict[int, Element] = {}
    for instance in context.instances:
        if isinstance(instance, Property):
            instance_type = instance.type
            if instance_type is None or instance_type not in component_set:
                type_name = getattr(instance_type, "name", "<untyped>")
                report.error(
                    "R8-instance-component",
                    f"«PlatformComponentInstance» {_describe(instance)} is typed "
                    f"by {type_name!r}, which is not a «PlatformComponent»",
                    instance,
                )
        identifier = instance.tag(st.PLATFORM_COMPONENT_INSTANCE, "ID")
        if identifier is None:
            report.error(
                "R8-instance-id",
                f"«PlatformComponentInstance» {_describe(instance)} has no ID tag",
                instance,
            )
        elif identifier in seen_ids:
            report.error(
                "R8-instance-id-unique",
                f"duplicate component instance ID {identifier} on "
                f"{_describe(instance)} and {_describe(seen_ids[identifier])}",
                instance,
            )
        else:
            seen_ids[identifier] = instance


def _rule_mappings(context: _Context, report: ValidationReport) -> None:
    mapped: Dict[int, List[Element]] = {}
    for mapping in context.mappings:
        if len(mapping.clients) != 1 or len(mapping.suppliers) != 1:
            report.error(
                "R9-mapping-binary",
                f"«PlatformMapping» {_describe(mapping)} must be binary",
                mapping,
            )
            continue
        group = mapping.client
        target = mapping.supplier
        if not group.has_stereotype(st.PROCESS_GROUP):
            report.error(
                "R9-mapping-client",
                f"«PlatformMapping» client {_describe(group)} is not a "
                "«ProcessGroup»",
                mapping,
            )
        # stereotype identity, not tree membership: the platform may live in
        # a different model than the mapping view (multi-model setups)
        if not target.has_stereotype(st.PLATFORM_COMPONENT_INSTANCE):
            report.error(
                "R9-mapping-supplier",
                f"«PlatformMapping» supplier {_describe(target)} is not a "
                "«PlatformComponentInstance»",
                mapping,
            )
            continue
        mapped.setdefault(id(group), []).append(target)
        group_type = group.tag(st.PROCESS_GROUP, "ProcessType")
        target_type = _component_type_of(target)
        if group_type and target_type and not process_runs_on(group_type, target_type):
            report.error(
                "R11-type-compatibility",
                f"group {_describe(group)} ({group_type}) cannot run on "
                f"{_describe(target)} ({target_type})",
                mapping,
            )
    if context.mappings:
        for group in context.groups:
            targets = mapped.get(id(group), [])
            if not targets:
                report.error(
                    "R10-unmapped-group",
                    f"«ProcessGroup» {_describe(group)} is not mapped to any "
                    "component instance",
                    group,
                )
            elif len(targets) > 1:
                names = ", ".join(_describe(t) for t in targets)
                report.error(
                    "R10-multiply-mapped-group",
                    f"«ProcessGroup» {_describe(group)} is mapped to "
                    f"{len(targets)} instances: {names}",
                    group,
                )


def _component_type_of(instance: Element) -> Optional[str]:
    """The platform component Type tag of an instance's classifier."""
    classifier = getattr(instance, "type", None) or getattr(
        instance, "classifier", None
    )
    if classifier is None:
        return None
    return classifier.tag(st.PLATFORM_COMPONENT, "Type")
