"""PlatformModel: instantiation, attachment, topology queries."""

import pytest

from repro.errors import MappingError, ModelError
from repro.platform import PlatformModel, standard_library


@pytest.fixture
def platform():
    return PlatformModel("Plat", standard_library())


class TestInstantiation:
    def test_pe_part_stereotyped(self, platform):
        pe = platform.instantiate("cpu1", "NiosCPU", priority=2)
        assert pe.part.has_stereotype("PlatformComponentInstance")
        assert pe.priority() == 2
        assert pe.identifier == 1

    def test_auto_ids_unique(self, platform):
        first = platform.instantiate("cpu1", "NiosCPU")
        second = platform.instantiate("cpu2", "NiosCPU")
        assert first.identifier != second.identifier

    def test_explicit_id(self, platform):
        pe = platform.instantiate("cpu1", "NiosCPU", identifier=42)
        assert pe.identifier == 42

    def test_duplicate_name_rejected(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        with pytest.raises(ModelError):
            platform.instantiate("cpu1", "NiosCPU")

    def test_top_is_platform_stereotyped(self, platform):
        assert platform.top.has_stereotype("Platform")

    def test_segment_spec_overrides(self, platform):
        segment = platform.segment(
            "seg1", "HIBISegment", arbitration="round-robin", data_width_bits=64
        )
        assert segment.spec.arbitration == "round-robin"
        assert segment.spec.data_width_bits == 64
        assert segment.part.tag("HIBISegment", "Arbitration") == "round-robin"


class TestAttachment:
    def test_wrapper_dependency_stereotyped(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        platform.segment("seg1", "HIBISegment")
        wrapper = platform.attach("cpu1", "seg1", address=0x100)
        assert wrapper.dependency.has_stereotype("HIBIWrapper")
        assert wrapper.dependency.tag("PlatformCommunicationWrapper", "Address") == 0x100

    def test_duplicate_address_rejected(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("cpu2", "NiosCPU")
        platform.segment("seg1", "HIBISegment")
        platform.attach("cpu1", "seg1", address=0x100)
        with pytest.raises(ModelError):
            platform.attach("cpu2", "seg1", address=0x100)

    def test_double_attach_rejected(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        platform.segment("seg1", "HIBISegment")
        platform.attach("cpu1", "seg1")
        with pytest.raises(ModelError):
            platform.attach("cpu1", "seg1")

    def test_auto_addresses_unique(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("cpu2", "NiosCPU")
        platform.segment("seg1", "HIBISegment")
        w1 = platform.attach("cpu1", "seg1")
        w2 = platform.attach("cpu2", "seg1")
        assert w1.spec.address != w2.spec.address

    def test_unknown_agent_or_segment(self, platform):
        platform.segment("seg1", "HIBISegment")
        with pytest.raises(ModelError):
            platform.attach("ghost", "seg1")
        platform.instantiate("cpu1", "NiosCPU")
        with pytest.raises(ModelError):
            platform.attach("cpu1", "ghost")


class TestTopology:
    def build_bridged(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("cpu2", "NiosCPU")
        platform.instantiate("cpu3", "NiosCPU")
        platform.segment("segA", "HIBISegment")
        platform.segment("segB", "HIBISegment")
        platform.segment("bridge", "HIBIBridgeSegment")
        platform.attach("cpu1", "segA", address=0x100)
        platform.attach("cpu2", "segA", address=0x200)
        platform.attach("cpu3", "segB", address=0x300)
        platform.attach("segA", "bridge", address=0x400)
        platform.attach("segB", "bridge", address=0x500)

    def test_same_segment_path(self, platform):
        self.build_bridged(platform)
        assert platform.transfer_path("cpu1", "cpu2") == ["segA"]

    def test_bridged_path(self, platform):
        self.build_bridged(platform)
        assert platform.transfer_path("cpu1", "cpu3") == ["segA", "bridge", "segB"]

    def test_self_path_empty(self, platform):
        self.build_bridged(platform)
        assert platform.transfer_path("cpu1", "cpu1") == []

    def test_disconnected_raises(self, platform):
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("lonely", "NiosCPU")
        platform.segment("segA", "HIBISegment")
        platform.attach("cpu1", "segA")
        with pytest.raises(MappingError):
            platform.transfer_path("cpu1", "lonely")

    def test_segments_of_and_agents_on(self, platform):
        self.build_bridged(platform)
        assert platform.segments_of("cpu1") == ["segA"]
        assert set(platform.agents_on("segA")) == {"cpu1", "cpu2"}
        assert set(platform.agents_on("bridge")) == {"segA", "segB"}

    def test_totals(self, platform):
        self.build_bridged(platform)
        assert platform.total_area() > 0
        assert platform.total_power() > 0


class TestTutwlanPlatform:
    def test_figure7_structure(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        assert set(platform.processing_elements) == {
            "processor1",
            "processor2",
            "processor3",
            "accelerator1",
        }
        assert set(platform.segments) == {"hibisegment1", "hibisegment2", "bridge"}
        assert platform.segments["bridge"].is_bridge

    def test_figure7_paths(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        assert platform.transfer_path("processor1", "processor2") == ["hibisegment1"]
        assert platform.transfer_path("processor1", "accelerator1") == [
            "hibisegment1",
            "bridge",
            "hibisegment2",
        ]
