"""Platform component specs: validation and derived quantities."""

import pytest

from repro.errors import ModelError
from repro.platform import ProcessingElementSpec, SegmentSpec, WrapperSpec


class TestProcessingElementSpec:
    def test_defaults_support_all_types(self):
        spec = ProcessingElementSpec(name="CPU")
        for process_type in ("general", "dsp", "hardware"):
            assert spec.supports(process_type)

    def test_unknown_component_type(self):
        with pytest.raises(ModelError):
            ProcessingElementSpec(name="X", component_type="quantum")

    def test_bad_frequency(self):
        with pytest.raises(ModelError):
            ProcessingElementSpec(name="X", frequency_hz=0)

    def test_bad_statement_cost(self):
        with pytest.raises(ModelError):
            ProcessingElementSpec(
                name="X", cycles_per_statement={"general": 0}
            )

    def test_unknown_process_type_in_costs(self):
        with pytest.raises(ModelError):
            ProcessingElementSpec(
                name="X", cycles_per_statement={"fpga": 3}
            )

    def test_unsupported_type_raises_on_lookup(self):
        spec = ProcessingElementSpec(
            name="Accel",
            component_type="hw accelerator",
            cycles_per_statement={"hardware": 1},
        )
        assert spec.statement_cycles("hardware") == 1
        assert not spec.supports("general")
        with pytest.raises(ModelError):
            spec.statement_cycles("general")


class TestSegmentSpec:
    def test_words_for_bytes(self):
        spec = SegmentSpec(name="S", data_width_bits=32)
        assert spec.words_for_bytes(1) == 1
        assert spec.words_for_bytes(4) == 1
        assert spec.words_for_bytes(5) == 2
        assert spec.words_for_bytes(0) == 1  # at least one word

    def test_transfer_cycles_includes_burst_overhead(self):
        spec = SegmentSpec(name="S", data_width_bits=32, burst_words=8)
        # 16 words = 2 bursts -> 16 + 2 cycles
        assert spec.transfer_cycles(64) == 18
        # 1 word = 1 burst -> 2 cycles
        assert spec.transfer_cycles(4) == 2

    def test_wider_bus_moves_more_per_cycle(self):
        narrow = SegmentSpec(name="N", data_width_bits=16)
        wide = SegmentSpec(name="W", data_width_bits=64)
        assert wide.transfer_cycles(256) < narrow.transfer_cycles(256)

    def test_validation(self):
        with pytest.raises(ModelError):
            SegmentSpec(name="S", arbitration="coin-flip")
        with pytest.raises(ModelError):
            SegmentSpec(name="S", data_width_bits=12)
        with pytest.raises(ModelError):
            SegmentSpec(name="S", burst_words=0)


class TestWrapperSpec:
    def test_validation(self):
        with pytest.raises(ModelError):
            WrapperSpec(address=-1)
        with pytest.raises(ModelError):
            WrapperSpec(address=0, tx_buffer_words=0)

    def test_defaults(self):
        spec = WrapperSpec(address=0x100)
        assert spec.tx_buffer_words == 8
        assert spec.max_reservation_cycles == 0
