"""The platform component library and its UML presentation."""

import pytest

from repro.errors import ModelError
from repro.platform import PlatformLibrary, ProcessingElementSpec, SegmentSpec, standard_library


class TestStandardLibrary:
    def test_catalogue_contents(self):
        library = standard_library()
        assert set(library.processing_elements) == {
            "NiosCPU",
            "NiosDSP",
            "CRCAccelerator",
        }
        assert set(library.segments) == {"HIBISegment", "HIBIBridgeSegment"}

    def test_component_classes_stereotyped(self):
        library = standard_library()
        cpu = library.component_class("NiosCPU")
        assert cpu.has_stereotype("PlatformComponent")
        assert cpu.tag("PlatformComponent", "Type") == "general"
        accel = library.component_class("CRCAccelerator")
        assert accel.tag("PlatformComponent", "Type") == "hw accelerator"

    def test_segment_classes_hibi_stereotyped(self):
        library = standard_library()
        segment = library.component_class("HIBISegment")
        assert segment.has_stereotype("HIBISegment")
        assert segment.has_stereotype("PlatformCommunicationSegment")
        bridge = library.component_class("HIBIBridgeSegment")
        assert bridge.tag("HIBISegment", "IsBridge") is True

    def test_accelerator_only_runs_hardware(self):
        library = standard_library()
        accel = library.processing_element("CRCAccelerator")
        assert accel.supports("hardware")
        assert not accel.supports("general")

    def test_dsp_faster_for_dsp_processes(self):
        library = standard_library()
        dsp = library.processing_element("NiosDSP")
        assert dsp.statement_cycles("dsp") < dsp.statement_cycles("general")


class TestLibraryApi:
    def test_duplicate_rejected(self):
        library = PlatformLibrary("L")
        library.add_processing_element(ProcessingElementSpec(name="X"))
        with pytest.raises(ModelError):
            library.add_processing_element(ProcessingElementSpec(name="X"))

    def test_unknown_lookup(self):
        library = PlatformLibrary("L")
        with pytest.raises(ModelError):
            library.processing_element("ghost")
        with pytest.raises(ModelError):
            library.segment("ghost")
        with pytest.raises(ModelError):
            library.component_class("ghost")
        with pytest.raises(ModelError):
            library.spec_of("ghost")

    def test_spec_of_dispatches(self):
        library = PlatformLibrary("L")
        library.add_processing_element(ProcessingElementSpec(name="P"))
        library.add_segment(SegmentSpec(name="S"))
        assert isinstance(library.spec_of("P"), ProcessingElementSpec)
        assert isinstance(library.spec_of("S"), SegmentSpec)

    def test_component_names_sorted(self):
        library = standard_library()
        names = library.component_names()
        assert names == sorted(names)
