"""MappingModel: map/unmap/remap semantics, fixedness, completeness."""

import pytest

from repro.errors import MappingError
from repro.mapping import MappingModel


class TestMapping:
    def test_map_creates_stereotyped_dependency(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        dependency = mapping.map("g1", "cpu1")
        assert dependency.has_stereotype("PlatformMapping")
        assert mapping.pe_of_group("g1") == "cpu1"

    def test_pe_of_process_follows_group(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        assert mapping.pe_of_process("ping1") == "cpu1"
        assert mapping.pe_of_process("pong1") == "cpu2"

    def test_unknown_group_or_pe(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        with pytest.raises(MappingError):
            mapping.map("ghost", "cpu1")
        with pytest.raises(MappingError):
            mapping.map("g1", "ghost")

    def test_double_map_rejected(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        with pytest.raises(MappingError):
            mapping.map("g1", "cpu2")

    def test_remap_moves_group(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.remap("g1", "cpu2")
        assert mapping.pe_of_group("g1") == "cpu2"

    def test_fixed_mapping_cannot_change(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1", fixed=True)
        assert mapping.is_fixed("g1")
        with pytest.raises(MappingError):
            mapping.unmap("g1")
        with pytest.raises(MappingError):
            mapping.remap("g1", "cpu2")

    def test_unmap_missing(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        with pytest.raises(MappingError):
            mapping.unmap("g1")

    def test_groups_on(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
        assert mapping.groups_on("cpu1") == ["g1", "g2"]
        assert mapping.groups_on("cpu2") == []

    def test_assignment_snapshot(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        assert mapping.assignment() == {"g1": "cpu1", "g2": "cpu2"}


class TestTypeCompatibility:
    # these tests add mapping views, so they build their own system instead
    # of mutating the session-scoped fixture

    def _fresh_system(self):
        from repro.cases.tutwlan import build_tutwlan_platform
        from repro.cases.tutmac import build_tutmac

        application = build_tutmac()
        platform = build_tutwlan_platform(profile=application.profile)
        return application, platform

    def test_hardware_group_fits_cpu_and_accelerator(self):
        # a hardware-type group runs natively on the accelerator but may
        # also fall back to software on a general-purpose CPU (ablation A4)
        application, platform = self._fresh_system()
        mapping = MappingModel(application, platform, view_name="TestView")
        mapping.map("group4", "processor1")
        mapping.remap("group4", "accelerator1")
        assert mapping.pe_of_group("group4") == "accelerator1"

    def test_general_group_rejected_on_accelerator(self):
        application, platform = self._fresh_system()
        mapping = MappingModel(application, platform, view_name="TestView2")
        with pytest.raises(MappingError):
            mapping.map("group1", "accelerator1")


class TestCompleteness:
    def test_check_complete_passes_for_full_mapping(self, pingpong_system):
        _, _, mapping = pingpong_system
        mapping.check_complete()

    def test_unmapped_group_detected(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        with pytest.raises(MappingError) as excinfo:
            mapping.check_complete()
        assert "g2" in str(excinfo.value)

    def test_ungrouped_process_detected(self, pingpong, two_cpu_platform):
        pingpong.unassign("pong1")
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        with pytest.raises(MappingError) as excinfo:
            mapping.check_complete()
        assert "pong1" in str(excinfo.value)

    def test_describe(self, pingpong_system):
        _, _, mapping = pingpong_system
        text = mapping.describe()
        assert "g1 -> cpu1" in text
