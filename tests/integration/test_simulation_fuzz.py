"""Property-based fuzzing of the full simulation stack.

Hypothesis generates random (but well-formed) applications — components
with random self-looping EFSMs, timers, forwarding chains — maps them
onto a random 1-3 PE platform and simulates.  The invariants: no crash,
deterministic repeat, non-overlapping PE execution, transport consistency.
"""

from hypothesis import given, settings, strategies as st

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.simulation import SystemSimulation
from repro.uml import Port


@st.composite
def random_systems(draw):
    """A random pipeline application + platform + mapping description."""
    stage_count = draw(st.integers(min_value=1, max_value=4))
    timer_period = draw(st.integers(min_value=100, max_value=1000))
    work_iterations = draw(st.integers(min_value=0, max_value=20))
    pe_count = draw(st.integers(min_value=1, max_value=3))
    stage_pes = [
        draw(st.integers(min_value=0, max_value=pe_count - 1))
        for _ in range(stage_count + 1)
    ]
    priorities = [
        draw(st.integers(min_value=0, max_value=3)) for _ in range(stage_count + 1)
    ]
    return {
        "stage_count": stage_count,
        "timer_period": timer_period,
        "work_iterations": work_iterations,
        "pe_count": pe_count,
        "stage_pes": stage_pes,
        "priorities": priorities,
    }


def build_system(config):
    app = ApplicationModel("Fuzz")
    stages = config["stage_count"]
    for index in range(stages + 1):
        app.signal(f"hop{index}", [("n", "Int32")])

    source = app.component("Source")
    source.add_port(Port("out", required=["hop0"]))
    machine = app.behavior(source)
    machine.variable("n", 0)
    machine.state("s", initial=True, entry=f"set_timer(t, {config['timer_period']});")
    machine.on_timer(
        "s", "s", "t", internal=True,
        effect=(
            "n = n + 1;"
            "send hop0(n) via out;"
            f"set_timer(t, {config['timer_period']});"
        ),
    )

    previous_signal = "hop0"
    components = [source]
    for index in range(stages):
        stage = app.component(f"Stage{index}")
        stage.add_port(Port("inp", provided=[previous_signal]))
        next_signal = f"hop{index + 1}"
        stage.add_port(Port("out", required=[next_signal]))
        machine = app.behavior(stage)
        machine.variable("acc", 0)
        machine.variable("i", 0)
        machine.state("s", initial=True)
        machine.on_signal(
            "s", "s", previous_signal, params=["n"], internal=True,
            effect=(
                "i = 0;"
                f"while (i < {config['work_iterations']}) {{"
                "  acc = acc + ((n + i) % 13);"
                "  i = i + 1;"
                "}"
                + (f"send {next_signal}(n) via out;" if index < stages - 1 else "")
            ),
        )
        components.append(stage)
        previous_signal = next_signal

    names = []
    for index, component in enumerate(components):
        name = f"p{index}"
        app.process(app.top, name, component, priority=config["priorities"][index])
        names.append(name)
    for index in range(len(components) - 1):
        app.connect(app.top, (names[index], "out"), (names[index + 1], "inp"))

    platform = PlatformModel("FuzzBoard", standard_library())
    for pe_index in range(config["pe_count"]):
        platform.instantiate(f"cpu{pe_index}", "NiosCPU")
    if config["pe_count"] > 1:
        platform.segment("bus0", "HIBISegment")
        for pe_index in range(config["pe_count"]):
            platform.attach(f"cpu{pe_index}", "bus0")

    mapping = MappingModel(app, platform)
    for index, name in enumerate(names):
        group = app.group(f"g{index}")
        app.assign(name, f"g{index}")
        mapping.map(f"g{index}", f"cpu{config['stage_pes'][index]}")
    return app, platform, mapping


@given(random_systems())
@settings(max_examples=25, deadline=None)
def test_random_systems_simulate_safely(config):
    app, platform, mapping = build_system(config)
    result = SystemSimulation(app, platform, mapping).run(5_000)
    # the pipeline actually ran
    assert result.dispatched_events > 0
    # per-PE execution never overlaps
    by_pe = {}
    for record in result.log.exec_records:
        by_pe.setdefault(record.pe, []).append(record)
    for records in by_pe.values():
        records.sort(key=lambda r: r.time_ps)
        for earlier, later in zip(records, records[1:]):
            assert earlier.time_ps + earlier.duration_ps <= later.time_ps
    # transports match the mapping
    for record in result.log.signal_records:
        sender_pe = mapping.pe_of_process(record.sender)
        receiver_pe = mapping.pe_of_process(record.receiver)
        expected = "local" if sender_pe == receiver_pe else "bus"
        assert record.transport == expected


@given(random_systems())
@settings(max_examples=10, deadline=None)
def test_random_systems_are_deterministic(config):
    first = SystemSimulation(*build_system(config)).run(3_000)
    second = SystemSimulation(*build_system(config)).run(3_000)
    assert first.writer.render() == second.writer.render()
