"""Every shipped example runs to completion and prints what it promises."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)


def run_example(name, timeout=300):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=os.path.dirname(path),
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Process group execution times" in out
        assert "acquisition" in out
        assert "bus transfers" in out

    def test_tutmac_wlan(self):
        out = run_example("tutmac_wlan.py")
        assert "«Application» Tutmac_Protocol" in out
        assert "Process group execution times" in out
        assert "group1" in out
        assert "artefacts written" in out
        assert "diagrams exported" in out

    def test_architecture_exploration(self):
        out = run_example("architecture_exploration.py")
        assert "Grouping strategies" in out
        assert "evaluated 108 assignments" in out
        assert "bus traffic reduced" in out

    def test_custom_profile_and_codegen(self):
        out = run_example("custom_profile_and_codegen.py")
        assert "XMI round-trip: ok" in out
        assert "generated C project" in out

    def test_dsp_pipeline(self):
        out = run_example("dsp_pipeline.py")
        assert "NiosDSP (matched)" in out
        assert "cheaper" in out
