"""Scalability smoke: many processes, many PEs, long horizons."""

import pytest

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.simulation import SystemSimulation
from repro.uml import Port


def build_wide_system(worker_count=24, pe_count=6):
    """A star: one dispatcher fanning work out to many workers."""
    app = ApplicationModel("Wide")
    app.signal("work", [("n", "Int32")])
    app.signal("done", [("n", "Int32")])

    worker = app.component("Worker")
    worker.add_port(Port("io", provided=["work"], required=["done"]))
    machine = app.behavior(worker)
    machine.variable("count", 0)
    machine.state("s", initial=True)
    machine.on_signal(
        "s", "s", "work", params=["n"], internal=True,
        effect="count = count + 1; send done(n) via io;",
    )

    dispatcher = app.component("Dispatcher")
    ports = []
    for index in range(worker_count):
        port = f"out{index}"
        dispatcher.add_port(Port(port, required=["work"], provided=["done"]))
        ports.append(port)
    machine = app.behavior(dispatcher)
    machine.variable("round_no", 0)
    machine.variable("acks", 0)
    sends = "".join(f"send work(round_no) via {p};" for p in ports)
    machine.state("s", initial=True, entry="set_timer(t, 500);")
    machine.on_timer(
        "s", "s", "t", internal=True,
        effect=f"round_no = round_no + 1; {sends} set_timer(t, 500);",
    )
    machine.on_signal(
        "s", "s", "done", params=["n"], internal=True,
        effect="acks = acks + 1;", priority=1,
    )

    app.process(app.top, "dispatcher", dispatcher, priority=5)
    worker_names = []
    for index in range(worker_count):
        name = f"worker{index:02d}"
        app.process(app.top, name, worker)
        app.connect(app.top, ("dispatcher", f"out{index}"), (name, "io"))
        worker_names.append(name)

    platform = PlatformModel("Farm", standard_library())
    platform.segment("bus0", "HIBISegment")
    for pe_index in range(pe_count):
        platform.instantiate(f"cpu{pe_index}", "NiosCPU")
        platform.attach(f"cpu{pe_index}", "bus0")

    mapping = MappingModel(app, platform)
    app.group("g_disp")
    app.assign("dispatcher", "g_disp")
    mapping.map("g_disp", "cpu0")
    for index, name in enumerate(worker_names):
        group = f"g{index}"
        app.group(group)
        app.assign(name, group)
        mapping.map(group, f"cpu{index % pe_count}")
    return app, platform, mapping


class TestWideSystem:
    def test_24_workers_on_6_pes(self):
        app, platform, mapping = build_wide_system()
        simulation = SystemSimulation(app, platform, mapping)
        result = simulation.run(20_000)
        # every round reaches every worker, and every ack returns
        rounds = simulation.executors["dispatcher"].variables["round_no"]
        assert rounds >= 30
        total_worked = sum(
            simulation.executors[f"worker{i:02d}"].variables["count"]
            for i in range(24)
        )
        # the last round's fan-out may still be in flight
        assert total_worked >= (rounds - 2) * 24
        acks = simulation.executors["dispatcher"].variables["acks"]
        assert acks >= total_worked - 24

    def test_all_pes_loaded(self):
        app, platform, mapping = build_wide_system()
        result = SystemSimulation(app, platform, mapping).run(20_000)
        utilization = result.pe_utilization()
        assert all(utilization[f"cpu{i}"] > 0 for i in range(6))

    def test_bus_contention_serialises(self):
        app, platform, mapping = build_wide_system()
        result = SystemSimulation(app, platform, mapping).run(20_000)
        stats = result.bus_stats["bus0"]
        assert stats.transfers > 500
        assert stats.wait_ps > 0  # 24 simultaneous fan-out transfers contend


class TestLongHorizon:
    def test_one_second_tutmac_reference(self):
        from repro.cases.tutmac import build_tutmac
        from repro.simulation import run_reference_simulation

        result = run_reference_simulation(
            build_tutmac(), duration_us=1_000_000, max_events=2_000_000
        )
        # 4000 slots, 500 MSDUs, 100 beacons ... and stable proportions
        from repro.profiling import profile_run

        data = profile_run(result, build_tutmac())
        assert 0.85 <= data.group_share("group1") <= 0.96
        assert data.dropped_signals == 0
