"""Serialise → parse → rebuild the three views → simulate identically.

The strongest round-trip property the tool flow can have: a design saved
to XMI and reloaded behaves *bit-identically* in simulation — so model
interchange between tools (the paper's TAU G2 ↔ profiling tool split)
loses nothing.
"""

import pytest

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.simulation import SystemSimulation, run_reference_simulation
from repro.tutprofile import fresh_profile
from repro.uml import model_to_xml, xml_to_model


def reload_system():
    from repro.cases.tutwlan import build_tutwlan_system

    application, platform, mapping = build_tutwlan_system()
    xml = model_to_xml(application.model)
    profile = fresh_profile()
    parsed = xml_to_model(xml, profiles=[profile])
    reloaded_app = ApplicationModel.from_model(parsed, profile=profile)
    reloaded_platform = PlatformModel.from_model(
        parsed, standard_library(profile=profile), profile=profile
    )
    reloaded_mapping = MappingModel.from_model(
        reloaded_app, reloaded_platform, profile=profile
    )
    return reloaded_app, reloaded_platform, reloaded_mapping


class TestApplicationReload:
    def test_structures_recovered(self):
        application, _, _ = reload_system()
        assert set(application.processes) == {
            "msduRec", "msduDel", "frag", "defrag", "crc",
            "mng", "rmng", "rca", "user", "phy", "mngUser",
        }
        assert {p.name for p in application.environment_processes()} == {
            "user", "phy", "mngUser"
        }
        assert sorted(application.groups) == [
            "group1", "group2", "group3", "group4"
        ]
        assert application.group_of("rca") == "group1"

    def test_boundary_bindings_survive(self):
        application, _, _ = reload_system()
        assert application.boundary_bindings == {
            "pUser": ("user", "pMac"),
            "pPhy": ("phy", "pMac"),
            "pMngUser": ("mngUser", "pMng"),
        }

    def test_routing_works_after_reload(self):
        application, _, _ = reload_system()
        assert application.route("user", "msdu_req") == ("msduRec", "pUser")
        assert application.route("frag", "pdu_tx") == ("rca", "DataPort")

    def test_signals_recovered_with_sizes(self):
        application, _, _ = reload_system()
        assert application.find_signal("msdu_req").size_bytes() > 1024


class TestPlatformReload:
    def test_topology_recovered(self):
        _, platform, _ = reload_system()
        assert set(platform.processing_elements) == {
            "processor1", "processor2", "processor3", "accelerator1"
        }
        assert platform.transfer_path("processor1", "accelerator1") == [
            "hibisegment1", "bridge", "hibisegment2"
        ]

    def test_specs_rebound_from_library(self):
        _, platform, _ = reload_system()
        assert platform.pe("accelerator1").spec.component_type == "hw accelerator"
        assert platform.segments["bridge"].is_bridge

    def test_wrapper_parameters_recovered(self):
        _, platform, _ = reload_system()
        wrapper = platform.wrapper_of("processor1", "hibisegment1")
        assert wrapper.spec.address == 0x100

    def test_extension_after_reload(self):
        """The reloaded platform is a live facade: it can keep growing."""
        _, platform, _ = reload_system()
        platform.instantiate("extra", "NiosCPU")
        platform.attach("extra", "hibisegment2")
        assert platform.transfer_path("extra", "processor3") == ["hibisegment2"]


class TestMappingReload:
    def test_assignment_recovered(self):
        _, _, mapping = reload_system()
        assert mapping.assignment() == {
            "group1": "processor1",
            "group2": "processor2",
            "group3": "processor1",
            "group4": "accelerator1",
        }
        mapping.check_complete()


class TestBitIdenticalSimulation:
    def test_platform_run_identical(self):
        from repro.cases.tutwlan import build_tutwlan_system

        original = SystemSimulation(*build_tutwlan_system()).run(30_000)
        reloaded = SystemSimulation(*reload_system()).run(30_000)
        assert original.writer.render() == reloaded.writer.render()

    def test_reference_run_identical(self):
        from repro.cases.tutmac import build_tutmac

        application = build_tutmac()
        xml = model_to_xml(application.model)
        profile = fresh_profile()
        reloaded = ApplicationModel.from_model(
            xml_to_model(xml, profiles=[profile]), profile=profile
        )
        first = run_reference_simulation(build_tutmac(), duration_us=30_000)
        second = run_reference_simulation(reloaded, duration_us=30_000)
        assert first.writer.render() == second.writer.render()


class TestRtosSurvivesReload:
    def test_rtos_configuration_round_trips(self):
        from repro.platform import standard_library

        application, platform, mapping = __import__(
            "repro.cases.tutwlan", fromlist=["build_tutwlan_system"]
        ).build_tutwlan_system()
        platform.configure_rtos(
            "processor1",
            scheduling="round-robin",
            dispatch_overhead_cycles=77,
            tick_period_us=50,
        )
        xml = model_to_xml(application.model)
        profile = fresh_profile()
        parsed = xml_to_model(xml, profiles=[profile])
        reloaded = PlatformModel.from_model(
            parsed, standard_library(profile=profile), profile=profile
        )
        pe = reloaded.pe("processor1")
        assert pe.has_rtos()
        assert pe.scheduling_policy() == "round-robin"
        assert pe.dispatch_overhead_cycles() == 77
        assert pe.tick_period_us() == 50
        # an unconfigured processor stays RTOS-free
        assert not reloaded.pe("processor2").has_rtos()
