"""Error handling across subsystem boundaries."""

import pytest

from repro.errors import MappingError, ModelError, SimulationError
from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.simulation import SystemSimulation
from repro.uml import Model, Package, Port


class TestFromModelErrors:
    def test_application_requires_view_package(self):
        with pytest.raises(ModelError):
            ApplicationModel.from_model(Model("Empty"))

    def test_application_requires_single_top(self):
        app = ApplicationModel("A")
        # remove the «Application» stereotype to break discovery
        app.profile.unapply(app.top, "Application")
        with pytest.raises(ModelError):
            ApplicationModel.from_model(app.model, profile=app.profile)

    def test_platform_requires_view_package(self):
        with pytest.raises(ModelError):
            PlatformModel.from_model(Model("Empty"), standard_library())

    def test_platform_requires_known_component(self):
        platform = PlatformModel("P", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        # a library lacking NiosCPU cannot rebind the spec
        from repro.platform import PlatformLibrary

        with pytest.raises(ModelError):
            PlatformModel.from_model(platform.model, PlatformLibrary("empty"))

    def test_mapping_requires_view_package(self, pingpong, two_cpu_platform):
        with pytest.raises(MappingError):
            MappingModel.from_model(
                pingpong, two_cpu_platform, view_name="NoSuchView"
            )


class TestSimulationRuntimeErrors:
    def build_app_sending(self, signal_declared):
        app = ApplicationModel("Bad")
        app.signal("ok")
        if signal_declared:
            app.signal("mystery")
        talker = app.component("Talker")
        talker.add_port(Port("out"))
        machine = app.behavior(talker)
        machine.state("s", initial=True, entry="send mystery() via out;")
        listener = app.component("Listener")
        listener.add_port(Port("inp"))
        machine2 = app.behavior(listener)
        machine2.state("s", initial=True)
        app.process(app.top, "t1", talker)
        app.process(app.top, "l1", listener)
        app.connect(app.top, ("t1", "out"), ("l1", "inp"))
        app.group("g")
        app.assign("t1", "g")
        app.assign("l1", "g")
        return app

    def _system(self, app):
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        return SystemSimulation(app, platform, mapping)

    def test_undeclared_signal_send_raises(self):
        app = self.build_app_sending(signal_declared=False)
        simulation = self._system(app)
        with pytest.raises(ModelError):
            simulation.run(1_000)

    def test_declared_signal_send_works(self):
        app = self.build_app_sending(signal_declared=True)
        result = self._system(app).run(1_000)
        assert any(r.signal == "mystery" for r in result.log.signal_records)

    def test_disconnected_pes_raise_during_transfer(self, pingpong):
        platform = PlatformModel("Islands", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("cpu2", "NiosCPU")  # no segment attaches them
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        simulation = SystemSimulation(pingpong, platform, mapping)
        with pytest.raises(MappingError):
            simulation.run(5_000)


class TestFlowErrorSurface:
    def test_flow_propagates_simulation_errors(self, tmp_path, pingpong):
        from repro.flow import run_design_flow

        platform = PlatformModel("Islands", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("cpu2", "NiosCPU")
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        with pytest.raises(MappingError):
            run_design_flow(
                pingpong, platform, mapping, str(tmp_path), duration_us=5_000
            )
