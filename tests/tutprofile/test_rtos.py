"""The «PlatformRtos» extension (paper §5 future work)."""

import pytest

from repro.errors import ProfileError
from repro.tutprofile import PLATFORM_RTOS, SchedulingPolicy, extend_with_rtos, fresh_profile
from repro.uml import Property


class TestStereotype:
    def test_present_in_default_profile(self):
        profile = fresh_profile()
        assert profile.stereotype(PLATFORM_RTOS) is not None

    def test_opt_out(self):
        profile = fresh_profile(with_rtos=False)
        assert profile.stereotype(PLATFORM_RTOS) is None

    def test_idempotent_extension(self):
        profile = fresh_profile()
        count = len(profile.stereotypes)
        extend_with_rtos(profile)
        assert len(profile.stereotypes) == count

    def test_tags_and_defaults(self):
        profile = fresh_profile()
        part = Property("cpu1")
        profile.apply(part, PLATFORM_RTOS)
        assert part.tag(PLATFORM_RTOS, "Scheduling") == SchedulingPolicy.PRIORITY
        assert part.tag(PLATFORM_RTOS, "DispatchOverhead") == 0
        assert part.tag(PLATFORM_RTOS, "TickPeriod") == 0

    def test_policy_domain(self):
        profile = fresh_profile()
        part = Property("cpu1")
        with pytest.raises(ProfileError):
            profile.apply(part, PLATFORM_RTOS, Scheduling="lottery")


class TestPlatformApi:
    def test_configure_rtos(self, two_cpu_platform):
        pe = two_cpu_platform.configure_rtos(
            "cpu1",
            scheduling="round-robin",
            dispatch_overhead_cycles=50,
            tick_period_us=100,
        )
        assert pe.has_rtos()
        assert pe.scheduling_policy() == "round-robin"
        assert pe.dispatch_overhead_cycles() == 50
        assert pe.tick_period_us() == 100

    def test_unconfigured_pe_defaults(self, two_cpu_platform):
        pe = two_cpu_platform.pe("cpu2")
        assert not pe.has_rtos()
        assert pe.scheduling_policy() == "priority"
        assert pe.dispatch_overhead_cycles() == 0
