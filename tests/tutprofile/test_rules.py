"""The TUT-Profile design-rule checker (rules R1-R12)."""

import pytest

from repro.uml import (
    Class,
    Dependency,
    InstanceSpecification,
    Model,
    Package,
    Property,
    StateMachine,
)
from repro.tutprofile import check_design_rules, fresh_profile


@pytest.fixture
def profile():
    return fresh_profile()


@pytest.fixture
def model():
    model = Model("M")
    package = Package("P")
    model.add(package)
    return model


def package_of(model):
    return model.member("P")


def functional_component(profile, model, name="Comp"):
    component = Class(name, is_active=True)
    package_of(model).add(component)
    machine = StateMachine("m")
    component.set_behavior(machine)
    machine.state("s", initial=True)
    profile.apply(component, "ApplicationComponent")
    return component


def rule_ids(report):
    return {issue.rule for issue in report.issues}


class TestApplicationRules:
    def test_r1_missing_application_top(self, profile, model):
        functional_component(profile, model)
        assert "R1-application-top" in rule_ids(check_design_rules(model))

    def test_r1_duplicate_application_top(self, profile, model):
        for name in ("A", "B"):
            top = Class(name)
            package_of(model).add(top)
            profile.apply(top, "Application")
        assert "R1-application-top" in rule_ids(check_design_rules(model))

    def test_r2_passive_component_rejected(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        passive = Class("P1", is_active=False)
        package_of(model).add(passive)
        profile.apply(passive, "ApplicationComponent")
        assert "R2-functional-active" in rule_ids(check_design_rules(model))

    def test_r2_behaviorless_component_rejected(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        empty = Class("P1", is_active=True)
        package_of(model).add(empty)
        profile.apply(empty, "ApplicationComponent")
        report = check_design_rules(model)
        assert "R2-functional-behavior" in rule_ids(report)

    def test_r3_structural_part_must_not_be_process(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        structural = Class("S", is_active=False)
        package_of(model).add(structural)
        part = top.add_part(Property("s1", structural))
        profile.apply(part, "ApplicationProcess")
        assert "R3-structural-process" in rule_ids(check_design_rules(model))

    def test_r4_process_typed_by_component(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        plain = Class("Plain", is_active=True)
        machine = StateMachine("m")
        plain.set_behavior(machine)
        machine.state("s", initial=True)
        package_of(model).add(plain)  # NOT stereotyped as component
        part = top.add_part(Property("p1", plain))
        profile.apply(part, "ApplicationProcess")
        assert "R4-process-component" in rule_ids(check_design_rules(model))

    def test_r5_ungrouped_process_warned(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        component = functional_component(profile, model)
        part = top.add_part(Property("p1", component))
        profile.apply(part, "ApplicationProcess")
        report = check_design_rules(model)
        assert "R5-ungrouped-process" in {i.rule for i in report.warnings}

    def test_r5_double_grouping_rejected(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        component = functional_component(profile, model)
        part = top.add_part(Property("p1", component))
        profile.apply(part, "ApplicationProcess")
        for group_name in ("g1", "g2"):
            group = InstanceSpecification(group_name)
            package_of(model).add(group)
            profile.apply(group, "ProcessGroup")
            grouping = Dependency(f"to_{group_name}", client=part, supplier=group)
            package_of(model).add(grouping)
            profile.apply(grouping, "ProcessGrouping")
        assert "R5-multiple-groups" in rule_ids(check_design_rules(model))

    def test_r6_fixed_group_needs_fixed_grouping(self, profile, model):
        top = Class("Top")
        package_of(model).add(top)
        profile.apply(top, "Application")
        component = functional_component(profile, model)
        part = top.add_part(Property("p1", component))
        profile.apply(part, "ApplicationProcess")
        group = InstanceSpecification("g1")
        package_of(model).add(group)
        profile.apply(group, "ProcessGroup", Fixed=True)
        grouping = Dependency("to_g1", client=part, supplier=group)
        package_of(model).add(grouping)
        profile.apply(grouping, "ProcessGrouping", Fixed=False)
        assert "R6-fixed-group" in rule_ids(check_design_rules(model))


class TestPlatformRules:
    def _platform(self, profile, model):
        top = Class("Plat")
        package_of(model).add(top)
        profile.apply(top, "Platform")
        component = Class("CPU")
        package_of(model).add(component)
        profile.apply(component, "PlatformComponent", Type="general")
        return top, component

    def test_r7_missing_platform_top(self, profile, model):
        component = Class("CPU")
        package_of(model).add(component)
        profile.apply(component, "PlatformComponent")
        assert "R7-platform-top" in rule_ids(check_design_rules(model))

    def test_r8_duplicate_instance_id(self, profile, model):
        top, component = self._platform(profile, model)
        for name in ("cpu1", "cpu2"):
            part = top.add_part(Property(name, component))
            profile.apply(part, "PlatformComponentInstance", ID=1)
        assert "R8-instance-id-unique" in rule_ids(check_design_rules(model))

    def test_r8_instance_needs_component_type(self, profile, model):
        top, component = self._platform(profile, model)
        plain = Class("Plain")
        package_of(model).add(plain)
        part = top.add_part(Property("x", plain))
        profile.apply(part, "PlatformComponentInstance", ID=1)
        assert "R8-instance-component" in rule_ids(check_design_rules(model))


class TestMappingRules:
    def _system(self, profile, model):
        app_top = Class("Top")
        package_of(model).add(app_top)
        profile.apply(app_top, "Application")
        component = functional_component(profile, model)
        part = app_top.add_part(Property("p1", component))
        profile.apply(part, "ApplicationProcess")
        group = InstanceSpecification("g1")
        package_of(model).add(group)
        profile.apply(group, "ProcessGroup", ProcessType="general")
        grouping = Dependency("to_g1", client=part, supplier=group)
        package_of(model).add(grouping)
        profile.apply(grouping, "ProcessGrouping")
        plat_top = Class("Plat")
        package_of(model).add(plat_top)
        profile.apply(plat_top, "Platform")
        pe_class = Class("Accel")
        package_of(model).add(pe_class)
        profile.apply(pe_class, "PlatformComponent", Type="hw accelerator")
        pe = plat_top.add_part(Property("acc1", pe_class))
        profile.apply(pe, "PlatformComponentInstance", ID=1)
        return group, pe

    def test_r11_type_incompatible_mapping(self, profile, model):
        group, pe = self._system(profile, model)
        mapping = Dependency("map1", client=group, supplier=pe)
        package_of(model).add(mapping)
        profile.apply(mapping, "PlatformMapping")
        assert "R11-type-compatibility" in rule_ids(check_design_rules(model))

    def test_r10_unmapped_group_when_mappings_exist(self, profile, model):
        group, pe = self._system(profile, model)
        other = InstanceSpecification("g2")
        package_of(model).add(other)
        profile.apply(other, "ProcessGroup")
        mapping = Dependency("map2", client=other, supplier=pe)
        package_of(model).add(mapping)
        profile.apply(mapping, "PlatformMapping")
        assert "R10-unmapped-group" in rule_ids(check_design_rules(model))

    def test_r9_mapping_client_must_be_group(self, profile, model):
        group, pe = self._system(profile, model)
        rogue = InstanceSpecification("rogue")
        package_of(model).add(rogue)
        mapping = Dependency("bad", client=rogue, supplier=pe)
        package_of(model).add(mapping)
        profile.apply(mapping, "PlatformMapping")
        assert "R9-mapping-client" in rule_ids(check_design_rules(model))


class TestCleanModels:
    def test_tutmac_passes_all_rules(self, tutmac_app):
        report = check_design_rules(tutmac_app.model)
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    def test_tutwlan_system_passes_all_rules(self, tutwlan_system):
        application, platform, mapping = tutwlan_system
        report = check_design_rules(application.model)
        assert report.ok, report.render()
