"""TUT-Profile content: the stereotypes and tags of Tables 1-3."""

import pytest

from repro.tutprofile import (
    ALL_STEREOTYPES,
    APPLICATION_STEREOTYPES,
    PLATFORM_STEREOTYPES,
    TUT_PROFILE,
    fresh_profile,
)


class TestTable1Inventory:
    def test_eleven_stereotypes(self):
        # Table 1 lists exactly eleven stereotypes
        assert len(ALL_STEREOTYPES) == 11

    def test_all_present_in_profile(self):
        for name in ALL_STEREOTYPES:
            assert TUT_PROFILE.stereotype(name) is not None, name

    def test_every_stereotype_has_description(self):
        for name in ALL_STEREOTYPES:
            assert TUT_PROFILE.stereotype(name).description

    def test_metaclass_assignments(self):
        expectations = {
            "Application": ("Class",),
            "ApplicationComponent": ("Class",),
            "ProcessGrouping": ("Dependency",),
            "Platform": ("Class",),
            "PlatformComponent": ("Class",),
            "PlatformMapping": ("Dependency",),
        }
        for name, metaclasses in expectations.items():
            assert TUT_PROFILE.stereotype(name).effective_metaclasses() == metaclasses

    def test_part_level_stereotypes_extend_property(self):
        for name in ("ApplicationProcess", "PlatformComponentInstance"):
            assert "Property" in TUT_PROFILE.stereotype(name).effective_metaclasses()


class TestTable2ApplicationTags:
    @pytest.mark.parametrize(
        "stereotype,expected",
        [
            ("Application", ["Priority", "CodeMemory", "DataMemory", "RealTimeType"]),
            ("ApplicationComponent", ["CodeMemory", "DataMemory", "RealTimeType"]),
            (
                "ApplicationProcess",
                ["Priority", "CodeMemory", "DataMemory", "RealTimeType", "ProcessType"],
            ),
            ("ProcessGroup", ["Fixed", "ProcessType"]),
            ("ProcessGrouping", ["Fixed"]),
        ],
    )
    def test_tag_names(self, stereotype, expected):
        tags = [d.name for d in TUT_PROFILE.stereotype(stereotype).tag_definitions]
        assert tags == expected

    def test_real_time_type_domain(self):
        tag = TUT_PROFILE.stereotype("ApplicationProcess").find_tag("RealTimeType")
        assert sorted(tag.enum_values) == ["hard", "none", "soft"]

    def test_process_type_domain(self):
        tag = TUT_PROFILE.stereotype("ApplicationProcess").find_tag("ProcessType")
        assert sorted(tag.enum_values) == ["dsp", "general", "hardware"]


class TestTable3PlatformTags:
    @pytest.mark.parametrize(
        "stereotype,expected",
        [
            ("PlatformComponent", ["Type", "Area", "Power"]),
            ("PlatformComponentInstance", ["Priority", "ID", "IntMemory"]),
            ("PlatformCommunicationWrapper", ["Address", "BufferSize", "MaxTime"]),
            (
                "PlatformCommunicationSegment",
                ["DataWidth", "Frequency", "Arbitration"],
            ),
            ("PlatformMapping", ["Fixed"]),
        ],
    )
    def test_tag_names(self, stereotype, expected):
        tags = [d.name for d in TUT_PROFILE.stereotype(stereotype).tag_definitions]
        assert tags == expected

    def test_component_type_domain(self):
        tag = TUT_PROFILE.stereotype("PlatformComponent").find_tag("Type")
        assert sorted(tag.enum_values) == ["dsp", "general", "hw accelerator"]

    def test_arbitration_domain(self):
        tag = TUT_PROFILE.stereotype("PlatformCommunicationSegment").find_tag(
            "Arbitration"
        )
        assert sorted(tag.enum_values) == ["priority", "round-robin"]

    def test_instance_id_required(self):
        tag = TUT_PROFILE.stereotype("PlatformComponentInstance").find_tag("ID")
        assert tag.required

    def test_wrapper_address_required(self):
        tag = TUT_PROFILE.stereotype("PlatformCommunicationWrapper").find_tag(
            "Address"
        )
        assert tag.required


class TestProfileInstances:
    def test_fresh_profile_is_isolated(self):
        first = fresh_profile()
        second = fresh_profile()
        assert first is not second
        first.stereotype("Application").define_tag("Custom", "int")
        assert second.stereotype("Application").find_tag("Custom") is None

    def test_fresh_profile_without_hibi(self):
        profile = fresh_profile(with_hibi=False)
        assert profile.stereotype("HIBISegment") is None
        assert TUT_PROFILE.stereotype("HIBISegment") is not None
