"""Table 1-3 renderers derived from the live profile."""

from repro.tutprofile import (
    TUT_PROFILE,
    describe_stereotype,
    profile_hierarchy_edges,
    render_table1,
    render_table2,
    render_table3,
    stereotype_summary_rows,
    tagged_value_rows,
)


class TestTable1:
    def test_rows_cover_all_eleven(self):
        rows = stereotype_summary_rows(TUT_PROFILE)
        assert len(rows) == 11

    def test_render_contains_paper_content(self):
        text = render_table1(TUT_PROFILE)
        assert "Application (Class)" in text
        assert "ProcessGrouping (Dependency)" in text
        assert "Top-level application class" in text
        assert "Group of application processes" in text

    def test_hibi_specialisations_excluded_from_table1(self):
        text = render_table1(TUT_PROFILE)
        assert "HIBIWrapper" not in text


class TestTable2And3:
    def test_table2_contains_application_tags(self):
        text = render_table2(TUT_PROFILE)
        for expected in ("Priority", "CodeMemory", "RealTimeType", "ProcessType", "Fixed"):
            assert expected in text

    def test_table3_contains_platform_tags(self):
        text = render_table3(TUT_PROFILE)
        for expected in ("Area", "Power", "IntMemory", "BufferSize", "MaxTime",
                         "DataWidth", "Frequency", "Arbitration"):
            assert expected in text

    def test_tagged_value_rows_ordering(self):
        rows = tagged_value_rows(TUT_PROFILE, ("Application",))
        assert [r[1] for r in rows] == [
            "Priority", "CodeMemory", "DataMemory", "RealTimeType"
        ]


class TestHierarchy:
    def test_figure3_edges(self):
        edges = profile_hierarchy_edges()
        relations = {(s, t) for s, _, t in edges}
        assert ("Application", "ApplicationComponent") in relations
        assert ("ApplicationComponent", "ApplicationProcess") in relations
        assert ("ProcessGroup", "PlatformComponentInstance") in relations
        assert ("Platform", "PlatformComponent") in relations

    def test_describe_stereotype(self):
        text = describe_stereotype(TUT_PROFILE.stereotype("PlatformComponentInstance"))
        assert "ID" in text
        assert "required" in text
