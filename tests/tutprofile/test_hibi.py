"""HIBI specialisations of the communication stereotypes (paper §4.2)."""

import pytest

from repro.uml import Class, Dependency, Property
from repro.tutprofile import fresh_profile


class TestSpecialization:
    def test_hibi_wrapper_specialises_base(self):
        profile = fresh_profile()
        wrapper = profile.stereotype("HIBIWrapper")
        assert wrapper.specializes.name == "PlatformCommunicationWrapper"
        assert wrapper.is_kind_of("PlatformCommunicationWrapper")

    def test_hibi_segment_specialises_base(self):
        profile = fresh_profile()
        segment = profile.stereotype("HIBISegment")
        assert segment.is_kind_of("PlatformCommunicationSegment")

    def test_inherited_tags_usable(self):
        profile = fresh_profile()
        dependency = Dependency("w")
        application = profile.apply(
            dependency,
            "HIBIWrapper",
            Address=0x100,          # inherited from the base stereotype
            TxBufferSize=16,        # HIBI-specific
        )
        assert application.get("Address") == 0x100
        assert application.get("TxBufferSize") == 16
        assert application.get("RxBufferSize") == 8  # specialised default

    def test_specialised_segment_tags(self):
        profile = fresh_profile()
        part = Property("seg")
        profile.apply(part, "HIBISegment", DataWidth=32, IsBridge=True)
        assert part.tag("HIBISegment", "IsBridge") is True
        # query through the base name works too (specialisation matching)
        assert part.tag("PlatformCommunicationSegment", "DataWidth") == 32

    def test_extend_twice_is_idempotent(self):
        from repro.tutprofile import extend_with_hibi

        profile = fresh_profile()
        count = len(profile.stereotypes)
        extend_with_hibi(profile)
        assert len(profile.stereotypes) == count

    def test_extend_requires_base_profile(self):
        from repro.uml import Profile
        from repro.tutprofile import extend_with_hibi

        with pytest.raises(ValueError):
            extend_with_hibi(Profile("empty"))

    def test_wrapper_metaclass_inherited(self):
        profile = fresh_profile()
        wrapper = profile.stereotype("HIBIWrapper")
        assert "Dependency" in wrapper.effective_metaclasses()
