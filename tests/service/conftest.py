"""Shared fixtures for the exploration-farm service tests.

The ``farm`` fixture runs a real :class:`ExplorationService` — HTTP
frontend, spool, in-process worker pool — inside the test process on an
ephemeral port, with a fresh spool and cache per test.  Campaigns use
the 4-candidate ping-pong sweep from the exploration tests, so a full
submit-evaluate-serve cycle is tens of milliseconds.
"""

from __future__ import annotations

import pytest

from repro.service import ExplorationService, JobRequest, ServiceClient
from tests.exploration.test_engine import fault_free_specs, pingpong_factory


@pytest.fixture
def farm(tmp_path):
    """(service, client) for a live single-process farm."""
    service = ExplorationService(
        tmp_path / "spool",
        str(tmp_path / "cache"),
        pool_size=2,
        lease_s=5.0,
        log_path=tmp_path / "logs" / "service.log",
    )
    host, port = service.start()
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    service.drain(timeout_s=10.0)


@pytest.fixture
def sweep_request():
    """A 4-candidate ping-pong campaign request (fixed digest)."""
    return JobRequest(specs=tuple(fault_free_specs()), workers=0)


def request_with_duration(duration_us: int) -> JobRequest:
    """A campaign whose digest varies with ``duration_us``."""
    from repro.exploration import mapping_sweep_specs

    return JobRequest(
        specs=tuple(
            mapping_sweep_specs(pingpong_factory, duration_us=duration_us)
        ),
        workers=0,
    )
