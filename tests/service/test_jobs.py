"""JobRequest/JobRecord model: wire round trips, digests, validation."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import JobRecord, JobRequest
from repro.service.jobs import run_summary, validate_job_id
from tests.exploration.test_engine import fault_free_specs


def make_request(**overrides) -> JobRequest:
    fields = dict(specs=tuple(fault_free_specs()), workers=0)
    fields.update(overrides)
    return JobRequest(**fields)


class TestJobRequest:
    def test_wire_round_trip_is_exact(self):
        request = make_request(
            workers=2,
            timeout_s=30.0,
            worker_faults=("1:flaky",),
            prune_static=True,
            prune_margin=2.5,
            label="round-trip",
        )
        body = request.to_json_dict()
        rebuilt = JobRequest.from_json_dict(body)
        assert rebuilt.to_json_dict() == body
        assert rebuilt.digest() == request.digest()
        assert rebuilt == request

    def test_digest_ignores_labels(self):
        plain = make_request()
        labelled = make_request(label="whatever")
        assert plain.digest() == labelled.digest()
        specs = fault_free_specs()
        relabelled = tuple(
            type(spec).make(
                spec.builder,
                mapping=dict(spec.mapping),
                duration_us=spec.duration_us,
                label=f"alias-{index}",
            )
            for index, spec in enumerate(specs)
        )
        assert make_request(specs=relabelled).digest() == plain.digest()

    def test_digest_covers_policy(self):
        assert make_request().digest() != make_request(workers=2).digest()
        assert (
            make_request().digest() != make_request(prune_static=True).digest()
        )

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ServiceError):
            JobRequest(specs=())
        with pytest.raises(ServiceError):
            make_request(workers=-1)
        with pytest.raises(ServiceError):
            make_request(workers=99)
        with pytest.raises(ServiceError):
            make_request(mode="nonsense")

    def test_rejects_unnamed_builders(self):
        from repro.exploration import CandidateSpec

        spec = CandidateSpec.make(
            lambda: None, mapping={"g": "pe"}, duration_us=10
        )
        with pytest.raises(ServiceError, match="importable by name"):
            JobRequest(specs=(spec,))

    @pytest.mark.parametrize(
        "body",
        [
            "not a dict",
            {},
            {"specs": []},
            {"specs": [{"nope": 1}]},
            {"specs": [{"spec": {"schema": "bogus"}}]},
        ],
    )
    def test_from_json_dict_rejects_malformed(self, body):
        with pytest.raises(ServiceError):
            JobRequest.from_json_dict(body)

    def test_from_json_dict_rejects_bad_policy(self):
        body = make_request().to_json_dict()
        body["worker_faults"] = ["0:not-a-mode"]
        with pytest.raises(ServiceError):
            JobRequest.from_json_dict(body)
        body = make_request().to_json_dict()
        body["prune"] = {"margin": 0.5}  # below the >= 1.0 floor
        with pytest.raises(ServiceError):
            JobRequest.from_json_dict(body)


class TestJobRecord:
    def test_round_trip(self, sweep_request):
        record = JobRecord(
            id="j1",
            state="running",
            request=sweep_request.to_json_dict(),
            digest=sweep_request.digest(),
            submitted=100.0,
            started=101.0,
            attempts=2,
            owner="host:1:w0",
        )
        body = record.to_json_dict()
        assert JobRecord.from_json_dict(body).to_json_dict() == body

    def test_rejects_unknown_state(self, sweep_request):
        body = JobRecord(
            id="j1",
            state="queued",
            request=sweep_request.to_json_dict(),
            digest="d",
            submitted=0.0,
        ).to_json_dict()
        body["state"] = "exploded"
        with pytest.raises(ServiceError):
            JobRecord.from_json_dict(body)

    def test_public_dict_elides_spec_bodies(self, sweep_request):
        record = JobRecord(
            id="j1",
            state="queued",
            request=sweep_request.to_json_dict(),
            digest="d",
            submitted=0.0,
        )
        public = record.public_dict()
        assert public["request"]["specs"] == len(sweep_request.specs)
        # the record itself is untouched
        assert isinstance(record.request["specs"], list)


class TestHelpers:
    def test_run_summary_counts(self):
        summary = run_summary(
            {
                "candidates_total": 4,
                "evaluated": 3,
                "cache_hits": 1,
                "wall_s": 0.5,
                "pruned": {"count": 2},
                "supervisor": {"quarantine": [{"index": 0}]},
            }
        )
        assert summary == {
            "candidates": 4,
            "evaluated": 3,
            "cache_hits": 1,
            "pruned": 2,
            "quarantined": 1,
            "wall_s": 0.5,
        }

    @pytest.mark.parametrize(
        "bad", ["", "a" * 65, "../escape", "a/b", "a b", "j\x00"]
    )
    def test_validate_job_id_rejects(self, bad):
        with pytest.raises(ServiceError) as excinfo:
            validate_job_id(bad)
        assert excinfo.value.status == 400

    def test_validate_job_id_accepts_generated_ids(self):
        from repro.service.jobstore import JobStore

        assert validate_job_id(JobStore.new_job_id())
