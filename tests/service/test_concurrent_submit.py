"""Concurrent identical submissions: one evaluation, N cache serves.

The dedupe contract of the farm: when N clients race to submit the same
campaign digest, exactly one job evaluates candidates; every other job
is served from the shared content-addressed cache (either by the
submit-time fast path or by running against the warm cache after the
primary finishes).  And however the race interleaves, the spool must
never contain a torn JSON file.
"""

from __future__ import annotations

import json
import threading

from repro.service import ServiceClient, TERMINAL_STATES


class TestConcurrentIdenticalSubmissions:
    N = 8

    def test_one_evaluation_n_cache_serves(self, farm, sweep_request):
        service, client = farm
        records, errors = [], []
        lock = threading.Lock()
        barrier = threading.Barrier(self.N)

        def submit():
            worker_client = ServiceClient(client.base_url)
            try:
                barrier.wait(timeout=10.0)
                record = worker_client.submit(sweep_request)
                if record["state"] not in TERMINAL_STATES:
                    record = worker_client.wait(record["id"], timeout_s=60.0)
                with lock:
                    records.append(record)
            except Exception as exc:  # surface thread failures to pytest
                with lock:
                    errors.append(repr(exc))

        threads = [threading.Thread(target=submit) for _ in range(self.N)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90.0)

        assert not errors
        assert len(records) == self.N
        assert all(record["state"] == "done" for record in records)
        # every submission produced its own job...
        assert len({record["id"] for record in records}) == self.N
        # ...but the campaign was evaluated exactly once
        evaluated = [
            record for record in records if record["served"] == "evaluated"
        ]
        cached = [record for record in records if record["served"] == "cache"]
        assert len(evaluated) == 1
        assert len(cached) == self.N - 1
        total = sum(record["summary"]["evaluated"] for record in records)
        assert total == len(sweep_request.specs)
        assert all(
            record["summary"]["cache_hits"] == len(sweep_request.specs)
            for record in cached
        )

    def test_no_torn_spool_entries(self, farm, sweep_request):
        service, client = farm
        threads = [
            threading.Thread(
                target=lambda: ServiceClient(client.base_url).submit_and_wait(
                    sweep_request, timeout_s=60.0
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90.0)
        spool_files = list(service.store.root.rglob("*.json"))
        assert spool_files
        for path in spool_files:
            json.loads(path.read_text(encoding="utf-8"))  # must not raise

    def test_results_are_byte_identical_across_serves(
        self, farm, sweep_request
    ):
        _, client = farm
        first = client.submit_and_wait(sweep_request, timeout_s=60.0)
        second = client.submit(sweep_request)  # fast path
        run_a = client.result(first["id"])["results"]
        run_b = client.result(second["id"])["results"]
        project = lambda run: [  # noqa: E731
            (entry["digest"], entry["result_hash"], entry["cost"])
            for entry in run["ranking"]
        ]
        assert project(run_a) == project(run_b)
