"""The crash-safe spool: claims, leases, dedupe, cancel, recovery.

These tests drive :class:`JobStore` directly (no HTTP, no workers) and
poke at its on-disk state to simulate crashes: torn records, expired
leases, stale markers.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ServiceError
from repro.service import JobStore
from repro.service.jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING

FAKE_RUN = {
    "candidates_total": 4,
    "evaluated": 4,
    "cache_hits": 0,
    "wall_s": 0.1,
    "ranking": [],
}


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "spool")


class TestSubmitAndLookup:
    def test_submit_round_trip(self, store, sweep_request):
        record = store.submit(sweep_request)
        assert record.state == QUEUED
        assert store.queued_count() == 1
        loaded = store.get(record.id)
        assert loaded.to_json_dict() == record.to_json_dict()
        assert loaded.digest == sweep_request.digest()

    def test_get_unknown_is_404(self, store):
        with pytest.raises(ServiceError) as excinfo:
            store.get("j0000000000000000-deadbeef")
        assert excinfo.value.status == 404

    def test_list_in_submission_order(self, store, sweep_request):
        ids = [store.submit(sweep_request).id for _ in range(3)]
        assert [record.id for record in store.list()] == ids
        assert [r.id for r in store.list(state=QUEUED)] == ids
        assert store.list(state=DONE) == []

    def test_submit_finished_fast_path(self, store, sweep_request):
        record = store.submit_finished(
            sweep_request, DONE, run_json=FAKE_RUN, served="cache"
        )
        assert record.terminal
        assert store.queued_count() == 0
        assert store.result(record.id) == FAKE_RUN
        assert store.get(record.id).summary["evaluated"] == 4


class TestClaimLifecycle:
    def test_claim_runs_oldest_first(self, store, sweep_request):
        first = store.submit(sweep_request)
        store.submit(sweep_request)
        claimed = store.claim_next("w0", lease_s=30.0)
        assert claimed.id == first.id
        assert claimed.state == RUNNING
        assert claimed.attempts == 1
        assert claimed.owner == "w0"
        assert store.running_count() == 1
        lease = store.lease_of(first.id)
        assert lease["owner"] == "w0"
        assert lease["expires"] > time.time()

    def test_heartbeat_extends_and_counts(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=30.0)
        before = store.lease_of(record.id)
        store.heartbeat(record.id, "w0", lease_s=30.0)
        after = store.lease_of(record.id)
        assert after["heartbeats"] == before["heartbeats"] + 1
        assert after["expires"] >= before["expires"]

    def test_finish_done_publishes_result_first(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=30.0)
        final = store.finish(
            record.id, DONE, run_json=FAKE_RUN, served="evaluated"
        )
        assert final.state == DONE
        assert final.summary["candidates"] == 4
        assert store.result(record.id) == FAKE_RUN
        assert store.queued_count() == store.running_count() == 0
        assert store.lease_of(record.id) is None
        # terminal jobs are not claimable
        assert store.claim_next("w1", lease_s=30.0) is None

    def test_result_of_unfinished_job_conflicts(self, store, sweep_request):
        record = store.submit(sweep_request)
        with pytest.raises(ServiceError) as excinfo:
            store.result(record.id)
        assert excinfo.value.status == 409
        store.claim_next("w0", lease_s=30.0)
        store.finish(record.id, FAILED, error="boom")
        with pytest.raises(ServiceError) as excinfo:
            store.result(record.id)
        assert excinfo.value.status == 404

    def test_release_requeues_keeping_attempts(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=30.0)
        released = store.release(record.id)
        assert released.state == QUEUED
        assert released.attempts == 1
        reclaimed = store.claim_next("w1", lease_s=30.0)
        assert reclaimed.id == record.id
        assert reclaimed.attempts == 2


class TestDigestDedupe:
    def test_same_digest_never_runs_concurrently(self, store, sweep_request):
        first = store.submit(sweep_request)
        second = store.submit(sweep_request)
        assert first.digest == second.digest
        assert store.claim_next("w0", lease_s=30.0).id == first.id
        # the twin is skipped while the primary is in flight
        assert store.claim_next("w1", lease_s=30.0) is None
        store.finish(first.id, DONE, run_json=FAKE_RUN, served="evaluated")
        follower = store.claim_next("w1", lease_s=30.0)
        assert follower.id == second.id

    def test_distinct_digests_run_concurrently(self, store, sweep_request):
        from tests.service.conftest import request_with_duration

        store.submit(sweep_request)
        store.submit(request_with_duration(4_000))
        assert store.claim_next("w0", lease_s=30.0) is not None
        assert store.claim_next("w1", lease_s=30.0) is not None
        assert store.running_count() == 2


class TestCancel:
    def test_cancel_queued_is_immediate(self, store, sweep_request):
        record = store.submit(sweep_request)
        final, disposition = store.cancel(record.id)
        assert disposition == "cancelled"
        assert final.state == CANCELLED
        assert store.claim_next("w0", lease_s=30.0) is None

    def test_cancel_running_is_cooperative(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=30.0)
        current, disposition = store.cancel(record.id)
        assert disposition == "requested"
        assert current.state == RUNNING
        assert store.cancel_requested(record.id)
        final = store.finish(record.id, CANCELLED)
        assert final.state == CANCELLED
        assert not store.cancel_requested(record.id)

    def test_cancel_terminal_is_noop(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=30.0)
        store.finish(record.id, DONE, run_json=FAKE_RUN)
        final, disposition = store.cancel(record.id)
        assert disposition == "terminal"
        assert final.state == DONE


class TestRecovery:
    def test_expired_lease_requeues(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=0.01)
        time.sleep(0.05)
        stats = store.recover()
        assert stats["requeued"] == 1
        assert store.get(record.id).state == QUEUED
        assert store.claim_next("w1", lease_s=30.0).id == record.id

    def test_fresh_lease_survives_recovery(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=60.0)
        stats = store.recover()
        assert stats["requeued"] == 0
        assert store.get(record.id).state == RUNNING

    def test_reap_expired_is_the_online_recovery(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=0.01)
        time.sleep(0.05)
        assert store.reap_expired() == 1
        assert store.get(record.id).state == QUEUED
        # a live lease is never reaped
        store.claim_next("w1", lease_s=60.0)
        assert store.reap_expired(grace_s=60.0) == 0
        assert store.get(record.id).state == RUNNING

    def test_torn_record_is_reported_not_fatal(self, store, sweep_request):
        good = store.submit(sweep_request)
        torn = store.jobs_dir / "j0000000000000000-torntorn.json"
        torn.write_text('{"id": "j0000', encoding="utf-8")
        stats = store.recover()
        assert len(stats["unreadable"]) == 1
        assert store.get(good.id).state == QUEUED
        assert [record.id for record in store.list()] == [good.id]

    def test_stale_markers_are_rebuilt(self, store, sweep_request):
        record = store.submit(sweep_request)
        # simulate a crash that left a bogus running marker + orphans
        (store.running_dir / record.id).touch()
        (store.queued_dir / "j0000000000000000-orphaned").touch()
        (store.active_dir / "deadbeef").write_text("gone", encoding="ascii")
        store.recover()
        assert store.running_count() == 0
        assert store.queued_count() == 1
        assert not (store.active_dir / "deadbeef").exists()

    def test_stale_claim_of_queued_job_is_released(self, store, sweep_request):
        record = store.submit(sweep_request)
        (store.claims_dir / record.id).touch()  # claimant died pre-running
        assert store.claim_next("w0", lease_s=30.0) is None
        store.recover()
        assert store.claim_next("w0", lease_s=30.0).id == record.id

    def test_every_spool_file_is_valid_json(self, store, sweep_request):
        record = store.submit(sweep_request)
        store.claim_next("w0", lease_s=30.0)
        store.finish(record.id, DONE, run_json=FAKE_RUN, served="evaluated")
        for path in store.root.rglob("*.json"):
            json.loads(path.read_text(encoding="utf-8"))
