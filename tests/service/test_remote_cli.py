"""``repro explore --remote``: a transport swap, not a different tool.

Differential tests: the same ``explore`` invocation run in-process and
through a live farm must produce identical ranking JSON (modulo wall
clocks), honour the same flags (``--prune-static``, ``--timeout``,
``--inject-worker-fault``), and keep the same exit-code contract.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main

BASE = ["explore", "--limit", "3", "--duration-us", "2000", "--format", "json"]

#: Per-outcome fields that legitimately differ between transports.
VOLATILE_OUTCOME = ("elapsed_s",)
#: Top-level fields that legitimately differ between transports.
VOLATILE_RUN = ("wall_s", "cache_dir")


def run_json(capsys, argv):
    """Run the CLI, parse its envelope, return (exit_code, results)."""
    code = main(argv)
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.explore/1"
    return code, payload["results"]


def normalize(run):
    run = json.loads(json.dumps(run))  # deep copy
    for field in VOLATILE_RUN:
        run.pop(field, None)
    run.get("supervisor", {}).pop("backoff_s", None)
    for failure in run.get("supervisor", {}).get("failures", []):
        failure.pop("elapsed_s", None)
    for entry in run.get("ranking", []) + run.get("records", []):
        for field in VOLATILE_OUTCOME:
            entry.pop(field, None)
        for failure in entry.get("failures", []):
            failure.pop("elapsed_s", None)
    return run


@pytest.fixture
def farm_url(farm):
    _, client = farm
    return client.base_url


class TestDifferentialIdentity:
    def test_remote_ranking_json_is_identical(
        self, capsys, tmp_path, farm_url
    ):
        local_code, local = run_json(
            capsys, BASE + ["--cache-dir", str(tmp_path / "local-cache")]
        )
        remote_code, remote = run_json(capsys, BASE + ["--remote", farm_url])
        assert (local_code, remote_code) == (0, 0)
        assert normalize(local) == normalize(remote)
        # and both actually evaluated (cold caches on both sides)
        assert local["evaluated"] == remote["evaluated"] == 3

    def test_prune_static_travels_through_the_service(
        self, capsys, tmp_path, farm_url
    ):
        flags = ["--prune-static", "--prune-margin", "1.5"]
        local_code, local = run_json(
            capsys,
            BASE + flags + ["--cache-dir", str(tmp_path / "local-cache")],
        )
        remote_code, remote = run_json(
            capsys, BASE + flags + ["--remote", farm_url]
        )
        assert (local_code, remote_code) == (0, 0)
        assert local["pruned"] == remote["pruned"]
        assert normalize(local) == normalize(remote)

    def test_worker_faults_and_timeout_travel_through(
        self, capsys, tmp_path, farm_url
    ):
        # a flaky candidate must retry identically on both transports
        flags = [
            "--workers",
            "1",
            "--timeout",
            "60",
            "--inject-worker-fault",
            "0:flaky:1",
        ]
        local_code, local = run_json(
            capsys,
            BASE + flags + ["--cache-dir", str(tmp_path / "local-cache")],
        )
        remote_code, remote = run_json(
            capsys, BASE + flags + ["--remote", farm_url]
        )
        assert (local_code, remote_code) == (0, 0)
        attempts = {
            entry["digest"]: entry["attempts"]
            for entry in remote["ranking"]
        }
        assert max(attempts.values()) == 2  # the injected flake retried
        assert normalize(local) == normalize(remote)


class TestRemoteContract:
    def test_local_only_flags_are_rejected(self, capsys, farm_url, tmp_path):
        code = main(
            BASE
            + [
                "--remote",
                farm_url,
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--checkpoint-dir" in captured.err

    def test_unreachable_farm_is_a_clean_error(self, capsys):
        code = main(BASE + ["--remote", "http://127.0.0.1:9"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot reach" in captured.err

    def test_remote_text_mode_renders_the_same_table(self, capsys, farm_url):
        argv = ["explore", "--limit", "3", "--duration-us", "2000"]
        local_code = main(argv)
        local_out = capsys.readouterr().out
        remote_code = main(argv + ["--remote", farm_url])
        remote_out = capsys.readouterr().out

        def table_lines(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith((" ", "-")) and "|" in line or "----" in line
            ]

        assert (local_code, remote_code) == (0, 0)
        # identical ranking rows modulo the Time column
        def rows(text):
            out = []
            for line in text.splitlines():
                if "|" not in line or "Rank" in line:
                    continue
                cells = [cell.strip() for cell in line.split("|")]
                out.append([c for i, c in enumerate(cells) if i != 4])
            return out

        assert rows(local_out) == rows(remote_out)
