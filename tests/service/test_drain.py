"""``repro serve`` shutdown contract: SIGTERM drains cleanly, exit 3.

Mirrors the exploration interrupt contract (``docs/exploration.md``):
a polite SIGTERM — CI job cancellation, ``timeout(1)``, ``kill <pid>``
— must leave the spool consistent and exit 3, and a restarted server
must resume the queue exactly where it stopped.  Signals cannot be
delivered reliably inside pytest, so these tests drive real
subprocesses.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import JobRequest, JobStore, ServiceClient
from tests.exploration.test_engine import fault_free_specs

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def spawn_server(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--spool",
            str(tmp_path / "spool"),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--port",
            "0",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        start_new_session=True,
    )
    banner = process.stdout.readline()
    assert "http://" in banner, f"server failed to start: {banner!r}"
    url = "http://" + banner.split("http://", 1)[1].split()[0]
    return process, url


def terminate(process, timeout_s=30.0):
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        process.kill()
        pytest.fail("server did not drain within the timeout")


class TestServeDrain:
    def test_sigterm_exits_3(self, tmp_path):
        process, url = spawn_server(tmp_path, "--pool", "1")
        assert ServiceClient(url).health()["ok"] is True
        assert terminate(process) == 3
        tail = process.stdout.read()
        assert "drained" in tail

    def test_queued_jobs_survive_restart(self, tmp_path):
        # frontend-only server: the submission must stay queued
        process, url = spawn_server(tmp_path, "--pool", "0")
        record = ServiceClient(url).submit(
            JobRequest(specs=tuple(fault_free_specs()), workers=0)
        )
        assert record["state"] == "queued"
        assert terminate(process) == 3

        # the spool survived the shutdown, bit-exact and parseable
        store = JobStore(tmp_path / "spool")
        assert store.get(record["id"]).state == "queued"
        for path in store.root.rglob("*.json"):
            json.loads(path.read_text(encoding="utf-8"))

        # a restarted server with workers drains the backlog
        process2, url2 = spawn_server(tmp_path, "--pool", "2")
        try:
            final = ServiceClient(url2).wait(record["id"], timeout_s=60.0)
            assert final["state"] == "done"
            assert final["served"] == "evaluated"
        finally:
            assert terminate(process2) == 3

    def test_sigint_matches_sigterm(self, tmp_path):
        process, url = spawn_server(tmp_path, "--pool", "1")
        assert ServiceClient(url).health()["ok"] is True
        process.send_signal(signal.SIGINT)
        try:
            assert process.wait(timeout=30.0) == 3
        except subprocess.TimeoutExpired:
            process.kill()
            pytest.fail("server ignored SIGINT")


class TestWorkDrain:
    def test_work_processes_the_backlog_and_exits_cleanly(self, tmp_path):
        # spool a job without any server, then drain it with `repro work`
        store = JobStore(tmp_path / "spool")
        record = store.submit(
            JobRequest(specs=tuple(fault_free_specs()), workers=0)
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        )
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "work",
                "--spool",
                str(tmp_path / "spool"),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--max-jobs",
                "1",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert store.get(record.id).state == "done"

    def test_work_sigterm_exits_3(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "work",
                "--spool",
                str(tmp_path / "spool"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            start_new_session=True,
        )
        time.sleep(1.0)  # let it reach the idle poll loop
        process.send_signal(signal.SIGTERM)
        try:
            assert process.wait(timeout=30.0) == 3
        except subprocess.TimeoutExpired:
            process.kill()
            pytest.fail("worker ignored SIGTERM")
