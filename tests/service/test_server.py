"""The HTTP frontend: endpoints, envelopes, backpressure, fast path."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import ExplorationService, ServiceClient
from tests.service.conftest import request_with_duration


class TestEndpoints:
    def test_health(self, farm):
        _, client = farm
        health = client.health()
        assert health["ok"] is True
        assert health["queued"] == 0

    def test_submit_runs_to_done(self, farm, sweep_request):
        _, client = farm
        record = client.submit(sweep_request)
        assert record["state"] == "queued"
        assert record["request"]["specs"] == len(sweep_request.specs)
        final = client.wait(record["id"], timeout_s=60.0)
        assert final["state"] == "done"
        assert final["served"] == "evaluated"
        assert final["summary"]["evaluated"] == len(sweep_request.specs)

    def test_result_envelope(self, farm, sweep_request):
        _, client = farm
        record = client.submit_and_wait(sweep_request, timeout_s=60.0)
        envelope = client.result(record["id"])
        assert envelope["schema"] == "repro.explore/1"
        assert envelope["meta"]["job"] == record["id"]
        run_json = envelope["results"]
        assert len(run_json["ranking"]) == len(sweep_request.specs)
        # and the client can rebuild a live run from it
        run = client.result_run(record["id"])
        assert run.to_json_dict() == run_json

    def test_repeat_submission_is_served_from_cache(self, farm, sweep_request):
        service, client = farm
        client.submit_and_wait(sweep_request, timeout_s=60.0)
        repeat = client.submit(sweep_request)
        # fast path: born terminal, never queued, zero evaluations
        assert repeat["state"] == "done"
        assert repeat["served"] == "cache"
        assert repeat["summary"]["evaluated"] == 0
        assert service.counters_snapshot()["fast_path"] == 1

    def test_job_listing_and_state_filter(self, farm, sweep_request):
        _, client = farm
        record = client.submit_and_wait(sweep_request, timeout_s=60.0)
        assert [r["id"] for r in client.jobs()] == [record["id"]]
        assert client.jobs(state="done")[0]["id"] == record["id"]
        assert client.jobs(state="queued") == []

    def test_cancel_terminal_job_reports_terminal(self, farm, sweep_request):
        _, client = farm
        record = client.submit_and_wait(sweep_request, timeout_s=60.0)
        cancelled = client.cancel(record["id"])
        assert cancelled["cancel"] == "terminal"
        assert cancelled["state"] == "done"

    def test_metrics_snapshot(self, farm, sweep_request):
        _, client = farm
        client.submit_and_wait(sweep_request, timeout_s=60.0)
        client.submit(sweep_request)  # cache fast path
        metrics = client.metrics()
        assert metrics["jobs"]["total"] == 2
        assert metrics["jobs"]["served"] == {"evaluated": 1, "cache": 1}
        assert metrics["cache"]["evaluated"] == len(sweep_request.specs)
        assert metrics["cache"]["cache_hits"] == len(sweep_request.specs)
        assert metrics["cache"]["hit_ratio"] == 0.5
        assert metrics["latency_s"]["samples"] == 2
        assert metrics["latency_s"]["p50"] is not None
        assert metrics["server"]["submitted"] == 1
        assert metrics["server"]["fast_path"] == 1


class TestErrors:
    def test_unknown_job_is_404(self, farm):
        _, client = farm
        with pytest.raises(ServiceError) as excinfo:
            client.job("j0000000000000000-deadbeef")
        assert excinfo.value.status == 404

    def test_malformed_body_is_400(self, farm):
        _, client = farm
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/v1/jobs", {"specs": "nope"})
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, farm):
        _, client = farm
        with pytest.raises(ServiceError) as excinfo:
            client._call("GET", "/v2/anything")
        assert excinfo.value.status == 404

    def test_result_before_done_is_409(self, tmp_path, sweep_request):
        # frontend-only farm: the job is guaranteed to stay queued
        service = ExplorationService(
            tmp_path / "spool", str(tmp_path / "cache"), pool_size=0
        )
        host, port = service.start()
        client = ServiceClient(f"http://{host}:{port}")
        try:
            record = client.submit(sweep_request)
            with pytest.raises(ServiceError) as excinfo:
                client.result(record["id"])
            assert excinfo.value.status == 409
        finally:
            service.drain(timeout_s=5.0)

    def test_unreachable_server(self, tmp_path):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestBackpressure:
    def test_queue_bound_gives_429(self, tmp_path):
        # frontend-only farm (no workers): the queue can only grow
        service = ExplorationService(
            tmp_path / "spool",
            str(tmp_path / "cache"),
            pool_size=0,
            max_queue=2,
        )
        host, port = service.start()
        client = ServiceClient(f"http://{host}:{port}")
        try:
            client.submit(request_with_duration(5_000))
            client.submit(request_with_duration(5_001))
            with pytest.raises(ServiceError) as excinfo:
                client.submit(request_with_duration(5_002))
            assert excinfo.value.status == 429
            assert service.counters_snapshot()["rejected"] == 1
            # the rejected submission left no trace in the spool
            assert len(client.jobs()) == 2
        finally:
            service.drain(timeout_s=5.0)
