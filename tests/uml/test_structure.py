"""Properties, ports, connector ends and connectors."""

import pytest

from repro.errors import ModelError
from repro.uml import Class, Connector, ConnectorEnd, Port, Property


class TestProperty:
    def test_bad_aggregation_rejected(self):
        with pytest.raises(ModelError):
            Property("p", aggregation="weird")

    def test_bad_multiplicity_rejected(self):
        with pytest.raises(ModelError):
            Property("p", lower=2, upper=1)
        with pytest.raises(ModelError):
            Property("p", lower=-1)

    def test_star_multiplicity(self):
        prop = Property("p", lower=0, upper=-1)
        assert prop.multiplicity() == "[0..*]"

    def test_is_part(self):
        assert Property("p", aggregation="composite").is_part
        assert not Property("p").is_part


class TestPortSemantics:
    def test_unconstrained_port_relays_everything(self):
        port = Port("relay")
        assert not port.is_constrained
        assert port.accepts("anything")
        assert port.emits("anything")

    def test_constrained_port_accepts_only_provided(self):
        port = Port("p", provided=["a"], required=["b"])
        assert port.accepts("a")
        assert not port.accepts("b")
        assert port.emits("b")
        assert not port.emits("a")

    def test_required_only_port_accepts_nothing(self):
        port = Port("p", required=["b"])
        assert port.is_constrained
        assert not port.accepts("b")
        assert not port.accepts("a")


class TestConnector:
    def _ends(self):
        inner = Class("Inner")
        port_a = Port("pa")
        port_b = Port("pb")
        inner.add_port(port_a)
        inner.add_port(port_b)
        outer = Class("Outer")
        part1 = outer.add_part(Property("x", inner))
        part2 = outer.add_part(Property("y", inner))
        return port_a, port_b, part1, part2

    def test_end_requires_port(self):
        with pytest.raises(ModelError):
            ConnectorEnd("not a port")  # type: ignore[arg-type]

    def test_assembly_and_delegation(self):
        port_a, port_b, part1, part2 = self._ends()
        assembly = Connector("c", ConnectorEnd(port_a, part1), ConnectorEnd(port_b, part2))
        assert assembly.is_assembly
        assert not assembly.is_delegation
        delegation = Connector("d", ConnectorEnd(port_a, None), ConnectorEnd(port_b, part2))
        assert delegation.is_delegation
        assert not delegation.is_assembly

    def test_other_end(self):
        port_a, port_b, part1, part2 = self._ends()
        end1 = ConnectorEnd(port_a, part1)
        end2 = ConnectorEnd(port_b, part2)
        connector = Connector("c", end1, end2)
        assert connector.other_end(end1) is end2
        assert connector.other_end(end2) is end1
        with pytest.raises(ModelError):
            connector.other_end(ConnectorEnd(port_a, part2))

    def test_describe(self):
        port_a, port_b, part1, part2 = self._ends()
        connector = Connector(
            "c", ConnectorEnd(port_a, part1), ConnectorEnd(port_b, None)
        )
        assert connector.describe() == "x.pa -- pb"
