"""Composite (hierarchical) states: metamodel, XMI, validation."""

import pytest

from repro.errors import ModelError
from repro.uml import (
    Class,
    Model,
    Package,
    StateMachine,
    model_to_xml,
    validate_model,
    xml_to_model,
)
from repro.uml.compare import model_fingerprint


def nested_machine():
    machine = StateMachine("m")
    machine.state("off", initial=True)
    machine.state("on")
    machine.state("idle", parent="on", initial=True)
    machine.state("busy", parent="on")
    machine.on_signal("off", "on", "power")
    machine.on_signal("idle", "busy", "work")
    machine.on_signal("busy", "idle", "rest")
    machine.on_signal("on", "off", "power_off")  # from the composite
    return machine


class TestMetamodel:
    def test_parent_links(self):
        machine = nested_machine()
        on = machine.find_state("on")
        idle = machine.find_state("idle")
        assert idle.parent is on
        assert idle in on.substates
        assert on.is_composite
        assert not idle.is_composite

    def test_initial_substate(self):
        machine = nested_machine()
        on = machine.find_state("on")
        assert on.initial_substate is machine.find_state("idle")
        assert on.enter_target() is machine.find_state("idle")

    def test_double_initial_substate_rejected(self):
        machine = nested_machine()
        with pytest.raises(ModelError):
            machine.state("extra", parent="on", initial=True)

    def test_ancestors_and_paths(self):
        machine = nested_machine()
        idle = machine.find_state("idle")
        on = machine.find_state("on")
        assert idle.ancestors() == [on]
        assert idle.path_from_root() == [on, idle]
        assert on.contains(idle)
        assert not idle.contains(on)
        assert on.contains(on)

    def test_deep_nesting(self):
        machine = StateMachine("deep")
        machine.state("a", initial=True)
        machine.state("b", parent="a", initial=True)
        machine.state("c", parent="b", initial=True)
        a = machine.find_state("a")
        c = machine.find_state("c")
        assert a.enter_target() is c
        assert c.ancestors() == [machine.find_state("b"), a]

    def test_final_cannot_nest(self):
        machine = StateMachine("m")
        machine.state("a", initial=True)
        final = machine.final_state()
        with pytest.raises(ModelError):
            machine.state("sub", parent=final)

    def test_unique_names_across_hierarchy(self):
        machine = nested_machine()
        with pytest.raises(ModelError):
            machine.state("idle")  # nested name still taken globally


class TestXmiRoundTrip:
    def wrap(self, machine):
        model = Model("M")
        package = Package("P")
        model.add(package)
        klass = Class("C", is_active=True)
        package.add(klass)
        klass.set_behavior(machine)
        return model

    def test_hierarchy_survives(self):
        model = self.wrap(nested_machine())
        recovered = xml_to_model(model_to_xml(model))
        machine = recovered.find("P::C").classifier_behavior
        on = machine.find_state("on")
        assert on.is_composite
        assert on.initial_substate.name == "idle"
        assert machine.find_state("busy").parent is on

    def test_fingerprint_stable(self):
        model = self.wrap(nested_machine())
        recovered = xml_to_model(model_to_xml(model))
        assert model_fingerprint(recovered) == model_fingerprint(model)

    def test_fingerprint_distinguishes_nesting(self):
        flat = StateMachine("m")
        flat.state("off", initial=True)
        flat.state("on")
        flat.state("idle")
        flat.state("busy")
        flat_model = self.wrap(flat)
        nested_model = self.wrap(nested_machine())
        assert model_fingerprint(flat_model) != model_fingerprint(nested_model)


class TestValidation:
    def wrap(self, machine):
        model = Model("M")
        package = Package("P")
        model.add(package)
        klass = Class("C", is_active=True)
        package.add(klass)
        klass.set_behavior(machine)
        return model

    def test_nested_states_reachable_through_initial_descent(self):
        model = self.wrap(nested_machine())
        report = validate_model(model)
        unreachable = [i for i in report.warnings if i.rule == "state-unreachable"]
        assert not unreachable, [str(i) for i in unreachable]

    def test_composite_without_initial_warned(self):
        machine = StateMachine("m")
        machine.state("a", initial=True)
        machine.state("comp")
        machine.state("sub", parent="comp")  # no initial substate
        machine.on_signal("a", "comp", "go")
        machine.on_signal("sub", "a", "back")
        model = self.wrap(machine)
        report = validate_model(model)
        assert any(i.rule == "composite-initial" for i in report.warnings)
