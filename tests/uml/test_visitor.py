"""Model traversal helpers."""

from repro.uml import Class, Model, Package, Signal
from repro.uml.visitor import (
    count_elements,
    find_all_by_name,
    find_by_name,
    find_stereotyped,
    iter_instances,
    iter_tree,
    select,
)


def make_tree():
    model = Model("M")
    package = Package("P")
    model.add(package)
    package.add(Class("A"))
    package.add(Class("B"))
    package.add(Signal("A"))  # same name, different metaclass
    return model


class TestIteration:
    def test_iter_tree_includes_root_by_default(self):
        model = make_tree()
        elements = list(iter_tree(model))
        assert elements[0] is model

    def test_iter_tree_can_exclude_root(self):
        model = make_tree()
        assert model not in list(iter_tree(model, include_root=False))

    def test_iter_instances_filters_by_type(self):
        model = make_tree()
        classes = list(iter_instances(model, Class))
        assert {c.name for c in classes} == {"A", "B"}

    def test_count(self):
        model = make_tree()
        assert count_elements(model) == len(list(iter_tree(model)))


class TestLookup:
    def test_find_by_name_with_metatype(self):
        model = make_tree()
        assert isinstance(find_by_name(model, "A", Signal), Signal)
        assert isinstance(find_by_name(model, "A", Class), Class)

    def test_find_all_by_name(self):
        model = make_tree()
        assert len(find_all_by_name(model, "A")) == 2

    def test_find_missing(self):
        assert find_by_name(make_tree(), "nope") is None

    def test_select_predicate(self):
        model = make_tree()
        named_a = select(model, lambda e: getattr(e, "name", "") == "A")
        assert len(named_a) == 2


class TestStereotypeSearch:
    def test_find_stereotyped_matches_specialisations(self):
        from repro.tutprofile import fresh_profile

        profile = fresh_profile()
        model = Model("M")
        package = Package("P")
        model.add(package)
        segment = Class("Seg")
        package.add(segment)
        profile.apply(segment, "HIBISegment", DataWidth=32)
        assert find_stereotyped(model, "HIBISegment") == [segment]
        # matching by the base stereotype finds the specialised application
        assert find_stereotyped(model, "PlatformCommunicationSegment") == [segment]
