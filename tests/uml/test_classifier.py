"""Classifiers: generalisation, attributes, signals, active classes."""

import pytest

from repro.errors import ModelError
from repro.uml import (
    Class,
    Enumeration,
    Interface,
    Model,
    PrimitiveType,
    Property,
    Signal,
    StateMachine,
)


class TestGeneralization:
    def test_conforms_to_self(self):
        klass = Class("A")
        assert klass.conforms_to(klass)

    def test_conforms_transitively(self):
        a, b, c = Class("A"), Class("B"), Class("C")
        b.add_generalization(a)
        c.add_generalization(b)
        assert c.conforms_to(a)
        assert not a.conforms_to(c)

    def test_cycle_rejected(self):
        a, b = Class("A"), Class("B")
        b.add_generalization(a)
        with pytest.raises(ModelError):
            a.add_generalization(b)

    def test_self_generalization_rejected(self):
        a = Class("A")
        with pytest.raises(ModelError):
            a.add_generalization(a)

    def test_duplicate_generalization_ignored(self):
        a, b = Class("A"), Class("B")
        b.add_generalization(a)
        b.add_generalization(a)
        assert b.generals.count(a) == 1


class TestAttributes:
    def test_attribute_lookup_and_inheritance(self):
        base = Class("Base")
        base.add_attribute(Property("x"))
        derived = Class("Derived")
        derived.add_generalization(base)
        derived.add_attribute(Property("y"))
        assert derived.attribute("x") is not None
        assert derived.attribute("y") is not None
        assert base.attribute("y") is None

    def test_own_attributes_shadow_inherited(self):
        base = Class("Base")
        base.add_attribute(Property("x", default=1))
        derived = Class("Derived")
        derived.add_generalization(base)
        own = Property("x", default=2)
        derived.add_attribute(own)
        assert derived.attribute("x") is own


class TestPrimitiveType:
    def test_bits_must_be_positive(self):
        with pytest.raises(ModelError):
            PrimitiveType("Bad", 0)

    def test_repr(self):
        assert "32" in repr(PrimitiveType("Int32", 32))


class TestEnumeration:
    def test_add_literal(self):
        enum = Enumeration("E", ["a"])
        enum.add_literal("b")
        assert enum.literals == ["a", "b"]

    def test_duplicate_literal_rejected(self):
        enum = Enumeration("E", ["a"])
        with pytest.raises(ModelError):
            enum.add_literal("a")


class TestSignal:
    def test_size_includes_header_and_params(self):
        model = Model("M")
        signal = Signal("s")
        signal.add_attribute(Property("a", model.primitive("Int32")))
        signal.add_attribute(Property("b", model.primitive("Int16")))
        assert signal.size_bits() == Signal.HEADER_BITS + 32 + 16
        assert signal.size_bytes() == (Signal.HEADER_BITS + 48 + 7) // 8

    def test_payload_bits_counted(self):
        signal = Signal("s", payload_bits=1000)
        assert signal.size_bits() == Signal.HEADER_BITS + 1000

    def test_negative_payload_rejected(self):
        with pytest.raises(ModelError):
            Signal("s", payload_bits=-1)

    def test_untyped_parameter_rejected_at_sizing(self):
        signal = Signal("s")
        signal.add_attribute(Property("a"))
        with pytest.raises(ModelError):
            signal.size_bits()

    def test_parameter_names(self):
        model = Model("M")
        signal = Signal("s")
        signal.add_attribute(Property("len", model.primitive("Int32")))
        signal.add_attribute(Property("seq", model.primitive("Int32")))
        assert signal.parameter_names() == ["len", "seq"]


class TestActiveClass:
    def test_passive_class_cannot_own_behavior(self):
        klass = Class("C", is_active=False)
        with pytest.raises(ModelError):
            klass.set_behavior(StateMachine("m"))

    def test_active_class_behavior(self):
        klass = Class("C", is_active=True)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        assert klass.classifier_behavior is machine
        assert machine.context is klass
        assert klass.is_functional

    def test_structural_flags(self):
        passive = Class("P", is_active=False)
        assert passive.is_structural
        assert not passive.is_functional

    def test_ports_inherited(self):
        from repro.uml import Port

        base = Class("Base", is_active=True)
        base.add_port(Port("p"))
        derived = Class("Derived", is_active=True)
        derived.add_generalization(base)
        assert derived.port("p") is not None

    def test_part_lookup(self):
        outer = Class("Outer")
        inner = Class("Inner")
        part = outer.add_part(Property("i", inner))
        assert outer.part("i") is part
        assert part.aggregation == "composite"

    def test_interface_signals(self):
        interface = Interface("I", ["a", "b"])
        assert interface.signal_names == ["a", "b"]
