"""Action-language parsing: grammar coverage and error reporting."""

import pytest

from repro.errors import ActionSyntaxError
from repro.uml import parse_actions, parse_expression, unparse_block
from repro.uml.actions import (
    Assign,
    BinaryOp,
    Call,
    Conditional,
    If,
    IntLiteral,
    Name,
    Send,
    SetTimer,
    While,
)
from repro.uml.action_lang import tokenize


class TestTokenizer:
    def test_hex_literals(self):
        tokens = tokenize("x = 0xFF;")
        assert tokens[2].text == "0xFF"

    def test_comments_skipped(self):
        tokens = tokenize("x = 1; // trailing comment\ny = 2;")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert "comment" not in texts
        assert "y" in texts

    def test_unexpected_character(self):
        with pytest.raises(ActionSyntaxError) as excinfo:
            tokenize("x = $;")
        assert excinfo.value.line == 1

    def test_line_tracking(self):
        tokens = tokenize("a = 1;\nb = 2;")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.op == "<"

    def test_logical_lowest(self):
        expr = parse_expression("a < b && c < d || e")
        assert expr.op == "||"

    def test_ternary(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, Conditional)

    def test_call_with_args(self):
        expr = parse_expression("min(a, b + 1)")
        assert isinstance(expr, Call)
        assert expr.function == "min"
        assert len(expr.args) == 2

    def test_unary_chain(self):
        expr = parse_expression("!!x")
        assert expr.unparse() == "((!(!x)))"[1:-1]  # nested unary

    def test_parenthesised(self):
        assert parse_expression("(((42)))") == IntLiteral(42)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ActionSyntaxError):
            parse_expression("1 + 2 extra")


class TestStatements:
    def test_assign(self):
        (stmt,) = parse_actions("x = y + 1;")
        assert isinstance(stmt, Assign)
        assert stmt.target == "x"

    def test_send_forms(self):
        stmts = parse_actions("send a(); send b(1, 2) via p;")
        assert isinstance(stmts[0], Send) and stmts[0].via is None
        assert stmts[1].via == "p"
        assert len(stmts[1].args) == 2

    def test_if_else_if_chain(self):
        (stmt,) = parse_actions(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }"
        )
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_body[0], If)

    def test_while(self):
        (stmt,) = parse_actions("while (i < 3) { i = i + 1; }")
        assert isinstance(stmt, While)

    def test_timers(self):
        stmts = parse_actions("set_timer(t, 5 * 2); reset_timer(t);")
        assert isinstance(stmts[0], SetTimer)
        assert stmts[0].timer == "t"

    def test_missing_semicolon(self):
        with pytest.raises(ActionSyntaxError):
            parse_actions("x = 1")

    def test_empty_block_ok(self):
        assert parse_actions("") == []
        assert parse_actions("   \n  // nothing\n") == []

    def test_keyword_as_statement_rejected(self):
        with pytest.raises(ActionSyntaxError):
            parse_actions("via = 1;")


class TestRoundTrip:
    CASES = [
        "x = ((1 + 2) * 3);",
        "send pdu(1, (n + 1)) via out;",
        "if ((a > b)) {\n    x = a;\n} else {\n    x = b;\n}",
        "while ((i < 10)) {\n    i = (i + 1);\n}",
        "set_timer(slot, 250);",
        "reset_timer(slot);",
        "y = (c ? 1 : 0);",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_unparse_then_parse_is_fixed_point(self, source):
        block = parse_actions(source)
        rendered = unparse_block(block)
        assert parse_actions(rendered) == block

    def test_error_carries_position(self):
        with pytest.raises(ActionSyntaxError) as excinfo:
            parse_actions("x = 1;\ny = (;")
        assert excinfo.value.line == 2


class TestDiagnosticPositions:
    """Every ActionSyntaxError must carry a 1-based line AND column —
    including unterminated constructs that fail at end of input."""

    def raises_at(self, source, line, column, parse=parse_actions):
        with pytest.raises(ActionSyntaxError) as excinfo:
            parse(source)
        assert (excinfo.value.line, excinfo.value.column) == (line, column)
        assert f"line {line}, column {column}" in str(excinfo.value)
        return excinfo.value

    def test_unterminated_assignment_at_eof(self):
        self.raises_at("x =", 1, 4)

    def test_unterminated_call_at_eof(self):
        self.raises_at("send foo(", 1, 10)

    def test_unterminated_block_at_eof(self):
        self.raises_at("if (x) { y = 1;", 1, 16)

    def test_unterminated_expression_at_eof(self):
        self.raises_at("a +", 1, 4, parse=parse_expression)

    def test_eof_column_after_trailing_comment(self):
        # The comment skip must advance the column so an error at EOF on
        # the next line does not report the comment's start position.
        self.raises_at("x = 1; // trailing comment\ny =", 2, 4)

    def test_eof_position_on_later_line(self):
        self.raises_at("x = 1;\n\nsend pdu(1,", 3, 12)

    def test_malformed_hex_literal(self):
        error = self.raises_at("x = 0x;", 1, 5)
        assert "malformed hex literal" in str(error)
        assert "'0x'" in str(error)

    def test_malformed_hex_literal_at_eof(self):
        self.raises_at("y = 0X", 1, 5)

    def test_unexpected_character_position(self):
        error = self.raises_at("x = 1;\n  $", 2, 3)
        assert "unexpected character" in str(error)

    def test_comment_only_source_parses(self):
        assert parse_actions("// nothing here") == []
