"""Packages, models and qualified lookup."""

import pytest

from repro.errors import ModelError
from repro.uml import Class, Model, Package, PrimitiveType, Signal


class TestPackage:
    def test_add_and_member(self):
        package = Package("P")
        klass = Class("C")
        package.add(klass)
        assert package.member("C") is klass

    def test_duplicate_name_same_type_rejected(self):
        package = Package("P")
        package.add(Class("C"))
        with pytest.raises(ModelError):
            package.add(Class("C"))

    def test_same_name_different_metaclass_allowed(self):
        package = Package("P")
        package.add(Class("X"))
        package.add(Signal("X"))  # a class and a signal may share a name
        assert len(package.packaged_elements) == 2

    def test_members_of_type(self):
        package = Package("P")
        package.add(Class("A"))
        package.add(Signal("S"))
        assert len(package.members_of_type(Class)) == 1
        assert len(package.members_of_type(Signal)) == 1

    def test_subpackages(self):
        outer = Package("Outer")
        inner = Package("Inner")
        outer.add(inner)
        assert outer.subpackages() == [inner]

    def test_classifiers_recursive(self):
        outer = Package("Outer")
        inner = Package("Inner")
        outer.add(inner)
        outer.add(Class("A"))
        inner.add(Class("B"))
        assert len(list(outer.classifiers())) == 1
        assert len(list(outer.classifiers(recursive=True))) == 2


class TestFind:
    def test_find_nested_path(self):
        model = Model("M")
        package = Package("App")
        model.add(package)
        klass = Class("C")
        package.add(klass)
        assert model.find("App::C") is klass

    def test_find_into_classifier(self):
        from repro.uml import Property

        model = Model("M")
        package = Package("App")
        model.add(package)
        outer = Class("Outer")
        package.add(outer)
        inner = Class("Inner")
        part = outer.add_part(Property("p", inner))
        assert model.find("App::Outer::p") is part

    def test_find_missing_returns_none(self):
        model = Model("M")
        assert model.find("No::Such::Thing") is None


class TestModelPrimitives:
    def test_predefined_primitives_exist(self):
        model = Model("M")
        for name, bits in Model.PREDEFINED_PRIMITIVES:
            primitive = model.primitive(name)
            assert isinstance(primitive, PrimitiveType)
            assert primitive.bits == bits

    def test_unknown_primitive_raises(self):
        with pytest.raises(ModelError):
            Model("M").primitive("Quaternion")

    def test_primitives_live_in_types_package(self):
        model = Model("M")
        types_package = model.member("PrimitiveTypes")
        assert types_package is not None
        assert model.primitive("Int32").owner is types_package
