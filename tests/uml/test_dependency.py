"""Dependencies: clients, suppliers, binary accessors."""

import pytest

from repro.errors import ModelError
from repro.uml import Abstraction, Class, Dependency, Realization, Usage


class TestDependency:
    def test_constructor_shortcuts(self):
        a, b = Class("A"), Class("B")
        dependency = Dependency("d", client=a, supplier=b)
        assert dependency.client is a
        assert dependency.supplier is b

    def test_binary_accessors_require_exactly_one(self):
        dependency = Dependency("d")
        with pytest.raises(ModelError):
            dependency.client
        with pytest.raises(ModelError):
            dependency.supplier
        dependency.add_client(Class("A"))
        dependency.add_client(Class("B"))
        with pytest.raises(ModelError):
            dependency.client

    def test_non_element_rejected(self):
        dependency = Dependency("d")
        with pytest.raises(ModelError):
            dependency.add_client("not an element")
        with pytest.raises(ModelError):
            dependency.add_supplier(42)

    def test_describe(self):
        dependency = Dependency("d", client=Class("A"), supplier=Class("B"))
        assert dependency.describe() == "A --> B"
        assert Dependency("e").describe() == "<none> --> <none>"

    def test_subtypes_are_dependencies(self):
        assert issubclass(Usage, Dependency)
        assert issubclass(Abstraction, Dependency)
        assert issubclass(Realization, Abstraction)
