"""State machine construction and queries."""

import pytest

from repro.errors import ModelError
from repro.uml import SignalTrigger, StateMachine, TimerTrigger


def machine_with_states():
    machine = StateMachine("m")
    machine.state("a", initial=True)
    machine.state("b")
    return machine


class TestConstruction:
    def test_duplicate_state_rejected(self):
        machine = machine_with_states()
        with pytest.raises(ModelError):
            machine.state("a")

    def test_two_initial_states_rejected(self):
        machine = machine_with_states()
        with pytest.raises(ModelError):
            machine.state("c", initial=True)

    def test_duplicate_variable_rejected(self):
        machine = StateMachine("m")
        machine.variable("x")
        with pytest.raises(ModelError):
            machine.variable("x")

    def test_transition_by_name_and_object(self):
        machine = machine_with_states()
        t1 = machine.transition("a", "b")
        t2 = machine.transition(machine.find_state("b"), machine.find_state("a"))
        assert t1.source.name == "a"
        assert t2.source.name == "b"

    def test_unknown_state_rejected(self):
        machine = machine_with_states()
        with pytest.raises(ModelError):
            machine.transition("a", "nope")

    def test_foreign_state_rejected(self):
        machine = machine_with_states()
        other = StateMachine("other")
        foreign = other.state("x", initial=True)
        with pytest.raises(ModelError):
            machine.transition(foreign, "a")

    def test_internal_requires_self_loop(self):
        machine = machine_with_states()
        with pytest.raises(ModelError):
            machine.on_signal("a", "b", "s", internal=True)
        transition = machine.on_signal("a", "a", "s", internal=True)
        assert transition.internal

    def test_bad_action_source_raises_at_build_time(self):
        machine = machine_with_states()
        with pytest.raises(Exception):
            machine.on_signal("a", "b", "s", effect="x = ;")

    def test_guard_parsed(self):
        machine = machine_with_states()
        transition = machine.on_signal("a", "b", "s", params=["n"], guard="n > 3")
        assert transition.guard is not None
        assert transition.guard.unparse() == "(n > 3)"


class TestQueries:
    def test_outgoing_priority_order(self):
        machine = machine_with_states()
        low = machine.on_signal("a", "b", "s", priority=2)
        high = machine.on_signal("a", "a", "s", priority=0, internal=True)
        mid = machine.on_signal("a", "b", "t", priority=1)
        assert machine.outgoing(machine.find_state("a")) == [high, mid, low]

    def test_received_signal_names(self):
        machine = machine_with_states()
        machine.on_signal("a", "b", "z")
        machine.on_signal("b", "a", "y")
        machine.on_timer("a", "a", "t", internal=True)
        assert machine.received_signal_names() == ["y", "z"]

    def test_timer_names(self):
        machine = machine_with_states()
        machine.on_timer("a", "a", "t2", internal=True)
        machine.on_timer("b", "a", "t1")
        assert machine.timer_names() == ["t1", "t2"]

    def test_sent_signal_names_includes_entry_and_effects(self):
        machine = StateMachine("m")
        machine.state("a", initial=True, entry="send from_entry();")
        machine.state("b", exit="send from_exit();")
        machine.on_signal("a", "b", "go", effect="send from_effect();")
        assert machine.sent_signal_names() == [
            "from_effect",
            "from_entry",
            "from_exit",
        ]

    def test_final_state(self):
        machine = machine_with_states()
        final = machine.final_state()
        assert final.is_final
        machine.transition("b", final)

    def test_trigger_descriptions(self):
        assert SignalTrigger("s", ["a", "b"]).describe() == "s(a, b)"
        assert TimerTrigger("t").describe() == "timer t"
