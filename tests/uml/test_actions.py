"""Action language semantics: evaluation and execution."""

import pytest

from repro.errors import ActionRuntimeError
from repro.uml import ActionEnvironment, evaluate, execute, parse_actions, parse_expression
from repro.uml.actions import MAX_LOOP_ITERATIONS


def ev(source, **variables):
    return evaluate(parse_expression(source), ActionEnvironment(variables))


class TestArithmetic:
    def test_basics(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 - 4 - 3") == 3  # left associative
        assert ev("-5 + 2") == -3

    def test_division_truncates_toward_zero(self):
        # C semantics, matching the generated code
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3
        assert ev("7 / -2") == -3
        assert ev("-7 / -2") == 3

    def test_modulo_matches_c(self):
        assert ev("7 % 3") == 1
        assert ev("-7 % 3") == -1
        assert ev("7 % -3") == 1

    def test_division_by_zero(self):
        with pytest.raises(ActionRuntimeError):
            ev("1 / 0")
        with pytest.raises(ActionRuntimeError):
            ev("1 % 0")

    def test_bitwise(self):
        assert ev("6 & 3") == 2
        assert ev("6 | 3") == 7
        assert ev("6 ^ 3") == 5
        assert ev("1 << 4") == 16
        assert ev("16 >> 2") == 4
        assert ev("~0") == -1


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert ev("3 < 4") == 1
        assert ev("4 <= 4") == 1
        assert ev("5 > 6") == 0
        assert ev("5 >= 6") == 0
        assert ev("3 == 3") == 1
        assert ev("3 != 3") == 0

    def test_logic_short_circuit(self):
        # right side would divide by zero; && must not evaluate it
        assert ev("0 && (1 / 0)") == 0
        assert ev("1 || (1 / 0)") == 1

    def test_not(self):
        assert ev("!0") == 1
        assert ev("!5") == 0

    def test_conditional(self):
        assert ev("1 ? 10 : 20") == 10
        assert ev("0 ? 10 : 20") == 20

    def test_booleans(self):
        assert ev("true") == 1
        assert ev("false") == 0


class TestVariables:
    def test_read(self):
        assert ev("x * 2", x=21) == 42

    def test_undefined_raises(self):
        with pytest.raises(ActionRuntimeError):
            ev("nope")

    def test_parameter_shadows_variable(self):
        env = ActionEnvironment({"x": 1})
        env.parameters = {"x": 99}
        assert evaluate(parse_expression("x"), env) == 99

    def test_cannot_assign_parameter(self):
        env = ActionEnvironment()
        env.parameters = {"p": 1}
        with pytest.raises(ActionRuntimeError):
            execute(parse_actions("p = 2;"), env)


class TestBuiltins:
    def test_min_max_abs(self):
        assert ev("min(3, 5)") == 3
        assert ev("max(3, 5)") == 5
        assert ev("abs(-9)") == 9

    def test_crc32_matches_util(self):
        from repro.util.crc import crc32_of_int

        assert ev("crc32(1234)") == crc32_of_int(1234)

    def test_rand16_deterministic_and_bounded(self):
        env = ActionEnvironment()
        values = [env.call_builtin("rand16", []) for _ in range(100)]
        assert all(0 <= v <= 0xFFFF for v in values)
        env2 = ActionEnvironment()
        values2 = [env2.call_builtin("rand16", []) for _ in range(100)]
        assert values == values2

    def test_unknown_builtin(self):
        with pytest.raises(ActionRuntimeError):
            ev("sqrt(2)")


class TestExecution:
    def test_assign(self):
        env = ActionEnvironment()
        execute(parse_actions("x = 5; y = x * 2;"), env)
        assert env.variables == {"x": 5, "y": 10}

    def test_if_else(self):
        env = ActionEnvironment({"x": 1})
        execute(parse_actions("if (x > 0) { y = 1; } else { y = 2; }"), env)
        assert env.variables["y"] == 1
        env2 = ActionEnvironment({"x": -1})
        execute(parse_actions("if (x > 0) { y = 1; } else { y = 2; }"), env2)
        assert env2.variables["y"] == 2

    def test_while_sum(self):
        env = ActionEnvironment()
        execute(
            parse_actions("i = 0; s = 0; while (i < 10) { s = s + i; i = i + 1; }"),
            env,
        )
        assert env.variables["s"] == 45

    def test_while_bound(self):
        env = ActionEnvironment()
        with pytest.raises(ActionRuntimeError):
            execute(parse_actions("x = 0; while (1) { x = x + 1; }"), env)
        assert env.variables["x"] == MAX_LOOP_ITERATIONS

    def test_send_collected(self):
        env = ActionEnvironment({"n": 7})
        execute(parse_actions("send ping(n, n * 2) via out;"), env)
        assert env.sent == [("ping", (7, 14), "out")]

    def test_send_without_via(self):
        env = ActionEnvironment()
        execute(parse_actions("send tick();"), env)
        assert env.sent == [("tick", (), None)]

    def test_timers(self):
        env = ActionEnvironment()
        execute(parse_actions("set_timer(t1, 100); reset_timer(t2);"), env)
        assert env.timers_set == [("t1", 100)]
        assert env.timers_reset == ["t2"]

    def test_negative_timer_duration_rejected(self):
        env = ActionEnvironment()
        with pytest.raises(ActionRuntimeError):
            execute(parse_actions("set_timer(t, 0 - 5);"), env)

    def test_statement_count_approximates_work(self):
        env = ActionEnvironment()
        count = execute(parse_actions("x = 1; y = 2;"), env)
        assert count == 2
        env2 = ActionEnvironment()
        count2 = execute(
            parse_actions("i = 0; while (i < 3) { i = i + 1; }"), env2
        )
        # 1 (init) + 1 (while) + 3 iterations * (1 + 1 body)
        assert count2 == 1 + 1 + 3 * 2


class TestStaticAnalysis:
    def test_sent_signal_names(self):
        from repro.uml.actions import sent_signal_names

        block = parse_actions(
            "if (x) { send a(); } else { send b(); } send a();"
        )
        assert sent_signal_names(block) == ["a", "b"]

    def test_walk_expressions_covers_nested(self):
        from repro.uml.actions import walk_expressions, Name

        block = parse_actions("while (a < b) { x = c + d; }")
        names = {
            e.identifier for e in walk_expressions(block) if isinstance(e, Name)
        }
        assert names == {"a", "b", "c", "d"}
