"""Well-formedness validation rules."""

import pytest

from repro.errors import ValidationError
from repro.uml import (
    Class,
    Connector,
    ConnectorEnd,
    Model,
    Package,
    Port,
    Property,
    Signal,
    StateMachine,
    validate_model,
)


def make_model():
    model = Model("M")
    package = Package("P")
    model.add(package)
    return model, package


class TestActiveClassRules:
    def test_active_without_behavior_is_error(self):
        model, package = make_model()
        package.add(Class("A", is_active=True))
        report = validate_model(model)
        assert any(i.rule == "active-class-behavior" for i in report.errors)

    def test_clean_active_class(self):
        model, package = make_model()
        klass = Class("A", is_active=True)
        package.add(klass)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        machine.state("s", initial=True)
        report = validate_model(model)
        assert report.ok


class TestConnectorRules:
    def test_connector_port_not_on_part_type(self):
        model, package = make_model()
        inner = Class("Inner")
        inner.add_port(Port("good"))
        stranger = Class("Stranger")
        stranger_port = Port("alien")
        stranger.add_port(stranger_port)
        outer = Class("Outer")
        part = outer.add_part(Property("i", inner))
        outer.add_connector(
            Connector("c", ConnectorEnd(stranger_port, part), ConnectorEnd(stranger_port, part))
        )
        package.add(outer)
        package.add(inner)
        package.add(stranger)
        report = validate_model(model)
        assert any(i.rule == "connector-port" for i in report.errors)

    def test_delegation_port_must_belong_to_class(self):
        model, package = make_model()
        outer = Class("Outer")
        foreign_port = Port("foreign")
        inner = Class("Inner")
        inner.add_port(foreign_port)
        part = outer.add_part(Property("i", inner))
        outer.add_connector(
            Connector(
                "c", ConnectorEnd(foreign_port, None), ConnectorEnd(foreign_port, part)
            )
        )
        package.add(outer)
        package.add(inner)
        report = validate_model(model)
        assert any(i.rule == "connector-delegation-port" for i in report.errors)

    def test_non_binary_connector(self):
        model, package = make_model()
        outer = Class("Outer")
        outer.add_connector(Connector("bad"))
        package.add(outer)
        report = validate_model(model)
        assert any(i.rule == "connector-binary" for i in report.errors)


class TestStateMachineRules:
    def test_missing_initial_state(self):
        model, package = make_model()
        klass = Class("A", is_active=True)
        package.add(klass)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        machine.state("s")
        report = validate_model(model)
        assert any(i.rule == "machine-initial" for i in report.errors)

    def test_undeclared_signal_is_warning(self):
        model, package = make_model()
        package.add(Signal("known"))
        klass = Class("A", is_active=True)
        package.add(klass)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        machine.state("s", initial=True)
        machine.on_signal("s", "s", "unknown", internal=True)
        report = validate_model(model)
        assert any(i.rule == "trigger-signal-declared" for i in report.warnings)
        assert report.ok  # warnings do not fail validation

    def test_undeclared_sent_signal_warned(self):
        model, package = make_model()
        package.add(Signal("known"))
        klass = Class("A", is_active=True)
        package.add(klass)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        machine.state("s", initial=True, entry="send mystery();")
        report = validate_model(model)
        assert any(i.rule == "send-signal-declared" for i in report.warnings)

    def test_unreachable_state_warned(self):
        model, package = make_model()
        klass = Class("A", is_active=True)
        package.add(klass)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        machine.state("s", initial=True)
        machine.state("island")
        report = validate_model(model)
        assert any(i.rule == "state-unreachable" for i in report.warnings)

    def test_transition_from_final_rejected(self):
        model, package = make_model()
        klass = Class("A", is_active=True)
        package.add(klass)
        machine = StateMachine("m")
        klass.set_behavior(machine)
        machine.state("s", initial=True)
        final = machine.final_state()
        machine.transition("s", final)
        machine.transitions.append(
            type(machine.transitions[0])(final, machine.find_state("s"))
        )
        report = validate_model(model)
        assert any(i.rule == "transition-from-final" for i in report.errors)


class TestRequiredTags:
    def test_missing_required_tag_reported(self):
        from repro.uml import Profile, Stereotype, TagType

        model, package = make_model()
        profile = Profile("P")
        stereotype = Stereotype("S", metaclasses=("Class",))
        stereotype.define_tag("Must", TagType.INT, required=True)
        profile.add_stereotype(stereotype)
        klass = Class("C")
        package.add(klass)
        profile.apply(klass, "S")
        report = validate_model(model)
        assert any(i.rule == "required-tag" for i in report.errors)


class TestReport:
    def test_raise_on_errors(self):
        model, package = make_model()
        package.add(Class("A", is_active=True))
        report = validate_model(model)
        with pytest.raises(ValidationError) as excinfo:
            report.raise_on_errors()
        assert excinfo.value.issues

    def test_render_mentions_rules(self):
        model, package = make_model()
        package.add(Class("A", is_active=True))
        text = validate_model(model).render()
        assert "active-class-behavior" in text

    def test_clean_render(self):
        model, _ = make_model()
        assert "ok" in validate_model(model).render()


class TestDeadConnectorRule:
    def test_disjoint_signal_sets_warned(self):
        model, package = make_model()
        sender = Class("Sender")
        sender_port = Port("out", required=["a"])
        sender.add_port(sender_port)
        receiver = Class("Receiver")
        receiver_port = Port("inp", provided=["b"])  # cannot receive 'a'
        receiver.add_port(receiver_port)
        outer = Class("Outer")
        part1 = outer.add_part(Property("s1", sender))
        part2 = outer.add_part(Property("r1", receiver))
        outer.add_connector(
            Connector(
                "dead",
                ConnectorEnd(sender_port, part1),
                ConnectorEnd(receiver_port, part2),
            )
        )
        for element in (sender, receiver, outer):
            package.add(element)
        report = validate_model(model)
        assert any(i.rule == "connector-dead" for i in report.warnings)

    def test_compatible_connector_clean(self):
        model, package = make_model()
        sender = Class("Sender")
        sender_port = Port("out", required=["a"])
        sender.add_port(sender_port)
        receiver = Class("Receiver")
        receiver_port = Port("inp", provided=["a"])
        receiver.add_port(receiver_port)
        outer = Class("Outer")
        part1 = outer.add_part(Property("s1", sender))
        part2 = outer.add_part(Property("r1", receiver))
        outer.add_connector(
            Connector(
                "live",
                ConnectorEnd(sender_port, part1),
                ConnectorEnd(receiver_port, part2),
            )
        )
        for element in (sender, receiver, outer):
            package.add(element)
        report = validate_model(model)
        assert not any(i.rule == "connector-dead" for i in report.warnings)

    def test_relay_port_not_flagged(self):
        model, package = make_model()
        sender = Class("Sender")
        sender_port = Port("out", required=["a"])
        sender.add_port(sender_port)
        relay = Class("Relay")
        relay_port = Port("pass_through")  # unconstrained
        relay.add_port(relay_port)
        outer = Class("Outer")
        part1 = outer.add_part(Property("s1", sender))
        part2 = outer.add_part(Property("x1", relay))
        outer.add_connector(
            Connector(
                "via",
                ConnectorEnd(sender_port, part1),
                ConnectorEnd(relay_port, part2),
            )
        )
        for element in (sender, relay, outer):
            package.add(element)
        report = validate_model(model)
        assert not any(i.rule == "connector-dead" for i in report.warnings)
