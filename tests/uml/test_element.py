"""Element ownership, naming and stereotype access."""

import pytest

from repro.uml import Class, Comment, Model, NamedElement, Package
from repro.uml.element import Element


class TestOwnership:
    def test_own_sets_owner(self):
        parent = Element()
        child = Element()
        parent.own(child)
        assert child.owner is parent
        assert child in parent.owned_elements

    def test_reown_moves_element(self):
        first = Element()
        second = Element()
        child = Element()
        first.own(child)
        second.own(child)
        assert child.owner is second
        assert child not in first.owned_elements
        assert child in second.owned_elements

    def test_disown(self):
        parent = Element()
        child = parent.own(Element())
        parent.disown(child)
        assert child.owner is None
        assert child not in parent.owned_elements

    def test_all_owned_elements_depth_first(self):
        root = Element()
        a = root.own(Element())
        b = root.own(Element())
        a1 = a.own(Element())
        assert list(root.all_owned_elements()) == [a, a1, b]

    def test_root(self):
        root = Element()
        mid = root.own(Element())
        leaf = mid.own(Element())
        assert leaf.root() is root
        assert root.root() is root

    def test_owner_chain(self):
        root = Element()
        mid = root.own(Element())
        leaf = mid.own(Element())
        assert list(leaf.owner_chain()) == [mid, root]

    def test_serials_are_monotonic(self):
        first = Element()
        second = Element()
        assert second.serial > first.serial


class TestNaming:
    def test_qualified_name_walks_named_owners(self):
        model = Model("M")
        package = Package("P")
        model.add(package)
        klass = Class("C")
        package.add(klass)
        assert klass.qualified_name == "M::P::C"

    def test_qualified_name_skips_unnamed_owners(self):
        outer = NamedElement("outer")
        anonymous = outer.own(NamedElement(""))
        inner = anonymous.own(NamedElement("inner"))
        assert inner.qualified_name == "outer::inner"

    def test_repr_contains_name(self):
        assert "Thing" in repr(NamedElement("Thing"))


class TestComments:
    def test_add_comment(self):
        element = Element()
        comment = element.add_comment("note")
        assert isinstance(comment, Comment)
        assert comment.body == "note"
        assert comment in element.comments
        assert comment.owner is element


class TestStereotypeAccess:
    def test_no_stereotypes_by_default(self):
        element = Element()
        assert element.applied_stereotypes == []
        assert not element.has_stereotype("Anything")
        assert element.stereotype_application("Anything") is None

    def test_tag_returns_default_when_unapplied(self):
        element = Element()
        assert element.tag("S", "t", 42) == 42

    def test_metaclass_name(self):
        assert Class("X").metaclass_name() == "Class"
        assert Package("P").metaclass_name() == "Package"
