"""Model fingerprinting: what counts as the same design."""

from repro.uml import Class, Model, Package, Port, Property, Signal, StateMachine
from repro.uml.compare import model_fingerprint


def base_model():
    model = Model("M")
    package = Package("P")
    model.add(package)
    klass = Class("C", is_active=True)
    package.add(klass)
    klass.add_port(Port("p", provided=["s"]))
    machine = StateMachine("beh")
    klass.set_behavior(machine)
    machine.variable("x", 1)
    machine.state("a", initial=True)
    signal = Signal("s")
    signal.add_attribute(Property("n", model.primitive("Int32")))
    package.add(signal)
    return model


class TestInvariance:
    def test_identical_construction_identical_fingerprint(self):
        assert model_fingerprint(base_model()) == model_fingerprint(base_model())

    def test_declaration_order_of_members_irrelevant(self):
        first = Model("M")
        package = Package("P")
        first.add(package)
        package.add(Class("A"))
        package.add(Class("B"))
        second = Model("M")
        package2 = Package("P")
        second.add(package2)
        package2.add(Class("B"))
        package2.add(Class("A"))
        assert model_fingerprint(first) == model_fingerprint(second)


class TestSensitivity:
    def test_variable_initial_value_matters(self):
        first = base_model()
        second = base_model()
        second.find("P::C").classifier_behavior.variables["x"] = 99
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_activity_flag_matters(self):
        first = base_model()
        second = base_model()
        # demote the class to passive (bypassing behaviour checks)
        klass = second.find("P::C")
        klass.is_active = False
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_stereotype_application_matters(self):
        from repro.tutprofile import fresh_profile

        first = base_model()
        second = base_model()
        fresh_profile().apply(second.find("P::C"), "ApplicationComponent")
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_tag_value_matters(self):
        from repro.tutprofile import fresh_profile

        first = base_model()
        second = base_model()
        profile = fresh_profile()
        profile.apply(first.find("P::C"), "ApplicationComponent", CodeMemory=1)
        profile2 = fresh_profile()
        profile2.apply(second.find("P::C"), "ApplicationComponent", CodeMemory=2)
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_transition_effect_matters(self):
        first = base_model()
        second = base_model()
        machine = second.find("P::C").classifier_behavior
        machine.on_signal("a", "a", "s", internal=True, effect="x = 2;")
        assert model_fingerprint(first) != model_fingerprint(second)
