"""Instance specifications and slots."""

import pytest

from repro.errors import ModelError
from repro.uml import Class, InstanceSpecification, Property


def classifier_with_attributes():
    klass = Class("CPU")
    klass.add_attribute(Property("frequency", default=100))
    klass.add_attribute(Property("cores"))
    return klass


class TestSlots:
    def test_set_and_read(self):
        instance = InstanceSpecification("cpu0", classifier_with_attributes())
        instance.set_slot("cores", 4)
        assert instance.value("cores") == 4

    def test_unknown_feature_rejected_when_typed(self):
        instance = InstanceSpecification("cpu0", classifier_with_attributes())
        with pytest.raises(ModelError):
            instance.set_slot("voltage", 5)

    def test_untyped_instance_accepts_any_feature(self):
        instance = InstanceSpecification("blob")
        instance.set_slot("anything", "goes")
        assert instance.value("anything") == "goes"

    def test_default_from_classifier_attribute(self):
        instance = InstanceSpecification("cpu0", classifier_with_attributes())
        assert instance.value("frequency") == 100

    def test_explicit_slot_overrides_default(self):
        instance = InstanceSpecification("cpu0", classifier_with_attributes())
        instance.set_slot("frequency", 200)
        assert instance.value("frequency") == 200

    def test_missing_value_returns_default_argument(self):
        instance = InstanceSpecification("cpu0", classifier_with_attributes())
        assert instance.value("cores", default="unknown") == "unknown"

    def test_describe(self):
        instance = InstanceSpecification("cpu0", classifier_with_attributes())
        assert instance.describe() == "cpu0 : CPU"
        assert InstanceSpecification("x").describe() == "x : <untyped>"

    def test_inherited_attribute_visible(self):
        base = classifier_with_attributes()
        derived = Class("FastCPU")
        derived.add_generalization(base)
        instance = InstanceSpecification("cpu0", derived)
        instance.set_slot("cores", 8)  # inherited feature accepted
        assert instance.value("cores") == 8
