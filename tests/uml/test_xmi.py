"""XMI serialisation: round-trips, stereotypes, error handling."""

import pytest

from repro.errors import XmiError
from repro.uml import (
    Class,
    Dependency,
    InstanceSpecification,
    Model,
    Package,
    Port,
    Profile,
    Property,
    Signal,
    StateMachine,
    Stereotype,
    TagType,
    model_to_xml,
    xml_to_model,
)
from repro.uml.compare import model_fingerprint


def rich_model():
    model = Model("M")
    package = Package("App")
    model.add(package)
    signal = Signal("go", payload_bits=64)
    signal.add_attribute(Property("n", model.primitive("Int32")))
    package.add(signal)
    ack = Signal("ack")
    ack.add_attribute(Property("v", model.primitive("Int16")))
    package.add(ack)
    component = Class("Comp", is_active=True)
    package.add(component)
    component.add_port(Port("p", provided=["go"], required=["ack"]))
    machine = StateMachine("beh")
    component.set_behavior(machine)
    machine.variable("x", 7)
    machine.state("idle", initial=True, entry="set_timer(t, 10);")
    machine.state("run", exit="x = x - 1;")
    machine.on_signal(
        "idle", "run", "go", params=["n"], guard="n > 0",
        effect="x = n * 2; send ack(x) via p;",
    )
    machine.on_timer("run", "idle", "t", effect="x = 0;")
    machine.on_signal("run", "run", "go", params=["n"], internal=True)
    holder = Class("Holder")
    part = holder.add_part(Property("c1", component))
    package.add(holder)
    dependency = Dependency("d", client=part, supplier=component)
    package.add(dependency)
    instance = InstanceSpecification("inst", component)
    package.add(instance)
    return model


class TestRoundTrip:
    def test_fingerprint_stable_through_roundtrip(self):
        model = rich_model()
        text = model_to_xml(model)
        recovered = xml_to_model(text)
        assert model_fingerprint(recovered) == model_fingerprint(model)

    def test_second_roundtrip_is_byte_identical(self):
        model = rich_model()
        first = model_to_xml(xml_to_model(model_to_xml(model)))
        second = model_to_xml(xml_to_model(first))
        assert first == second

    def test_machine_details_survive(self):
        model = rich_model()
        recovered = xml_to_model(model_to_xml(model))
        machine = recovered.find("App::Comp").classifier_behavior
        assert machine.variables == {"x": 7}
        assert machine.initial_state.name == "idle"
        transitions = machine.transitions
        assert transitions[0].guard.unparse() == "(n > 0)"
        assert transitions[2].internal

    def test_signal_sizes_survive(self):
        model = rich_model()
        recovered = xml_to_model(model_to_xml(model))
        assert recovered.find("App::go").size_bits() == model.find("App::go").size_bits()

    def test_dependency_refs_resolve(self):
        model = rich_model()
        recovered = xml_to_model(model_to_xml(model))
        dependency = recovered.find("App::d")
        assert dependency.client.name == "c1"
        assert dependency.supplier.name == "Comp"

    def test_write_and_read_file(self, tmp_path):
        from repro.uml import read_model, write_model

        model = rich_model()
        path = tmp_path / "model.xmi"
        write_model(model, path)
        recovered = read_model(path)
        assert model_fingerprint(recovered) == model_fingerprint(model)


class TestStereotypes:
    def make_profile(self):
        profile = Profile("TestProfile")
        stereotype = Stereotype("Marker", metaclasses=("Class",))
        stereotype.define_tag("Weight", TagType.INT, default=0)
        stereotype.define_tag("Label", TagType.STRING, default="")
        stereotype.define_tag("On", TagType.BOOL, default=False)
        stereotype.define_tag("Ratio", TagType.REAL, default=0.0)
        profile.add_stereotype(stereotype)
        return profile

    def test_tagged_values_roundtrip_with_types(self):
        profile = self.make_profile()
        model = Model("M")
        package = Package("P")
        model.add(package)
        klass = Class("C")
        package.add(klass)
        profile.apply(klass, "Marker", Weight=5, Label="hi", On=True, Ratio=2.5)
        recovered = xml_to_model(model_to_xml(model), profiles=[profile])
        recovered_class = recovered.find("P::C")
        assert recovered_class.tag("Marker", "Weight") == 5
        assert recovered_class.tag("Marker", "Label") == "hi"
        assert recovered_class.tag("Marker", "On") is True
        assert recovered_class.tag("Marker", "Ratio") == 2.5

    def test_unknown_profile_raises(self):
        profile = self.make_profile()
        model = Model("M")
        package = Package("P")
        model.add(package)
        klass = Class("C")
        package.add(klass)
        profile.apply(klass, "Marker")
        with pytest.raises(XmiError):
            xml_to_model(model_to_xml(model), profiles=[])


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(XmiError):
            xml_to_model("<not xml")

    def test_wrong_root(self):
        with pytest.raises(XmiError):
            xml_to_model("<something/>")

    def test_missing_model_element(self):
        with pytest.raises(XmiError):
            xml_to_model("<XMI version='2.1'></XMI>")


class TestExternalReferences:
    def test_cross_model_dependency_serialises_symbolically(self):
        model = Model("M")
        package = Package("P")
        model.add(package)
        other_model = Model("Other")
        foreign = Class("Foreign")
        other_model.add(foreign)
        local = Class("Local")
        package.add(local)
        dependency = Dependency("x", client=local, supplier=foreign)
        package.add(dependency)
        text = model_to_xml(model)
        assert "ext:Other::Foreign" in text
        # parses back: the external supplier is dropped, the local client kept
        recovered = xml_to_model(text)
        recovered_dependency = recovered.find("P::x")
        assert [c.name for c in recovered_dependency.clients] == ["Local"]
        assert recovered_dependency.suppliers == []
