"""Profile mechanism: tag definitions, stereotypes, applications."""

import pytest

from repro.errors import ProfileError
from repro.uml import Class, Dependency, Profile, Property, Stereotype, TagType
from repro.uml.profile import TagDefinition


class TestTagDefinition:
    def test_type_validation(self):
        tag = TagDefinition("n", TagType.INT)
        assert tag.validate(5) == 5
        with pytest.raises(ProfileError):
            tag.validate("five")
        with pytest.raises(ProfileError):
            tag.validate(True)  # bools are not ints here

    def test_string(self):
        tag = TagDefinition("s", TagType.STRING)
        assert tag.validate("x") == "x"
        with pytest.raises(ProfileError):
            tag.validate(3)

    def test_real_accepts_int_and_float(self):
        tag = TagDefinition("r", TagType.REAL)
        assert tag.validate(2) == 2.0
        assert tag.validate(2.5) == 2.5

    def test_bool(self):
        tag = TagDefinition("b", TagType.BOOL)
        assert tag.validate(True) is True
        with pytest.raises(ProfileError):
            tag.validate(1)

    def test_enum(self):
        tag = TagDefinition("e", TagType.ENUM, enum_values=["x", "y"])
        assert tag.validate("x") == "x"
        with pytest.raises(ProfileError):
            tag.validate("z")

    def test_enum_requires_values(self):
        with pytest.raises(ProfileError):
            TagDefinition("e", TagType.ENUM)

    def test_non_enum_rejects_values(self):
        with pytest.raises(ProfileError):
            TagDefinition("n", TagType.INT, enum_values=["a"])

    def test_default_is_validated(self):
        with pytest.raises(ProfileError):
            TagDefinition("n", TagType.INT, default="bad")

    def test_unknown_type(self):
        with pytest.raises(ProfileError):
            TagDefinition("n", "complex")


class TestStereotype:
    def test_extends_checks_metaclass_mro(self):
        stereotype = Stereotype("S", metaclasses=("Property",))
        from repro.uml import Port

        assert stereotype.extends(Property("p"))
        assert stereotype.extends(Port("q"))  # Port subclasses Property
        assert not stereotype.extends(Class("c"))

    def test_specialization_inherits_metaclasses_and_tags(self):
        base = Stereotype("Base", metaclasses=("Class",))
        base.define_tag("Shared", TagType.INT, default=1)
        special = Stereotype("Special", metaclasses=(), specializes=base)
        special.define_tag("Own", TagType.INT, default=2)
        assert special.effective_metaclasses() == ("Class",)
        names = [d.name for d in special.all_tag_definitions()]
        assert names == ["Own", "Shared"]
        assert special.is_kind_of("Base")
        assert special.is_kind_of("Special")
        assert not base.is_kind_of("Special")

    def test_own_tag_shadows_inherited(self):
        base = Stereotype("Base", metaclasses=("Class",))
        base.define_tag("T", TagType.INT, default=1)
        special = Stereotype("Special", specializes=base)
        special.define_tag("T", TagType.INT, default=99)
        assert special.find_tag("T").default == 99

    def test_duplicate_tag_rejected(self):
        stereotype = Stereotype("S")
        stereotype.define_tag("T", TagType.INT)
        with pytest.raises(ProfileError):
            stereotype.define_tag("T", TagType.INT)


class TestProfileApplication:
    def make_profile(self):
        profile = Profile("P")
        stereotype = Stereotype("Marker", metaclasses=("Class",))
        stereotype.define_tag("Weight", TagType.INT, default=0)
        stereotype.define_tag("Kind", TagType.ENUM, enum_values=["a", "b"], default="a")
        stereotype.define_tag("Must", TagType.INT, required=True)
        profile.add_stereotype(stereotype)
        return profile

    def test_apply_and_read_tags(self):
        profile = self.make_profile()
        klass = Class("C")
        application = profile.apply(klass, "Marker", Weight=5, Must=1)
        assert klass.has_stereotype("Marker")
        assert klass.tag("Marker", "Weight") == 5
        assert klass.tag("Marker", "Kind") == "a"  # default
        assert application.missing_required_tags() == []

    def test_missing_required_reported(self):
        profile = self.make_profile()
        klass = Class("C")
        application = profile.apply(klass, "Marker")
        assert application.missing_required_tags() == ["Must"]

    def test_wrong_metaclass_rejected(self):
        profile = self.make_profile()
        with pytest.raises(ProfileError):
            profile.apply(Property("p"), "Marker")

    def test_double_application_rejected(self):
        profile = self.make_profile()
        klass = Class("C")
        profile.apply(klass, "Marker", Must=1)
        with pytest.raises(ProfileError):
            profile.apply(klass, "Marker", Must=1)

    def test_unknown_stereotype_rejected(self):
        profile = self.make_profile()
        with pytest.raises(ProfileError):
            profile.apply(Class("C"), "Nope")

    def test_unknown_tag_rejected(self):
        profile = self.make_profile()
        with pytest.raises(ProfileError):
            profile.apply(Class("C"), "Marker", Bogus=1)

    def test_bad_tag_value_rejected(self):
        profile = self.make_profile()
        with pytest.raises(ProfileError):
            profile.apply(Class("C"), "Marker", Kind="z", Must=1)

    def test_unapply(self):
        profile = self.make_profile()
        klass = Class("C")
        profile.apply(klass, "Marker", Must=1)
        profile.unapply(klass, "Marker")
        assert not klass.has_stereotype("Marker")
        with pytest.raises(ProfileError):
            profile.unapply(klass, "Marker")

    def test_abstract_stereotype_cannot_be_applied(self):
        profile = Profile("P")
        profile.add_stereotype(
            Stereotype("Abstract", metaclasses=("Class",), is_abstract=True)
        )
        with pytest.raises(ProfileError):
            profile.apply(Class("C"), "Abstract")

    def test_duplicate_stereotype_name_rejected(self):
        profile = Profile("P")
        profile.add_stereotype(Stereotype("S"))
        with pytest.raises(ProfileError):
            profile.add_stereotype(Stereotype("S"))

    def test_specialized_application_found_by_base_name(self):
        profile = Profile("P")
        base = Stereotype("Base", metaclasses=("Dependency",))
        base.define_tag("T", TagType.INT, default=7)
        profile.add_stereotype(base)
        special = Stereotype("Special", specializes=base)
        profile.add_stereotype(special)
        dependency = Dependency("d")
        profile.apply(dependency, "Special")
        assert dependency.has_stereotype("Base")
        assert dependency.tag("Base", "T") == 7
