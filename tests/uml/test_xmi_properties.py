"""Property-based XMI round-trip tests over randomly generated models."""

from hypothesis import given, settings, strategies as st

from repro.uml import (
    Class,
    Model,
    Package,
    Port,
    Property,
    Signal,
    StateMachine,
    model_to_xml,
    xml_to_model,
)
from repro.uml.compare import model_fingerprint

NAMES = st.sampled_from(
    ["Alpha", "Beta", "Gamma", "Delta", "Widget", "Filter", "Codec", "Mux"]
)
PORT_NAMES = st.sampled_from(["p1", "p2", "io", "ctrl"])
SIGNAL_NAMES = st.sampled_from(["s_a", "s_b", "s_c", "s_d"])
STATE_NAMES = ["idle", "busy", "done"]


@st.composite
def models(draw):
    model = Model("Rand")
    package = Package("Pkg")
    model.add(package)
    # signals with varying parameter counts
    for signal_name in sorted(draw(st.sets(SIGNAL_NAMES, min_size=1, max_size=4))):
        signal = Signal(signal_name, payload_bits=draw(st.integers(0, 512)))
        for index in range(draw(st.integers(0, 3))):
            signal.add_attribute(
                Property(f"f{index}", model.primitive("Int32"))
            )
        package.add(signal)
    declared = [s.name for s in package.members_of_type(Signal)]
    # classes
    class_names = sorted(draw(st.sets(NAMES, min_size=1, max_size=4)))
    for class_name in class_names:
        active = draw(st.booleans())
        klass = Class(class_name, is_active=active)
        package.add(klass)
        for port_name in sorted(draw(st.sets(PORT_NAMES, max_size=2))):
            provided = sorted(draw(st.sets(st.sampled_from(declared), max_size=2)))
            required = sorted(draw(st.sets(st.sampled_from(declared), max_size=2)))
            klass.add_port(Port(port_name, provided, required))
        if active:
            machine = StateMachine(f"{class_name}Beh")
            klass.set_behavior(machine)
            state_count = draw(st.integers(1, 3))
            for index in range(state_count):
                machine.state(STATE_NAMES[index], initial=(index == 0))
            for _ in range(draw(st.integers(0, 3))):
                source = STATE_NAMES[draw(st.integers(0, state_count - 1))]
                target = STATE_NAMES[draw(st.integers(0, state_count - 1))]
                signal_name = draw(st.sampled_from(declared))
                internal = source == target and draw(st.booleans())
                machine.on_signal(
                    source,
                    target,
                    signal_name,
                    effect=draw(
                        st.sampled_from(["", "x = 1;", f"send {declared[0]}();"])
                    ),
                    priority=draw(st.integers(0, 3)),
                    internal=internal,
                )
    return model


@given(models())
@settings(max_examples=60, deadline=None)
def test_random_model_roundtrips_semantically(model):
    text = model_to_xml(model)
    recovered = xml_to_model(text)
    assert model_fingerprint(recovered) == model_fingerprint(model)


@given(models())
@settings(max_examples=30, deadline=None)
def test_serialisation_is_deterministic(model):
    assert model_to_xml(model) == model_to_xml(model)
