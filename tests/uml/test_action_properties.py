"""Property-based tests of the action language (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.uml import ActionEnvironment, evaluate, parse_actions, parse_expression, unparse_block
from repro.uml.actions import (
    Assign,
    BinaryOp,
    BoolLiteral,
    Call,
    Conditional,
    If,
    IntLiteral,
    Name,
    Send,
    SetTimer,
    UnaryOp,
    While,
)

VARIABLE_NAMES = st.sampled_from(["a", "b", "c", "x", "y", "count"])

# -- expression AST strategy ----------------------------------------------------

SAFE_BINARY_OPS = ["+", "-", "*", "&", "|", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]


def exprs(max_depth=4):
    base = st.one_of(
        st.integers(min_value=0, max_value=1000).map(IntLiteral),
        st.booleans().map(BoolLiteral),
        VARIABLE_NAMES.map(Name),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(SAFE_BINARY_OPS), children, children).map(
                lambda t: BinaryOp(*t)
            ),
            st.tuples(st.sampled_from(["-", "!", "~"]), children).map(
                lambda t: UnaryOp(*t)
            ),
            st.tuples(children, children, children).map(lambda t: Conditional(*t)),
            st.tuples(children, children).map(lambda t: Call("min", list(t))),
        )

    return st.recursive(base, extend, max_leaves=12)


@given(exprs())
@settings(max_examples=150, deadline=None)
def test_expression_unparse_parse_roundtrip(expr):
    """unparse → parse reproduces the same AST."""
    assert parse_expression(expr.unparse()) == expr


@given(exprs())
@settings(max_examples=150, deadline=None)
def test_expression_evaluation_deterministic(expr):
    env = ActionEnvironment({name: 3 for name in ["a", "b", "c", "x", "y", "count"]})
    first = evaluate(expr, env)
    second = evaluate(expr, ActionEnvironment(dict(env.variables)))
    assert first == second


# -- statement AST strategy ------------------------------------------------------


def stmts(depth=2):
    simple = st.one_of(
        st.tuples(VARIABLE_NAMES, exprs(2)).map(lambda t: Assign(*t)),
        st.tuples(
            st.sampled_from(["ping", "pong", "data"]),
            st.lists(exprs(2), max_size=2),
            st.sampled_from([None, "out"]),
        ).map(lambda t: Send(*t)),
        st.tuples(st.sampled_from(["t1", "t2"]), exprs(2)).map(
            lambda t: SetTimer(*t)
        ),
    )
    if depth == 0:
        return st.lists(simple, max_size=3)
    inner = stmts(depth - 1)
    compound = st.one_of(
        st.tuples(exprs(2), inner, inner).map(lambda t: If(*t)),
    )
    return st.lists(st.one_of(simple, compound), max_size=3)


@given(stmts())
@settings(max_examples=100, deadline=None)
def test_statement_unparse_parse_roundtrip(block):
    rendered = unparse_block(block)
    assert parse_actions(rendered) == list(block)


@given(
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=-10**6, max_value=10**6),
)
def test_division_matches_c_semantics(numerator, denominator):
    """a == (a/b)*b + a%b and both truncate toward zero, as in C."""
    if denominator == 0:
        return
    env = ActionEnvironment({"a": numerator, "b": denominator})
    quotient = evaluate(parse_expression("a / b"), env)
    remainder = evaluate(parse_expression("a % b"), env)
    assert quotient * denominator + remainder == numerator
    assert abs(remainder) < abs(denominator)
    # truncation toward zero, not floor
    assert quotient == int(numerator / denominator)
