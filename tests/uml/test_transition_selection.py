"""Transition-selection edge cases in EFSM execution.

Covers the ordering and guard rules the static analyser (repro.analysis)
assumes: same-trigger candidates are tried in (priority, declaration)
order, guards fall through, completion transitions chase after entry, and
signal lookup bubbles from the active leaf through its ancestors.
"""

import pytest

from repro.errors import SimulationError
from repro.simulation import ProcessExecutor
from repro.uml.statemachine import StateMachine


def started(machine):
    executor = ProcessExecutor("p", machine)
    executor.start()
    return executor


class TestSameTriggerOrdering:
    def test_lower_priority_value_wins(self):
        m = StateMachine("M")
        m.state("idle", initial=True)
        m.state("a")
        m.state("b")
        m.on_signal("idle", "a", "go", priority=1)
        m.on_signal("idle", "b", "go", priority=0)
        executor = started(m)
        outcome, reason = executor.consume_signal("go", [])
        assert reason is None
        assert outcome.to_state == "b"

    def test_declaration_order_breaks_priority_ties(self):
        m = StateMachine("M")
        m.state("idle", initial=True)
        m.state("a")
        m.state("b")
        m.on_signal("idle", "a", "go")
        m.on_signal("idle", "b", "go")
        executor = started(m)
        outcome, _ = executor.consume_signal("go", [])
        assert outcome.to_state == "a"

    def test_guard_falls_through_to_next_candidate(self):
        m = StateMachine("M")
        m.variable("x", 0)
        m.state("idle", initial=True)
        m.state("a")
        m.state("b")
        m.on_signal("idle", "a", "go", guard="x > 0")
        m.on_signal("idle", "b", "go")
        executor = started(m)
        outcome, _ = executor.consume_signal("go", [])
        assert outcome.to_state == "b"
        assert outcome.guards_evaluated == 1
        executor2 = started(m)
        executor2.variables["x"] = 1
        outcome2, _ = executor2.consume_signal("go", [])
        assert outcome2.to_state == "a"

    def test_guard_reads_trigger_parameters(self):
        m = StateMachine("M")
        m.state("idle", initial=True)
        m.state("big")
        m.state("small")
        m.on_signal("idle", "big", "load", params=["n"], guard="n >= 10")
        m.on_signal("idle", "small", "load", params=["n"])
        executor = started(m)
        outcome, _ = executor.consume_signal("load", [3])
        assert outcome.to_state == "small"
        executor2 = started(m)
        outcome2, _ = executor2.consume_signal("load", [12])
        assert outcome2.to_state == "big"


class TestDropReasons:
    def machine(self):
        m = StateMachine("M")
        m.variable("x", 0)
        m.state("idle", initial=True)
        m.state("a")
        m.on_signal("idle", "a", "go", guard="x > 0")
        return m

    def test_all_guards_false(self):
        executor = started(self.machine())
        outcome, reason = executor.consume_signal("go", [])
        assert outcome is None and reason == "guards-false"

    def test_no_transition_for_signal(self):
        executor = started(self.machine())
        outcome, reason = executor.consume_signal("mystery", [])
        assert outcome is None and reason == "no-transition"

    def test_timer_without_handler(self):
        executor = started(self.machine())
        outcome, reason = executor.fire_timer("t")
        assert outcome is None and reason == "no-transition"

    def test_dropped_signal_does_not_change_state(self):
        executor = started(self.machine())
        executor.consume_signal("go", [])
        assert executor.current.name == "idle"


class TestCompletionTransitions:
    def test_chased_after_start(self):
        m = StateMachine("M")
        m.state("init", initial=True)
        m.state("ready")
        m.transition("init", "ready")  # completion: no trigger
        executor = started(m)
        assert executor.current.name == "ready"

    def test_chased_after_signal_transition(self):
        m = StateMachine("M")
        m.state("idle", initial=True)
        m.state("transient")
        m.state("settled")
        m.on_signal("idle", "transient", "go")
        m.transition("transient", "settled")
        executor = started(m)
        outcome, _ = executor.consume_signal("go", [])
        assert outcome.to_state == "settled"

    def test_guarded_completion_waits_for_variable(self):
        m = StateMachine("M")
        m.variable("done", 0)
        m.state("idle", initial=True)
        m.state("hold")
        m.state("out")
        m.on_signal("idle", "hold", "go", effect="done = 0;")
        m.on_signal("hold", "hold", "tick", effect="done = 1;")
        m.transition("hold", "out", guard="done == 1")
        executor = started(m)
        executor.consume_signal("go", [])
        assert executor.current.name == "hold"  # guard still false
        outcome, _ = executor.consume_signal("tick", [])
        assert outcome.to_state == "out"

    def test_internal_transition_does_not_chase_completions(self):
        # Internal transitions are effect-only: no exit/entry and no
        # completion re-examination, even when their effect enables one.
        m = StateMachine("M")
        m.variable("done", 0)
        m.state("hold", initial=True)
        m.state("out")
        m.on_signal("hold", "hold", "tick", internal=True, effect="done = 1;")
        m.transition("hold", "out", guard="done == 1")
        executor = started(m)
        executor.consume_signal("tick", [])
        assert executor.variables["done"] == 1
        assert executor.current.name == "hold"

    def test_completion_into_toplevel_final_terminates(self):
        m = StateMachine("M")
        m.state("init", initial=True)
        m.transition("init", m.final_state())
        executor = started(m)
        assert executor.terminated
        with pytest.raises(SimulationError):
            executor.consume_signal("go", [])

    def test_completion_livelock_detected(self):
        m = StateMachine("M")
        m.state("a", initial=True)
        m.state("b")
        m.transition("a", "b")
        m.transition("b", "a")
        with pytest.raises(SimulationError) as excinfo:
            started(m)
        assert "completion" in str(excinfo.value)


class TestHierarchicalSelection:
    def machine(self):
        m = StateMachine("M")
        outer = m.state("outer")
        m.state("idle", initial=True)
        m.state("inner", parent=outer, initial=True)
        m.state("other")
        m.on_signal("idle", "outer", "go")
        m.on_signal("outer", "other", "reset")  # ancestor-level handler
        return m

    def test_ancestor_handles_when_leaf_does_not(self):
        m = self.machine()
        executor = started(m)
        executor.consume_signal("go", [])
        assert executor.current.name == "inner"
        outcome, reason = executor.consume_signal("reset", [])
        assert reason is None
        assert outcome.to_state == "other"

    def test_leaf_handler_shadows_ancestor(self):
        m = self.machine()
        m.state("leafdest", parent=m.find_state("outer"))
        m.on_signal("inner", "leafdest", "reset")
        executor = started(m)
        executor.consume_signal("go", [])
        outcome, _ = executor.consume_signal("reset", [])
        assert outcome.to_state == "leafdest"

    def test_internal_transition_skips_exit_and_entry(self):
        m = StateMachine("M")
        m.variable("entries", 0)
        m.variable("hits", 0)
        m.state("idle", initial=True, entry="entries = entries + 1;")
        m.on_signal("idle", "idle", "poke", internal=True, effect="hits = hits + 1;")
        m.on_signal("idle", "idle", "bounce")  # external self-loop re-enters
        executor = started(m)
        assert executor.variables["entries"] == 1
        executor.consume_signal("poke", [])
        assert executor.variables == {"entries": 1, "hits": 1}
        executor.consume_signal("bounce", [])
        assert executor.variables["entries"] == 2
