"""Unit tests of the fault plan: PRNG, rates, windows, accounting."""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    BUS_CORRUPT,
    BUS_DROP,
    FaultPlan,
    FaultRng,
    FaultStats,
    PEWindow,
    PE_CRASH,
    PE_STALL,
    SIGNAL_DROP,
    SIGNAL_DUP,
)


class TestFaultRng:
    def test_same_seed_same_sequence(self):
        a = FaultRng(42)
        b = FaultRng(42)
        seq_a = [a.uniform("site", t * 1000) for t in range(50)]
        seq_b = [b.uniform("site", t * 1000) for t in range(50)]
        assert seq_a == seq_b

    def test_different_seeds_diverge(self):
        a = FaultRng(1)
        b = FaultRng(2)
        assert [a.uniform("s", 0) for _ in range(8)] != [
            b.uniform("s", 0) for _ in range(8)
        ]

    def test_different_sites_diverge(self):
        rng = FaultRng(7)
        assert rng.uniform("alpha", 0) != rng.uniform("beta", 0)

    def test_uniform_range(self):
        rng = FaultRng(3)
        draws = [rng.uniform("u", t) for t in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_randint_range_and_validation(self):
        rng = FaultRng(5)
        draws = [rng.randint("r", t, 16) for t in range(200)]
        assert all(0 <= d < 16 for d in draws)
        with pytest.raises(SimulationError):
            rng.randint("r", 0, 0)

    def test_counter_advances_per_draw(self):
        # repeated draws at the same (site, time) must not repeat
        rng = FaultRng(9)
        draws = {rng.uniform("same", 1234) for _ in range(32)}
        assert len(draws) == 32


class TestPEWindow:
    def test_covers_half_open(self):
        window = PEWindow("cpu", 100, 200)
        assert not window.covers(99)
        assert window.covers(100)
        assert window.covers(199)
        assert not window.covers(200)

    def test_validation(self):
        with pytest.raises(SimulationError):
            PEWindow("cpu", 100, 100)
        with pytest.raises(SimulationError):
            PEWindow("cpu", 0, 10, kind="meltdown")
        with pytest.raises(SimulationError):
            PEWindow("cpu", 0, 10, kind=PE_STALL, stall_factor=0)


class TestFaultPlanEnablement:
    def test_all_zero_plan_disabled(self):
        assert not FaultPlan(seed=1).enabled

    def test_any_rate_enables(self):
        assert FaultPlan(seed=1, bus_corrupt_rate=0.1).enabled
        assert FaultPlan(seed=1, bus_drop_rate=0.1).enabled
        assert FaultPlan(seed=1, signal_drop_rate=0.1).enabled
        assert FaultPlan(seed=1, signal_dup_rate=0.1).enabled

    def test_windows_enable(self):
        plan = FaultPlan(seed=1, pe_windows=[PEWindow("cpu", 0, 100)])
        assert plan.enabled

    def test_rate_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(seed=1, bus_corrupt_rate=1.5)
        with pytest.raises(SimulationError):
            FaultPlan(seed=1, bus_drop_rate=-0.1)


class TestBusFaults:
    def test_rate_one_always_corrupts(self):
        plan = FaultPlan(seed=1, bus_corrupt_rate=1.0)
        kind, args = plan.apply_bus_fault("pdu", (5, 10), "a", "b", 1000)
        assert kind == BUS_CORRUPT
        assert args != (5, 10)
        # exactly one bit of the identity flipped, payload untouched
        assert bin(args[0] ^ 5).count("1") == 1
        assert args[1] == 10

    def test_rate_zero_never_injects(self):
        plan = FaultPlan(seed=1, bus_corrupt_rate=0.0, bus_drop_rate=0.0,
                         signal_dup_rate=0.5)
        for t in range(100):
            kind, args = plan.apply_bus_fault("pdu", (t,), "a", "b", t)
            assert kind is None
            assert args == (t,)

    def test_drop_precedes_corrupt(self):
        plan = FaultPlan(seed=1, bus_corrupt_rate=1.0, bus_drop_rate=1.0)
        kind, _ = plan.apply_bus_fault("pdu", (1,), "a", "b", 0)
        assert kind == BUS_DROP

    def test_signal_restriction(self):
        plan = FaultPlan(
            seed=1, bus_corrupt_rate=1.0, corruptible_signals={"pdu"}
        )
        kind, _ = plan.apply_bus_fault("other", (1,), "a", "b", 0)
        assert kind is None
        kind, _ = plan.apply_bus_fault("pdu", (1,), "a", "b", 0)
        assert kind == BUS_CORRUPT

    def test_deterministic_across_instances(self):
        def outcomes(seed):
            plan = FaultPlan(seed=seed, bus_corrupt_rate=0.3, bus_drop_rate=0.1)
            return [
                plan.apply_bus_fault("pdu", (t,), "a", "b", t * 500)
                for t in range(200)
            ]

        assert outcomes(77) == outcomes(77)
        assert outcomes(77) != outcomes(78)


class TestDispatchFaults:
    def test_drop_and_dup(self):
        plan = FaultPlan(seed=1, signal_drop_rate=1.0)
        assert plan.apply_dispatch_fault("s", (1,), "p", "q", 0) == SIGNAL_DROP
        plan = FaultPlan(seed=1, signal_dup_rate=1.0)
        assert plan.apply_dispatch_fault("s", (1,), "p", "q", 0) == SIGNAL_DUP

    def test_none_when_disabled(self):
        plan = FaultPlan(seed=1, bus_corrupt_rate=0.5)
        assert plan.apply_dispatch_fault("s", (1,), "p", "q", 0) is None


class TestPEWindows:
    def test_crash_window(self):
        plan = FaultPlan(
            seed=1, pe_windows=[PEWindow("cpu1", 100, 200, kind=PE_CRASH)]
        )
        assert plan.pe_crashed("cpu1", 150)
        assert not plan.pe_crashed("cpu1", 250)
        assert not plan.pe_crashed("cpu2", 150)
        assert plan.stats.count(PE_CRASH) == 1

    def test_stall_window_scales_duration(self):
        plan = FaultPlan(
            seed=1,
            pe_windows=[PEWindow("cpu1", 0, 1000, kind=PE_STALL, stall_factor=3)],
        )
        assert plan.stall_duration_ps("cpu1", 500, 100) == 300
        assert plan.stall_duration_ps("cpu1", 2000, 100) == 100
        assert plan.stall_duration_ps("cpu2", 500, 100) == 100


class TestAccounting:
    def test_protected_loss_then_recovery(self):
        plan = FaultPlan(seed=1, bus_corrupt_rate=1.0, protected_signals={"pdu"})
        plan.apply_bus_fault("pdu", (9,), "a", "b", 0)
        assert plan.stats.detected == 1
        assert plan.pending_losses == 1
        plan.note_delivery("pdu", (9,))
        assert plan.stats.recovered == 1
        assert plan.pending_losses == 0
        assert plan.stats.residual == 0

    def test_repeated_loss_counts_multiplicity(self):
        # original AND retransmission lost: one clean delivery repairs both
        plan = FaultPlan(seed=1, bus_drop_rate=1.0, protected_signals={"pdu"})
        plan.apply_bus_fault("pdu", (9,), "a", "b", 0)
        plan.apply_bus_fault("pdu", (9,), "a", "b", 1000)
        assert plan.stats.detected == 2
        assert plan.pending_losses == 2
        plan.note_delivery("pdu", (9,))
        assert plan.stats.recovered == 2
        assert plan.stats.residual == 0

    def test_unprotected_loss_not_detected(self):
        plan = FaultPlan(seed=1, bus_drop_rate=1.0)
        plan.apply_bus_fault("pdu", (9,), "a", "b", 0)
        assert plan.stats.injected == 1
        assert plan.stats.detected == 0

    def test_unrelated_delivery_is_not_recovery(self):
        plan = FaultPlan(seed=1, bus_drop_rate=1.0, protected_signals={"pdu"})
        plan.apply_bus_fault("pdu", (9,), "a", "b", 0)
        plan.note_delivery("pdu", (10,))
        plan.note_delivery("other", (9,))
        assert plan.stats.recovered == 0
        assert plan.pending_losses == 1

    def test_stats_meta_roundtrip(self):
        stats = FaultStats()
        stats.note_injected(BUS_CORRUPT)
        stats.note_injected(BUS_CORRUPT)
        stats.note_injected(BUS_DROP)
        stats.detected = 3
        stats.recovered = 2
        meta = stats.as_meta(seed=11)
        assert meta["fault_seed"] == "11"
        assert meta["fault_injected"] == "3"
        assert meta["fault_detected"] == "3"
        assert meta["fault_recovered"] == "2"
        assert meta["fault_residual"] == "1"
        assert meta["fault_kinds"] == "bus-corrupt:2,bus-drop:1"
