"""Integration tests: fault campaigns on the ARQ-enabled TUTMAC system.

These are the acceptance criteria of the fault-injection subsystem: faults
are actually injected, every one is detected through the CRC path, the ARQ
machinery repairs (nearly) all of them, the accounting identity holds, and
everything is bit-reproducible from the seed.
"""

import pytest

from repro.cases.tutmac import TutmacParameters, build_tutmac
from repro.cases.tutwlan import build_tutwlan_system
from repro.faults import FaultPlan, build_campaign_plan, run_fault_campaign
from repro.simulation.system import SystemSimulation

CAMPAIGN_US = 100_000


@pytest.fixture(scope="module")
def campaign():
    return run_fault_campaign(seed=7, fault_rate=0.08, duration_us=CAMPAIGN_US)


class TestCampaign:
    def test_faults_injected(self, campaign):
        assert campaign.stats.injected > 0

    def test_all_injections_detected(self, campaign):
        # every injection targets the CRC-protected pdu_tx frame
        assert campaign.stats.detected == campaign.stats.injected

    def test_recovery_at_least_90_percent(self, campaign):
        assert campaign.recovery_ratio >= 0.90

    def test_accounting_identity(self, campaign):
        stats = campaign.stats
        assert stats.injected == stats.detected == stats.recovered + stats.residual

    def test_fault_records_in_log(self, campaign):
        log = campaign.simulation.log
        assert len(log.fault_records) == campaign.stats.injected
        by_kind = log.faults_by_kind()
        assert by_kind == dict(campaign.stats.injected_by_kind)

    def test_meta_carries_ledger(self, campaign):
        meta = campaign.simulation.log.meta
        assert meta["fault_seed"] == "7"
        assert int(meta["fault_injected"]) == campaign.stats.injected

    def test_profiling_fault_summary(self, campaign):
        summary = campaign.profiling.fault_stats
        assert summary is not None
        assert summary.injected == campaign.stats.injected
        assert summary.recovered == campaign.stats.recovered
        assert summary.by_kind == dict(campaign.stats.injected_by_kind)

    def test_corrupt_frames_marked_in_log(self, campaign):
        corrupt = [r for r in campaign.simulation.log.signal_records if r.corrupt]
        by_kind = campaign.simulation.log.faults_by_kind()
        assert len(corrupt) == by_kind.get("bus-corrupt", 0)
        assert all(r.signal == "pdu_tx" for r in corrupt)


class TestDeterminism:
    def test_same_seed_byte_identical_logs(self, tmp_path):
        """Kernel determinism regression: two same-seed fault runs must
        serialise to byte-identical .tutlog files."""
        paths = []
        for run in ("a", "b"):
            result = run_fault_campaign(
                seed=13, fault_rate=0.06, duration_us=50_000
            )
            path = tmp_path / f"run_{run}.tutlog"
            result.simulation.writer.write(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_different_seeds_differ(self, tmp_path):
        logs = []
        for seed in (1, 2):
            result = run_fault_campaign(
                seed=seed, fault_rate=0.06, duration_us=50_000
            )
            path = tmp_path / f"seed_{seed}.tutlog"
            result.simulation.writer.write(str(path))
            logs.append(path.read_bytes())
        assert logs[0] != logs[1]


class TestZeroCost:
    def test_zero_rate_plan_is_disabled(self):
        assert not build_campaign_plan(seed=1, fault_rate=0.0, drop_rate=0.0).enabled

    def test_zero_rate_run_identical_to_no_plan(self, tmp_path):
        """fault_rate=0 must leave every benchmark number unchanged: the
        log is byte-identical to a run with no FaultPlan at all."""
        logs = []
        for plan in (None, FaultPlan(seed=5)):
            application, platform, mapping = build_tutwlan_system()
            sim = SystemSimulation(application, platform, mapping, faults=plan)
            result = sim.run(30_000)
            path = tmp_path / f"plan_{plan is not None}.tutlog"
            result.writer.write(str(path))
            logs.append(path.read_bytes())
        assert logs[0] == logs[1]

    def test_no_fault_meta_without_plan(self):
        application, platform, mapping = build_tutwlan_system()
        result = SystemSimulation(application, platform, mapping).run(10_000)
        assert "fault_injected" not in result.writer.meta

    def test_default_model_has_no_arq_signals(self):
        app = build_tutmac()
        assert "pdu_ack" not in app.signals
        arq_app = build_tutmac(params=TutmacParameters(arq_enabled=True))
        assert "pdu_ack" in arq_app.signals
