"""Diagram renderings of Figures 3-8 (DOT and text)."""

from repro.diagrams import (
    DotGraph,
    class_diagram_dot,
    class_diagram_text,
    composite_structure_dot,
    composite_structure_text,
    grouping_diagram_text,
    mapping_diagram_dot,
    mapping_diagram_text,
    platform_diagram_dot,
    platform_diagram_text,
    profile_hierarchy_dot,
)


class TestDotBuilder:
    def test_simple_graph(self):
        graph = DotGraph("G")
        graph.node("a", "Label A")
        graph.node("b")
        graph.edge("a", "b", label="link")
        text = graph.render()
        assert text.startswith("digraph G {")
        assert '"Label A"' in text
        assert '"link"' in text
        assert text.strip().endswith("}")

    def test_quoting(self):
        graph = DotGraph("G")
        graph.node("x", 'say "hi"\nline2')
        text = graph.render()
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_subgraph_cluster(self):
        graph = DotGraph("G")
        cluster = graph.subgraph("inner", label="Inner")
        cluster.node("a")
        text = graph.render()
        assert "subgraph cluster_inner" in text

    def test_undirected(self):
        graph = DotGraph("G", directed=False)
        graph.edge("a", "b")
        text = graph.render()
        assert "graph G {" in text
        assert "--" in text

    def test_node_ids_stable(self):
        graph = DotGraph("G")
        first = graph.node("same")
        graph.edge("same", "same")
        assert text_contains_once(graph.render(), f"{first} -> {first}")


def text_contains_once(text, needle):
    return text.count(needle) == 1


class TestFigure3:
    def test_hierarchy_dot(self):
        text = profile_hierarchy_dot()
        for stereotype in ("Application", "ProcessGroup", "PlatformComponentInstance"):
            assert stereotype in text
        assert "instantiate" in text
        assert "mapping" in text


class TestFigure4:
    def test_class_diagram_contains_stereotyped_classes(self, tutmac_app):
        text = class_diagram_dot(tutmac_app)
        assert "«Application»" in text
        assert "«ApplicationComponent»" in text
        assert "Tutmac_Protocol" in text
        assert "RadioChannelAccess" in text

    def test_text_rendering_marks_kinds(self, tutmac_app):
        text = class_diagram_text(tutmac_app)
        assert "ui : UserInterface (structural)" in text
        assert "rca : «ApplicationComponent» RadioChannelAccess (functional)" in text
        assert "msduRec : MsduReceiver" in text


class TestFigure5:
    def test_composite_dot_has_parts_and_connectors(self, tutmac_app):
        text = composite_structure_dot(tutmac_app)
        for part in ("ui", "dp", "mng", "rmng", "rca"):
            assert part in text

    def test_composite_text_lists_boundary_ports(self, tutmac_app):
        text = composite_structure_text(tutmac_app)
        for port in ("pUser", "pPhy", "pMngUser"):
            assert f"boundary port {port}" in text
        assert "mng.RChPort -- rca.MngPort" in text


class TestFigure6:
    def test_grouping_text(self, tutmac_app):
        text = grouping_diagram_text(tutmac_app)
        assert "«ProcessGroup» group1" in text
        assert "Tutmac_Protocol::rca" in text
        assert "UserInterface::msduRec" in text
        assert "DataProcessing::frag" in text


class TestFigure7:
    def test_platform_dot(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        text = platform_diagram_dot(platform)
        for name in ("processor1", "processor2", "processor3", "accelerator1",
                     "hibisegment1", "hibisegment2", "bridge"):
            assert name in text

    def test_platform_text_lists_wrappers(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        text = platform_diagram_text(platform)
        assert "«PlatformComponentInstance» processor1 : NiosCPU" in text
        assert "«HIBIWrapper» processor1 @ hibisegment1" in text
        assert "bridge (bridge segment)" in text


class TestFigure8:
    def test_mapping_text(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        text = mapping_diagram_text(mapping)
        assert "«PlatformMapping» group1 --> processor1" in text
        assert "«PlatformMapping» group3 --> processor1" in text
        assert "«PlatformMapping» group2 --> processor2" in text
        assert "«PlatformMapping» group4 --> accelerator1" in text

    def test_mapping_dot(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        text = mapping_diagram_dot(mapping)
        assert "«PlatformMapping»" in text
        assert "folder" in text  # group nodes
