"""Timeline (text Gantt) rendering."""

import pytest

from repro.diagrams import timeline_text, utilization_summary
from repro.simulation import LogWriter, parse_log


def make_log():
    writer = LogWriter()
    spans = [
        ("cpu1", "alpha", 0, 1000),
        ("cpu1", "beta", 1000, 1000),
        ("cpu2", "alpha", 500, 2000),
        ("-", "env1", 0, 0),
    ]
    for pe, process, time_ps, duration_ps in spans:
        writer.exec_step(
            time_ps=time_ps, process=process, pe=pe, cycles=duration_ps,
            duration_ps=duration_ps, from_state="s", to_state="s", trigger="t",
        )
    writer.finish(4000)
    return parse_log(writer.render())


class TestTimeline:
    def test_tracks_per_pe(self):
        text = timeline_text(make_log(), width=40)
        lines = text.splitlines()
        assert any(line.strip().startswith("cpu1 |") for line in lines)
        assert any(line.strip().startswith("cpu2 |") for line in lines)
        # the environment pseudo-PE gets no track
        assert not any("env1 |" in line for line in lines)

    def test_symbols_distinct_and_in_legend(self):
        text = timeline_text(make_log(), width=40)
        legend_line = [l for l in text.splitlines() if l.startswith("legend")][0]
        assert "alpha" in legend_line
        assert "beta" in legend_line
        # two processes sharing an initial get distinct symbols
        marks = [
            part.split("=")[0].strip() for part in legend_line[8:].split(",")
            if "=" in part and "idle" not in part and "multiple" not in part
        ]
        assert len(set(marks)) == len(marks)

    def test_busy_columns_marked(self):
        text = timeline_text(make_log(), width=40)
        cpu1_line = [l for l in text.splitlines() if "cpu1 |" in l][0]
        track = cpu1_line.split("|")[1]
        assert track.count(".") < len(track)  # some busy columns
        # after 2000 ps cpu1 is idle: second half mostly dots
        assert set(track[len(track) // 2:]) == {"."}

    def test_window_selection(self):
        text = timeline_text(make_log(), width=40, start_ps=2000, end_ps=4000)
        cpu1_line = [l for l in text.splitlines() if "cpu1 |" in l]
        # cpu1 has no execution after 2000 ps -> no track or an idle track
        if cpu1_line:
            assert set(cpu1_line[0].split("|")[1]) == {"."}

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            timeline_text(make_log(), start_ps=5, end_ps=5)


class TestUtilizationSummary:
    def test_one_line_per_pe(self):
        text = utilization_summary(make_log())
        assert "cpu1" in text and "cpu2" in text
        assert "env1" not in text

    def test_shares_computed(self):
        text = utilization_summary(make_log())
        cpu1_line = [l for l in text.splitlines() if "cpu1" in l][0]
        assert "50.0%" in cpu1_line  # 2000 of 4000 ps


class TestCli:
    def test_tables_command(self, capsys):
        from repro.__main__ import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out

    def test_tutmac_command(self, capsys):
        from repro.__main__ import main

        assert main(["tutmac", "--duration-us", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Process group execution times" in out

    def test_validate_command(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.cases.tutmac import build_tutmac
        from repro.uml import write_model

        path = tmp_path / "m.xmi"
        write_model(build_tutmac().model, path)
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_flow_command(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["flow", "--workdir", str(tmp_path), "--duration-us", "20000"]) == 0
        out = capsys.readouterr().out
        assert "artefacts:" in out
        import os

        assert os.path.exists(tmp_path / "model.xmi")

    def test_timeline_command(self, capsys):
        from repro.__main__ import main

        assert main(["timeline", "--duration-us", "3000", "--window-us", "2000",
                     "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "processor1" in out
