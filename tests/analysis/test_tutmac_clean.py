"""The shipped TUTMAC model must stay lint-clean (the CI gate)."""

from dataclasses import replace

from repro.analysis import run_lint
from repro.cases.tutmac import build_tutmac
from repro.cases.tutmac.params import TutmacParameters
from repro.cases.tutwlan import build_tutwlan_system


class TestShippedModelClean:
    def test_application_alone_is_clean(self):
        report = run_lint(build_tutmac())
        assert report.findings == []

    def test_full_system_only_suppressed_s004(self, tutwlan_system):
        report = run_lint(*tutwlan_system)
        assert report.active == []
        # The CRC-accelerator request/reply crossing the HIBI bridge is a
        # real S004 hit; the model suppresses it with a justification
        # because the clients block on the reply (one message in flight).
        assert sorted(f.rule for f in report.suppressed) == ["S004", "S004"]
        assert report.exit_code("warning") == 0

    def test_arq_variant_is_clean(self):
        params = replace(TutmacParameters(), arq_enabled=True)
        system = build_tutwlan_system(params=params)
        report = run_lint(*system)
        assert report.active == []
        assert report.exit_code("warning") == 0
