"""Cross-process signal-flow rules S001-S004 and the static matrix."""

import pytest

from repro.analysis import run_lint
from repro.analysis.sigflow import group_flow_matrix, signal_flow_matrix
from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.uml import Port


def sending_component(app, name, port, effect):
    component = app.component(name)
    component.add_port(port)
    machine = app.behavior(component)
    machine.state("s", initial=True)
    machine.state("t")
    machine.on_signal("s", "t", "kick", effect=effect)
    machine.on_signal("t", "s", "kick")
    return component


class TestMatrix:
    def test_pingpong_matrix(self, pingpong):
        matrix = signal_flow_matrix(pingpong)
        assert matrix == {
            ("ping1", "pong1"): {"tick": 1},
            ("pong1", "ping1"): {"tock": 1},
        }

    def test_group_matrix_aggregates(self, pingpong):
        matrix = group_flow_matrix(pingpong)
        assert matrix == {
            ("g1", "g2"): {"tick"},
            ("g2", "g1"): {"tock"},
        }

    def test_send_count_per_edge(self):
        app = ApplicationModel("A")
        app.signal("kick")
        app.signal("m")
        sender = sending_component(
            app, "S", Port("out", required=["m"], provided=["kick"]),
            "send m() via out; send m() via out;",
        )
        receiver = app.component("R")
        receiver.add_port(Port("inp", provided=["m"], required=["kick"]))
        machine = app.behavior(receiver)
        machine.state("s", initial=True)
        machine.on_signal("s", "s", "m", internal=True, effect="send kick() via inp;")
        app.process(app.top, "s1", sender)
        app.process(app.top, "r1", receiver)
        app.connect(app.top, ("s1", "out"), ("r1", "inp"))
        assert signal_flow_matrix(app)[("s1", "r1")] == {"m": 2}


class TestFlowRules:
    def test_pingpong_is_clean(self, pingpong):
        report = run_lint(pingpong)
        assert report.active == []

    def test_unrouted_send(self):
        app = ApplicationModel("A")
        app.signal("kick")
        app.signal("m")
        sender = sending_component(
            app, "S", Port("out", required=["m", "kick"]), "send m() via out;"
        )
        app.process(app.top, "s1", sender)
        findings = run_lint(app).by_rule("S002")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'m'" in findings[0].message

    def test_lost_signal(self):
        app = ApplicationModel("A")
        app.signal("kick")
        app.signal("m")
        sender = sending_component(
            app, "S", Port("out", required=["m"], provided=["kick"]),
            "send m() via out;",
        )
        receiver = app.component("R")
        receiver.add_port(Port("inp", provided=["m"], required=["kick"]))
        machine = app.behavior(receiver)
        machine.state("s", initial=True)  # no transition triggers on 'm'
        app.process(app.top, "s1", sender)
        app.process(app.top, "r1", receiver)
        app.connect(app.top, ("s1", "out"), ("r1", "inp"))
        findings = run_lint(app).by_rule("S001")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'r1'" in findings[0].message
        assert "never triggers" in findings[0].message

    def test_dead_receiver(self):
        app = ApplicationModel("A")
        app.signal("m")
        receiver = app.component("R")
        receiver.add_port(Port("inp", provided=["m"]))
        machine = app.behavior(receiver)
        machine.state("s", initial=True)
        machine.on_signal("s", "s", "m", internal=True)
        app.process(app.top, "r1", receiver)
        findings = run_lint(app).by_rule("S003")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "'m'" in findings[0].message

    def test_environment_absorbs_deliveries(self):
        # Sends that route to an environment (testbench) process are fine
        # even though the testbench model declares no trigger for them.
        app = ApplicationModel("A")
        app.signal("kick")
        app.signal("m")
        sender = sending_component(
            app, "S", Port("out", required=["m"], provided=["kick"]),
            "send m() via out;",
        )
        env = app.component("Env")
        env.add_port(Port("io", provided=["m"], required=["kick"]))
        env_machine = app.behavior(env)
        env_machine.state("s", initial=True)
        app.process(app.top, "s1", sender)
        app.top.add_port(Port("pEnv"))
        app.connect(app.top, (None, "pEnv"), ("s1", "out"))
        app.environment_process("env1", env)
        app.bind_boundary("pEnv", "env1", "io")
        assert run_lint(app).by_rule("S001") == []


def bridged_platform():
    """Two CPUs on different HIBI segments joined by a bridge."""
    platform = PlatformModel("Bridged", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.instantiate("cpu2", "NiosCPU")
    platform.segment("segA", "HIBISegment")
    platform.segment("segB", "HIBISegment")
    platform.segment("bridge", "HIBIBridgeSegment")
    platform.attach("cpu1", "segA", address=0x100)
    platform.attach("cpu2", "segB", address=0x200)
    platform.attach("segA", "bridge", address=0x300)
    platform.attach("segB", "bridge", address=0x400)
    return platform


class TestCrossSegmentCycle:
    def test_request_reply_across_segments_warns(self, pingpong):
        platform = bridged_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        findings = run_lint(pingpong, platform, mapping).by_rule("S004")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "deadlock" in findings[0].message
        assert "'g1'" in findings[0].message and "'g2'" in findings[0].message

    def test_same_segment_is_clean(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        assert run_lint(pingpong, two_cpu_platform, mapping).by_rule("S004") == []

    def test_same_pe_is_clean(self, pingpong):
        platform = bridged_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
        assert run_lint(pingpong, platform, mapping).by_rule("S004") == []

    def test_one_way_traffic_is_clean(self, pingpong):
        # Remove the reply direction: pong still receives but never sends.
        machine = pingpong.processes["pong1"].component.classifier_behavior
        for transition in list(machine.transitions):
            transition.effect = []
        platform = bridged_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        assert run_lint(pingpong, platform, mapping).by_rule("S004") == []
