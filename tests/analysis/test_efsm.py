"""EFSM structure rules E001-E006."""

from repro.analysis import lint_machine
from repro.uml.statemachine import StateMachine


def machine():
    m = StateMachine("M")
    m.state("idle", initial=True)
    return m


def rules_of(report):
    return sorted(f.rule for f in report.active)


class TestUnreachable:
    def test_unreachable_state_is_error(self):
        m = machine()
        m.state("busy")
        m.state("orphan")
        m.on_signal("idle", "busy", "go")
        m.on_signal("busy", "idle", "stop")
        report = lint_machine(m)
        findings = report.by_rule("E001")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'orphan'" in findings[0].message

    def test_clean_machine_has_no_findings(self):
        m = machine()
        m.state("busy")
        m.on_signal("idle", "busy", "go")
        m.on_signal("busy", "idle", "stop")
        assert lint_machine(m).findings == []

    def test_initial_substate_chain_is_reachable(self):
        m = machine()
        composite = m.state("work")
        m.state("inner", parent=composite, initial=True)
        m.on_signal("idle", "work", "go")
        m.on_signal("work", "idle", "stop")
        assert lint_machine(m).by_rule("E001") == []


class TestDeadTransitions:
    def test_constant_false_guard(self):
        m = machine()
        m.state("busy")
        m.on_signal("idle", "busy", "go", guard="1 > 2")
        m.on_signal("idle", "busy", "go")
        m.on_signal("busy", "idle", "stop")
        report = lint_machine(m)
        assert [f.rule for f in report.by_rule("E002")] == ["E002"]

    def test_shadowed_by_unguarded_same_trigger(self):
        m = machine()
        m.state("busy")
        m.on_signal("idle", "busy", "go")  # unguarded catch-all first
        m.on_signal("idle", "idle", "go", guard="x > 0")  # never reached
        m.variable("x")
        m.on_signal("busy", "idle", "stop")
        findings = lint_machine(m).by_rule("E003")
        assert len(findings) == 1
        assert "shadowed" in findings[0].message

    def test_priority_order_decides_shadowing(self):
        m = machine()
        m.variable("x")
        m.state("busy")
        # Declared later but priority 0 beats priority 1: the guarded one
        # runs first, so nothing is shadowed.
        m.on_signal("idle", "busy", "go", priority=1)
        m.on_signal("idle", "idle", "go", guard="x > 0", priority=0)
        m.on_signal("busy", "idle", "stop")
        assert lint_machine(m).by_rule("E003") == []

    def test_different_triggers_do_not_shadow(self):
        m = machine()
        m.state("busy")
        m.on_signal("idle", "busy", "go")
        m.on_signal("idle", "busy", "other")
        m.on_signal("busy", "idle", "stop")
        assert lint_machine(m).by_rule("E003") == []

    def test_guarded_transition_does_not_shadow(self):
        m = machine()
        m.variable("x")
        m.state("busy")
        m.on_signal("idle", "busy", "go", guard="x > 0")
        m.on_signal("idle", "idle", "go")  # reachable when guard is false
        m.on_signal("busy", "idle", "stop")
        assert lint_machine(m).by_rule("E003") == []


class TestStuckStates:
    def test_leaf_without_outgoing_is_stuck(self):
        m = machine()
        m.state("trap")
        m.on_signal("idle", "trap", "go")
        findings = lint_machine(m).by_rule("E004")
        assert len(findings) == 1
        assert "'trap'" in findings[0].message

    def test_final_state_is_not_stuck(self):
        m = machine()
        final = m.final_state()
        m.on_signal("idle", final, "done")
        assert lint_machine(m).by_rule("E004") == []

    def test_ancestor_transition_unsticks_substate(self):
        m = machine()
        composite = m.state("work")
        m.state("inner", parent=composite, initial=True)
        m.on_signal("idle", "work", "go")
        m.on_signal("work", "idle", "stop")  # leaves the composite
        assert lint_machine(m).by_rule("E004") == []

    def test_unreachable_state_not_doubly_reported(self):
        m = machine()
        m.state("orphan")  # unreachable AND has no exits
        m.transition("idle", "idle", guard="false")
        report = lint_machine(m)
        assert len(report.by_rule("E001")) == 1
        assert report.by_rule("E004") == []


class TestTimers:
    def test_armed_but_unhandled_timer(self):
        m = machine()
        m.state("busy", entry="set_timer(t_guard, 10);")
        m.on_signal("idle", "busy", "go")
        m.on_signal("busy", "idle", "stop")
        findings = lint_machine(m).by_rule("E005")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'t_guard'" in findings[0].message

    def test_handled_but_never_armed_timer(self):
        m = machine()
        m.state("busy")
        m.on_signal("idle", "busy", "go")
        m.on_timer("busy", "idle", "t_ghost")
        findings = lint_machine(m).by_rule("E006")
        assert len(findings) == 1
        assert "'t_ghost'" in findings[0].message

    def test_paired_timer_is_clean(self):
        m = machine()
        m.state("busy", entry="set_timer(t, 10);")
        m.on_signal("idle", "busy", "go")
        m.on_timer("busy", "idle", "t")
        report = lint_machine(m)
        assert report.by_rule("E005") == []
        assert report.by_rule("E006") == []
