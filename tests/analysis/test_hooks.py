"""The lint hooks in the design flow and the C code generator."""

import pytest

from repro.codegen.cgen import CGenerator, check_lintable
from repro.codegen.project import generate_project
from repro.errors import AnalysisError, CodegenError
from repro.flow import run_design_flow
from repro.mapping import MappingModel

from tests.conftest import build_pingpong, build_two_cpu_platform


def pingpong_system():
    app = build_pingpong()
    platform = build_two_cpu_platform()
    mapping = MappingModel(app, platform)
    mapping.map("g1", "cpu1")
    mapping.map("g2", "cpu2")
    return app, platform, mapping


def break_ping(app):
    """Seed an E001 unreachable-state error into the Ping behaviour."""
    machine = app.processes["ping1"].component.classifier_behavior
    machine.state("orphan")
    return machine


class TestFlowLintStep:
    def test_clean_run_records_lint_report(self, tmp_path):
        app, platform, mapping = pingpong_system()
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000, lint=True
        )
        assert result.succeeded
        assert "lint" in result.steps_run
        assert result.lint_report is not None and result.lint_report.ok

    def test_lint_off_by_default(self, tmp_path):
        app, platform, mapping = pingpong_system()
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000
        )
        assert result.succeeded
        assert "lint" not in result.steps_run
        assert result.lint_report is None

    def test_lint_errors_abort_flow(self, tmp_path):
        app, platform, mapping = pingpong_system()
        break_ping(app)
        with pytest.raises(AnalysisError) as excinfo:
            run_design_flow(
                app, platform, mapping, str(tmp_path), duration_us=1_000,
                lint=True,
            )
        assert "E001" in str(excinfo.value)
        assert [f.rule for f in excinfo.value.findings] == ["E001"]

    def test_continue_on_error_skips_codegen(self, tmp_path):
        app, platform, mapping = pingpong_system()
        break_ping(app)
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000,
            lint=True, continue_on_error=True,
        )
        assert not result.succeeded
        failure = result.failure_for("lint")
        assert failure is not None and "E001" in failure.error
        skipped = result.failure_for("generate-code")
        assert skipped is not None and skipped.skipped
        assert "generate-code" not in result.steps_run

    def test_broken_model_without_lint_still_generates(self, tmp_path):
        # The unreachable state is harmless at run time; only the lint
        # gate turns it into a flow failure.
        app, platform, mapping = pingpong_system()
        break_ping(app)
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000
        )
        assert result.succeeded


class TestCodegenPrecondition:
    def test_clean_machine_passes(self):
        app = build_pingpong()
        machine = app.processes["ping1"].component.classifier_behavior
        check_lintable(machine, app.signals)  # does not raise

    def test_broken_machine_raises(self):
        app = build_pingpong()
        machine = break_ping(app)
        with pytest.raises(CodegenError) as excinfo:
            check_lintable(machine, app.signals)
        assert "static analysis" in str(excinfo.value)
        assert "E001" in str(excinfo.value)

    def test_generator_lint_flag(self):
        app = build_pingpong()
        break_ping(app)
        component = app.processes["ping1"].component
        signal_ids = {name: i for i, name in enumerate(sorted(app.signals))}
        CGenerator(component, signal_ids)  # lint off: no raise
        with pytest.raises(CodegenError):
            CGenerator(
                component, signal_ids, lint=True, signal_decls=app.signals
            )

    def test_generate_project_lint_flag(self, tmp_path):
        app = build_pingpong()
        break_ping(app)
        generate_project(app, str(tmp_path))  # lint off: no raise
        with pytest.raises(CodegenError):
            generate_project(app, str(tmp_path), lint=True)
