"""Platform-aware mapping rules M001-M005 and the static estimator."""

import pytest

from repro.analysis import (
    run_lint,
    static_application_profile,
    static_mapping_estimate,
)
from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.tutprofile import PLATFORM_MAPPING, TUT_PROFILE
from repro.uml.dependency import Dependency


def bridged_platform():
    """Two CPUs on different HIBI segments joined by a bridge."""
    platform = PlatformModel("Bridged", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.instantiate("cpu2", "NiosCPU")
    platform.segment("segA", "HIBISegment")
    platform.segment("segB", "HIBISegment")
    platform.segment("bridge", "HIBIBridgeSegment")
    platform.attach("cpu1", "segA", address=0x100)
    platform.attach("cpu2", "segB", address=0x200)
    platform.attach("segA", "bridge", address=0x300)
    platform.attach("segB", "bridge", address=0x400)
    return platform


def single_cpu_platform():
    platform = PlatformModel("OneCpu", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.segment("seg1", "HIBISegment")
    platform.attach("cpu1", "seg1", address=0x100)
    return platform


def tiny_app(process_type="general"):
    """One process in one group, no signal traffic."""
    app = ApplicationModel("Tiny")
    component = app.component("C")
    machine = app.behavior(component)
    machine.state("idle", initial=True, entry="set_timer(t, 10);")
    machine.on_timer("idle", "idle", "t")
    app.process(app.top, "p1", component)
    app.group("g", process_type=process_type)
    app.assign("p1", "g")
    return app


class TestStaticProfile:
    def test_pingpong_profile(self, pingpong):
        profile = static_application_profile(pingpong)
        assert profile.statement_weight["g1"] > 0
        assert profile.statement_weight["g2"] > 0
        assert profile.group_types == {"g1": "general", "g2": "general"}
        assert profile.pair_bytes[("g1", "g2")] > 0
        assert profile.pair_bytes[("g2", "g1")] > 0


class TestStaticEstimate:
    def test_all_on_one_pe_pays_the_load_share(self, pingpong, two_cpu_platform):
        profile = static_application_profile(pingpong)
        estimate = static_mapping_estimate(
            profile, two_cpu_platform, {"g1": "cpu1", "g2": "cpu1"}
        )
        assert estimate.infeasible is None
        assert estimate.cross_bytes == 0
        assert estimate.max_share == 1.0
        assert estimate.cost == pytest.approx(1000.0)

    def test_split_mapping_pays_wire_bytes(self, pingpong, two_cpu_platform):
        profile = static_application_profile(pingpong)
        estimate = static_mapping_estimate(
            profile, two_cpu_platform, {"g1": "cpu1", "g2": "cpu2"}
        )
        assert estimate.infeasible is None
        assert estimate.cross_bytes > 0
        assert estimate.max_share < 1.0
        assert estimate.bridge_bytes == 0

    def test_bridge_crossing_is_counted(self, pingpong):
        profile = static_application_profile(pingpong)
        estimate = static_mapping_estimate(
            profile, bridged_platform(), {"g1": "cpu1", "g2": "cpu2"}
        )
        assert estimate.bridge_bytes > 0

    def test_unmapped_group_is_infeasible(self, pingpong, two_cpu_platform):
        profile = static_application_profile(pingpong)
        estimate = static_mapping_estimate(
            profile, two_cpu_platform, {"g1": "cpu1"}
        )
        assert estimate.cost == float("inf")
        assert "'g2' is not mapped" in estimate.infeasible

    def test_unknown_pe_is_infeasible(self, pingpong, two_cpu_platform):
        profile = static_application_profile(pingpong)
        estimate = static_mapping_estimate(
            profile, two_cpu_platform, {"g1": "cpu1", "g2": "ghost"}
        )
        assert "no PE named 'ghost'" in estimate.infeasible

    def test_incompatible_type_is_infeasible(self):
        app = tiny_app()
        platform = single_cpu_platform()
        platform.instantiate("acc", "CRCAccelerator")
        platform.attach("acc", "seg1", address=0x200)
        profile = static_application_profile(app)
        estimate = static_mapping_estimate(profile, platform, {"g": "acc"})
        assert "cannot run on" in estimate.infeasible


def lint_mapped(app, platform, mapping, rule):
    return run_lint(app, platform, mapping).by_rule(rule)


class TestCompleteness:
    def test_m001_fires_on_unmapped_group(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        findings = lint_mapped(pingpong, two_cpu_platform, mapping, "M001")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'g2'" in findings[0].message

    def test_m001_fires_on_dangling_mapping(self, pingpong, two_cpu_platform):
        pingpong.group("g3")
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        mapping.map("g3", "cpu2")
        findings = lint_mapped(pingpong, two_cpu_platform, mapping, "M001")
        assert len(findings) == 1
        assert "dangles" in findings[0].message

    def test_m001_fires_on_ungrouped_process(self, pingpong, two_cpu_platform):
        pingpong.process(
            pingpong.top, "stray1", pingpong.processes["pong1"].component
        )
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        findings = lint_mapped(pingpong, two_cpu_platform, mapping, "M001")
        assert len(findings) == 1
        assert "'stray1'" in findings[0].message

    def test_complete_mapping_is_clean(self, pingpong_system):
        assert lint_mapped(*pingpong_system, "M001") == []


class TestOvercommit:
    def test_m002_fires_when_one_pe_hoards_the_load(
        self, pingpong, two_cpu_platform
    ):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
        findings = lint_mapped(pingpong, two_cpu_platform, mapping, "M002")
        assert len(findings) == 1
        assert "100%" in findings[0].message
        assert "'cpu1'" in findings[0].message

    def test_split_mapping_is_clean(self, pingpong_system):
        assert lint_mapped(*pingpong_system, "M002") == []

    def test_single_pe_platform_has_no_alternative(self, pingpong):
        # everything on the only PE: nothing could move, so no warning
        platform = single_cpu_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
        assert lint_mapped(pingpong, platform, mapping, "M002") == []


class TestChattySplitAndBridge:
    def test_m003_and_m004_fire_across_the_bridge(self, pingpong):
        platform = bridged_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        report = run_lint(pingpong, platform, mapping)
        (m003,) = report.by_rule("M003")
        assert "'g1'" in m003.message and "'g2'" in m003.message
        assert "disjoint HIBI segments" in m003.message
        (m004,) = report.by_rule("M004")
        assert "bridge" in m004.message

    def test_same_segment_split_is_clean(self, pingpong_system):
        report = run_lint(*pingpong_system)
        assert report.by_rule("M003") == []
        assert report.by_rule("M004") == []

    def test_same_pe_on_bridged_platform_is_clean(self, pingpong):
        platform = bridged_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
        report = run_lint(pingpong, platform, mapping)
        assert report.by_rule("M003") == []
        assert report.by_rule("M004") == []


class TestFixedContradictions:
    def test_m005_fires_on_duplicate_mapping(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        # a second «PlatformMapping» for g1, as a hand-edited model might
        # carry it (MappingModel.map refuses, so build the dependency raw)
        duplicate = Dependency(
            "g1_to_cpu2",
            client=pingpong.groups["g1"],
            supplier=two_cpu_platform.pe("cpu2").part,
        )
        mapping.package.add(duplicate)
        TUT_PROFILE.apply(duplicate, PLATFORM_MAPPING, Fixed=False)
        findings = lint_mapped(pingpong, two_cpu_platform, mapping, "M005")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "2 «PlatformMapping»" in findings[0].message
        assert "cpu1, cpu2" in findings[0].message

    def test_m005_fires_on_fixed_type_contradiction(self):
        app = tiny_app(process_type="hardware")
        platform = single_cpu_platform()
        platform.instantiate("acc", "CRCAccelerator")
        platform.attach("acc", "seg1", address=0x200)
        mapping = MappingModel(app, platform)
        mapping.map("g", "acc", fixed=True)
        # the model is edited after mapping: the group becomes general,
        # which the accelerator cannot execute, and Fixed pins it there
        app.groups["g"].stereotype_application("ProcessGroup").set(
            "ProcessType", "general"
        )
        findings = lint_mapped(app, platform, mapping, "M005")
        assert len(findings) == 1
        assert "cannot" in findings[0].message

    def test_m005_fires_on_fixed_unknown_pe(self):
        app = tiny_app()
        platform = single_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1", fixed=True)
        platform.pe("cpu1").part.name = "ghost"  # stale hand-edited model
        findings = lint_mapped(app, platform, mapping, "M005")
        assert len(findings) == 1
        assert "unknown PE 'ghost'" in findings[0].message

    def test_movable_mapping_is_not_a_contradiction(self):
        app = tiny_app(process_type="hardware")
        platform = single_cpu_platform()
        platform.instantiate("acc", "CRCAccelerator")
        platform.attach("acc", "seg1", address=0x200)
        mapping = MappingModel(app, platform)
        mapping.map("g", "acc", fixed=False)
        app.groups["g"].stereotype_application("ProcessGroup").set(
            "ProcessType", "general"
        )
        # not Fixed: the flow may remap it, so M005 stays quiet
        assert lint_mapped(app, platform, mapping, "M005") == []


class TestSuppression:
    def test_comment_on_group_suppresses_m001(self, pingpong, two_cpu_platform):
        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        pingpong.groups["g2"].add_comment(
            "tutlint: disable=M001 -- mapped in a later design iteration"
        )
        report = run_lint(pingpong, two_cpu_platform, mapping)
        assert report.by_rule("M001")[0].suppressed
        assert report.active == [] or all(
            f.rule != "M001" for f in report.active
        )

    def test_comment_on_group_suppresses_m003(self, pingpong):
        platform = bridged_platform()
        mapping = MappingModel(pingpong, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        pingpong.groups["g1"].add_comment(
            "tutlint: disable=M003 -- bridge latency measured acceptable"
        )
        report = run_lint(pingpong, platform, mapping)
        (m003,) = report.by_rule("M003")
        assert m003.suppressed


class TestShippedSystemIsClean:
    def test_tutwlan_has_no_mapping_findings(self, tutwlan_system):
        application, platform, mapping = tutwlan_system
        report = run_lint(application, platform, mapping)
        for rule in ("M001", "M002", "M003", "M004", "M005"):
            assert report.by_rule(rule) == []
