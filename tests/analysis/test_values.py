"""Interval-domain value analysis: the domain and rules A001-A004."""

from repro.analysis import analyze_machine, lint_machine, run_lint
from repro.analysis.values import (
    BOOL,
    FALSE,
    TOP,
    TRUE,
    Interval,
    abstract_eval,
    refine_env,
    truthiness,
)
from repro.uml.action_lang import parse_expression
from repro.uml.statemachine import StateMachine

INF = float("inf")


def machine():
    m = StateMachine("M")
    m.state("idle", initial=True)
    m.state("busy")
    m.on_signal("busy", "idle", "stop")
    return m


class TestIntervalDomain:
    def test_const_and_top(self):
        assert Interval.const(7) == Interval(7, 7)
        assert Interval.const(7).is_const
        assert TOP.is_top and not TOP.is_const

    def test_join_widen_intersect(self):
        a = Interval(0, 5)
        b = Interval(3, 9)
        assert a.join(b) == Interval(0, 9)
        # widening jumps the unstable bound to infinity, keeps the stable one
        widened = a.widen(Interval(0, 6))
        assert widened.lo == 0 and widened.hi == INF
        assert a.intersect(b) == Interval(3, 5)
        assert Interval(0, 1).intersect(Interval(5, 9)) is None

    def test_contains_and_truthiness(self):
        assert Interval(-2, 2).contains(0)
        assert truthiness(FALSE) is False
        assert truthiness(Interval(1, 9)) is True
        assert truthiness(Interval(0, 9)) is None

    def test_str_formats_infinite_bounds(self):
        assert str(Interval(-INF, 4)) == "[-inf, 4]"


def evaluate(source, **env):
    return abstract_eval(
        parse_expression(source), {k: Interval(*v) for k, v in env.items()}
    )


class TestAbstractEval:
    def test_arithmetic_over_intervals(self):
        assert evaluate("x + 1", x=(0, 5)) == Interval(1, 6)
        assert evaluate("x - y", x=(0, 5), y=(2, 3)) == Interval(-3, 3)
        assert evaluate("x * 2", x=(-1, 4)) == Interval(-2, 8)

    def test_unknown_name_is_top(self):
        assert evaluate("ghost + 1") == TOP

    def test_comparison_decides_when_disjoint(self):
        assert evaluate("x < y", x=(0, 2), y=(5, 9)) == TRUE
        assert evaluate("x < y", x=(5, 9), y=(0, 2)) == FALSE
        assert evaluate("x < y", x=(0, 9), y=(5, 9)) == BOOL

    def test_modulo_by_constant_bounds_result(self):
        assert evaluate("x % 4", x=(0, 65535)) == Interval(0, 3)

    def test_rand16_and_crc32_builtins(self):
        assert evaluate("rand16()") == Interval(0, 0xFFFF)
        # a CRC is a bit pattern, not a magnitude: must stay unknown
        assert evaluate("crc32(x)", x=(0, 9)) == TOP

    def test_short_circuit_refines_right_operand(self):
        # under `d != 0` the division cannot see the zero divisor
        assert evaluate("d != 0 && 10 / d > 1", d=(0, 3)) != FALSE

    def test_refine_env_narrows_and_detects_bottom(self):
        env = {"x": Interval(0, 10)}
        refined = refine_env(env, parse_expression("x > 5"), True)
        assert refined["x"] == Interval(6, 10)
        assert refine_env({"x": Interval(0, 3)}, parse_expression("x > 5"), True) is None


class TestMachineFixpoint:
    def test_counter_loop_widens_instead_of_diverging(self):
        m = machine()
        m.variable("n", 0)
        m.on_signal("idle", "busy", "go", effect="n = n + 1;")
        values = analyze_machine(m)
        joined = values.joined_env()
        assert joined["n"].lo == 0 and joined["n"].hi == INF

    def test_guard_gated_state_gets_refined_env(self):
        m = machine()
        m.variable("x", 0)
        m.on_signal("idle", "busy", "go", params=["x2"], effect="x = x2;")
        m.on_signal("idle", "idle", "poke", guard="x > 5")
        values = analyze_machine(m)
        busy = next(s for s in values.leaves.values() if s.name == "busy")
        assert values.env_of(busy) is not None


class TestGuardInfeasible:
    def test_a001_fires_on_provably_false_guard(self):
        m = machine()
        m.variable("x", 0)
        m.on_signal("idle", "busy", "go", guard="x > 5")
        findings = lint_machine(m).by_rule("A001")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "(x > 5)" in findings[0].message

    def test_constant_guard_is_left_to_e002(self):
        m = machine()
        m.on_signal("idle", "busy", "go", guard="1 > 2")
        assert lint_machine(m).by_rule("A001") == []
        assert len(lint_machine(m).by_rule("E002")) == 1

    def test_feasible_guard_is_clean(self):
        m = machine()
        m.variable("x", 0)
        m.on_signal("idle", "busy", "go", params=["n"], effect="x = n;")
        m.on_signal("idle", "idle", "poke", guard="x > 5")
        assert lint_machine(m).by_rule("A001") == []


class TestRangeOverflow:
    def test_a002_fires_when_initial_value_exceeds_int32(self):
        m = machine()
        m.variable("big", 3_000_000_000)
        findings = lint_machine(m).by_rule("A002")
        assert len(findings) == 1
        assert "'big'" in findings[0].message
        assert "int32_t" in findings[0].message

    def test_a002_fires_on_computed_overflow(self):
        m = machine()
        m.variable("acc", 0)
        m.on_signal(
            "idle", "busy", "go", effect="acc = 2000000000 + 2000000000;"
        )
        assert len(lint_machine(m).by_rule("A002")) == 1

    def test_widened_range_is_not_reported(self):
        # an unbounded counter widens to +inf: no *proven* finite overflow
        m = machine()
        m.variable("n", 0)
        m.on_signal("idle", "busy", "go", effect="n = n + 1;")
        assert lint_machine(m).by_rule("A002") == []


class TestDeadByValues:
    def test_a003_fires_behind_infeasible_guard(self):
        m = machine()
        m.variable("x", 0)
        m.on_signal("idle", "busy", "go", guard="x > 5")
        # 'busy' is graph-reachable, but value analysis proves it never
        # activates, so its outgoing transition is dead
        findings = lint_machine(m).by_rule("A003")
        assert len(findings) == 1
        assert "'busy'" in findings[0].message

    def test_graph_unreachable_state_is_left_to_e001(self):
        m = StateMachine("M")
        m.state("idle", initial=True)
        m.state("orphan")
        m.on_signal("orphan", "idle", "back")
        assert lint_machine(m).by_rule("A003") == []
        assert len(lint_machine(m).by_rule("E001")) == 1


class TestDivisionPossiblyZero:
    def test_a004_fires_on_divisor_straddling_zero(self):
        m = machine()
        m.variable("y", 0)
        m.on_signal(
            "idle", "busy", "go", effect="d = rand16() % 4; y = 100 / d;"
        )
        findings = lint_machine(m).by_rule("A004")
        assert len(findings) == 1
        assert "100 / d" in findings[0].message
        assert "[0, 3]" in findings[0].message

    def test_guarded_division_is_clean(self):
        m = machine()
        m.variable("y", 0)
        m.on_signal(
            "idle", "busy", "go",
            effect="d = rand16() % 4; if (d != 0) { y = 100 / d; }",
        )
        assert lint_machine(m).by_rule("A004") == []

    def test_constant_zero_divisor_is_left_to_d006(self):
        m = machine()
        m.variable("y", 0)
        m.on_signal("idle", "busy", "go", effect="y = 100 / 0;")
        assert lint_machine(m).by_rule("A004") == []
        assert len(lint_machine(m).by_rule("D006")) == 1

    def test_unknown_divisor_is_clean(self):
        # a fully unknown (top) divisor would flood reports with noise
        m = machine()
        m.variable("y", 0)
        m.on_signal(
            "idle", "busy", "go", params=["n"], effect="y = 100 / n;"
        )
        assert lint_machine(m).by_rule("A004") == []


class TestSuppression:
    def test_comment_on_machine_suppresses_inherited_rule(self):
        m = machine()
        m.variable("x", 0)
        m.on_signal("idle", "busy", "go", guard="x > 5")
        m.add_comment("tutlint: disable=A001,A003 -- staged feature flag")
        report = lint_machine(m)
        assert report.active == []
        assert {f.rule for f in report.suppressed} == {"A001", "A003"}

    def test_comment_on_transition_suppresses_only_that_rule(self):
        m = machine()
        m.variable("x", 0)
        t = m.on_signal("idle", "busy", "go", guard="x > 5")
        t.add_comment("tutlint: disable=A001 -- staged feature flag")
        report = lint_machine(m)
        assert [f.rule for f in report.suppressed] == ["A001"]
        assert "A003" in {f.rule for f in report.active}


class TestShippedModelsAreClean:
    def test_pingpong_has_no_value_findings(self, pingpong):
        report = run_lint(pingpong)
        for rule in ("A001", "A002", "A003", "A004"):
            assert report.by_rule(rule) == []

    def test_tutmac_has_no_value_findings(self, tutmac_app):
        report = run_lint(tutmac_app)
        for rule in ("A001", "A002", "A003", "A004"):
            assert report.by_rule(rule) == []
