"""CLI acceptance: seeded-broken XMI fixtures through ``repro lint``.

Each fixture seeds exactly one defect; the tests prove the expected
finding comes out in both text and JSON formats with the right exit code.
"""

import json

from repro.__main__ import main
from repro.application import ApplicationModel
from repro.uml import Port, write_model


def unreachable_app():
    """Seeds exactly one E001: state 'orphan' cannot be reached."""
    app = ApplicationModel("BrokenReach")
    component = app.component("C")
    machine = app.behavior(component)
    machine.state("idle", initial=True, entry="set_timer(t, 10);")
    machine.state("orphan")
    machine.on_timer("idle", "idle", "t")
    app.process(app.top, "p1", component)
    return app


def use_before_assign_app():
    """Seeds exactly one D002: 'tmp' read on the path where the branch
    does not assign it."""
    app = ApplicationModel("BrokenFlow")
    component = app.component("C")
    machine = app.behavior(component)
    machine.variable("cond", 1)
    machine.variable("keep", 0)
    machine.state("idle", initial=True, entry="set_timer(t, 10);")
    machine.on_timer(
        "idle", "idle", "t",
        effect="if (cond) { tmp = 1; } keep = tmp; cond = keep;",
    )
    app.process(app.top, "p1", component)
    return app


def lost_signal_app():
    """Seeds exactly one S001: 'm' routes to r1, which never triggers on it."""
    app = ApplicationModel("BrokenRoute")
    app.signal("m")
    sender = app.component("S")
    sender.add_port(Port("out", required=["m"]))
    machine = app.behavior(sender)
    machine.state("idle", initial=True, entry="set_timer(t, 10);")
    machine.on_timer("idle", "idle", "t", effect="send m() via out;")
    receiver = app.component("R")
    receiver.add_port(Port("inp", provided=["m"]))
    machine2 = app.behavior(receiver)
    machine2.state("idle", initial=True, entry="set_timer(u, 10);")
    machine2.on_timer("idle", "idle", "u")
    app.process(app.top, "s1", sender)
    app.process(app.top, "r1", receiver)
    app.connect(app.top, ("s1", "out"), ("r1", "inp"))
    return app


def arity_mismatch_app():
    """Seeds exactly one D004: 'ping' declares one parameter, send passes two."""
    app = ApplicationModel("BrokenArity")
    app.signal("ping", [("n", "Int32")])
    sender = app.component("S")
    sender.add_port(Port("out", required=["ping"]))
    machine = app.behavior(sender)
    machine.state("idle", initial=True, entry="set_timer(t, 10);")
    machine.on_timer("idle", "idle", "t", effect="send ping(1, 2) via out;")
    receiver = app.component("R")
    receiver.add_port(Port("inp", provided=["ping"]))
    machine2 = app.behavior(receiver)
    machine2.state("idle", initial=True)
    machine2.on_signal("idle", "idle", "ping", params=["n"], internal=True)
    app.process(app.top, "s1", sender)
    app.process(app.top, "r1", receiver)
    app.connect(app.top, ("s1", "out"), ("r1", "inp"))
    return app


def run_lint_cli(app, tmp_path, capsys, *extra):
    path = tmp_path / "model.xmi"
    write_model(app.model, path)
    code = main(["lint", str(path), *extra])
    return code, capsys.readouterr().out


def unwrap(out, kind):
    """Parse an enveloped CLI JSON payload and return its results body."""
    payload = json.loads(out)
    assert payload["schema"] == f"repro.{kind}/1"
    return payload["results"]


class TestSeededUnreachable:
    def test_text(self, tmp_path, capsys):
        code, out = run_lint_cli(unreachable_app(), tmp_path, capsys)
        assert code == 1
        assert "[error] E001" in out
        assert "'orphan'" in out
        assert "1 error(s), 0 warning(s)" in out

    def test_json(self, tmp_path, capsys):
        code, out = run_lint_cli(
            unreachable_app(), tmp_path, capsys, "--format", "json"
        )
        assert code == 1
        payload = unwrap(out, "lint")
        assert payload["errors"] == 1 and payload["warnings"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "E001"
        assert finding["severity"] == "error"
        assert "'orphan'" in finding["message"]


class TestSeededUseBeforeAssign:
    def test_text(self, tmp_path, capsys):
        code, out = run_lint_cli(use_before_assign_app(), tmp_path, capsys)
        assert code == 0  # warnings pass the default error threshold
        assert "[warning] D002" in out
        assert "'tmp'" in out
        assert "0 error(s), 1 warning(s)" in out

    def test_fail_on_warning(self, tmp_path, capsys):
        code, _ = run_lint_cli(
            use_before_assign_app(), tmp_path, capsys, "--fail-on", "warning"
        )
        assert code == 1

    def test_json(self, tmp_path, capsys):
        code, out = run_lint_cli(
            use_before_assign_app(), tmp_path, capsys, "--format", "json"
        )
        assert code == 0
        payload = unwrap(out, "lint")
        assert payload["errors"] == 0 and payload["warnings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "D002"
        assert "'tmp'" in finding["message"]


class TestSeededLostSignal:
    def test_text(self, tmp_path, capsys):
        code, out = run_lint_cli(lost_signal_app(), tmp_path, capsys)
        assert code == 1
        assert "[error] S001" in out
        assert "'r1'" in out and "never triggers" in out
        assert "1 error(s), 0 warning(s)" in out

    def test_json(self, tmp_path, capsys):
        code, out = run_lint_cli(
            lost_signal_app(), tmp_path, capsys, "--format", "json"
        )
        assert code == 1
        payload = unwrap(out, "lint")
        assert payload["errors"] == 1 and payload["warnings"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "S001"
        assert "'m'" in finding["message"] and "'r1'" in finding["message"]


class TestSeededArityMismatch:
    def test_text(self, tmp_path, capsys):
        code, out = run_lint_cli(arity_mismatch_app(), tmp_path, capsys)
        assert code == 1
        assert "[error] D004" in out
        assert "'ping'" in out
        assert "1 error(s), 0 warning(s)" in out

    def test_json(self, tmp_path, capsys):
        code, out = run_lint_cli(
            arity_mismatch_app(), tmp_path, capsys, "--format", "json"
        )
        assert code == 1
        payload = unwrap(out, "lint")
        assert payload["errors"] == 1 and payload["warnings"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "D004"
        assert "2 argument(s)" in finding["message"]


class TestBuiltinModelIsClean:
    def test_default_lint_exits_zero(self, capsys):
        # CI gate: the shipped TUTMAC-on-TUTWLAN system must stay lint-clean.
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "ok: 0 error(s), 0 warning(s)" in out

    def test_suppressed_findings_visible_on_request(self, capsys):
        assert main(["lint", "--show-suppressed", "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        assert out.count("(suppressed)") == 2
        assert "S004" in out and "2 suppressed" in out


class TestRuleSelection:
    def test_rules_selector_restricts_run(self, tmp_path, capsys):
        # the fixture seeds one E001; selecting only D-rules must hide it
        code, out = run_lint_cli(
            unreachable_app(), tmp_path, capsys, "--rules", "D001,D002"
        )
        assert code == 0
        assert "E001" not in out
        assert "ok: 0 error(s), 0 warning(s)" in out

    def test_rules_selector_keeps_selected(self, tmp_path, capsys):
        code, out = run_lint_cli(
            unreachable_app(), tmp_path, capsys, "--rules", "E001"
        )
        assert code == 1
        assert "[error] E001" in out

    def test_unknown_rule_id_rejected(self, capsys):
        assert main(["lint", "--rules", "E001,Z999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule id(s): Z999" in err
        assert "A001" in err  # the message lists the valid catalogue


class TestAuxiliaryOutput:
    def test_rule_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "E001" in out and "S004" in out and "D006" in out
        # the new value-analysis and mapping passes are in the catalogue
        assert "A001" in out and "M005" in out

    def test_rule_catalogue_json(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint-rules/1"
        records = payload["results"]
        by_id = {record["rule"]: record for record in records}
        assert by_id["A004"]["severity"] == "warning"
        assert by_id["M001"]["severity"] == "error"
        assert by_id["E001"]["title"] == "unreachable-state"
        assert all(record["rationale"] for record in records)
        assert [r["rule"] for r in records] == sorted(r["rule"] for r in records)

    def test_matrix(self, tmp_path, capsys):
        _, out = run_lint_cli(arity_mismatch_app(), tmp_path, capsys, "--matrix")
        assert "s1 -> r1" in out and "ping" in out

    def test_matrix_json(self, tmp_path, capsys):
        _, out = run_lint_cli(
            arity_mismatch_app(), tmp_path, capsys, "--matrix", "--format", "json"
        )
        payload = json.loads(out)
        assert payload["schema"] == "repro.lint/1"
        assert payload["meta"]["matrix"]["s1 -> r1"] == {"ping": 1}


class TestValidateCli:
    def broken_model(self, tmp_path):
        app = ApplicationModel("BrokenInit")
        component = app.component("C")
        machine = app.behavior(component)
        machine.state("idle")  # deliberately no initial state
        app.process(app.top, "p1", component)
        path = tmp_path / "model.xmi"
        write_model(app.model, path)
        return path

    def test_error_fails_text(self, tmp_path, capsys):
        path = self.broken_model(tmp_path)
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "[error] machine-initial" in out

    def test_error_fails_json(self, tmp_path, capsys):
        path = self.broken_model(tmp_path)
        assert main(["validate", str(path), "--format", "json"]) == 1
        payload = unwrap(capsys.readouterr().out, "validate")
        assert payload["errors"] == 1
        assert any(f["rule"] == "machine-initial" for f in payload["findings"])

    def test_fail_on_never(self, tmp_path, capsys):
        path = self.broken_model(tmp_path)
        assert main(["validate", str(path), "--fail-on", "never"]) == 0
