"""tutlint core: config, suppression comments, report arithmetic, folding."""

import pytest

from repro.analysis import lint_machine, run_lint
from repro.analysis.core import (
    RULES,
    Finding,
    LintConfig,
    LintReport,
    const_value,
    is_suppressed,
    suppressed_rules,
)
from repro.uml import parse_expression
from repro.uml.statemachine import StateMachine


def broken_machine():
    """idle -> busy with an orphan state: one E001 error."""
    m = StateMachine("M")
    m.state("idle", initial=True)
    m.state("busy")
    m.state("orphan")
    m.on_signal("idle", "busy", "go")
    m.on_signal("busy", "idle", "stop")
    return m


class TestConfig:
    def test_default_severity_comes_from_registry(self):
        config = LintConfig()
        assert config.severity_of("E001") == RULES["E001"].default_severity

    def test_severity_override(self):
        config = LintConfig(severities={"E001": "warning"})
        report = lint_machine(broken_machine(), config=config)
        assert [f.severity for f in report.by_rule("E001")] == ["warning"]

    def test_disabled_rule_emits_nothing(self):
        config = LintConfig(disabled=["E001"])
        assert lint_machine(broken_machine(), config=config).by_rule("E001") == []

    def test_off_severity_disables(self):
        config = LintConfig(severities={"E001": "off"})
        assert config.severity_of("E001") is None

    def test_bad_fail_on_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(fail_on="sometimes")

    def test_bad_severity_override_rejected(self):
        config = LintConfig(severities={"E001": "fatal"})
        with pytest.raises(ValueError):
            config.severity_of("E001")


class TestSuppression:
    def test_comment_on_element_suppresses(self):
        m = broken_machine()
        m.find_state("orphan").add_comment(
            "tutlint: disable=E001 -- kept for a future feature"
        )
        report = lint_machine(m)
        assert report.active == []
        assert [f.rule for f in report.suppressed] == ["E001"]

    def test_comment_on_owner_suppresses(self):
        m = broken_machine()
        m.add_comment("tutlint: disable=E001")
        assert lint_machine(m).active == []

    def test_disable_all(self):
        m = broken_machine()
        m.add_comment("tutlint: disable=all")
        assert lint_machine(m).active == []

    def test_other_rule_not_suppressed(self):
        m = broken_machine()
        m.find_state("orphan").add_comment("tutlint: disable=E004")
        assert [f.rule for f in lint_machine(m).active] == ["E001"]

    def test_unrelated_comment_ignored(self):
        m = broken_machine()
        m.find_state("orphan").add_comment("regular documentation comment")
        assert len(lint_machine(m).active) == 1

    def test_multiple_rules_in_one_directive(self):
        m = broken_machine()
        element = m.find_state("orphan")
        element.add_comment("tutlint: disable=E001,E004 -- justification")
        assert suppressed_rules(element) == {"E001", "E004"}

    def test_suppressed_findings_still_recorded(self):
        m = broken_machine()
        m.add_comment("tutlint: disable=all")
        report = lint_machine(m)
        assert report.findings != []
        assert all(f.suppressed for f in report.findings)


class TestReport:
    def two_findings(self):
        return LintReport([
            Finding("E001", "error", "msg", "s"),
            Finding("E003", "warning", "msg", "s"),
        ])

    def test_exit_code_thresholds(self):
        report = self.two_findings()
        assert report.exit_code("error") == 1
        assert report.exit_code("warning") == 1
        assert report.exit_code("never") == 0

    def test_warning_only_passes_error_threshold(self):
        report = LintReport([Finding("E003", "warning", "msg", "s")])
        assert report.exit_code("error") == 0
        assert report.exit_code("warning") == 1
        assert report.ok

    def test_suppressed_findings_do_not_fail(self):
        finding = Finding("E001", "error", "msg", "s", suppressed=True)
        report = LintReport([finding])
        assert report.exit_code("warning") == 0
        assert report.errors == []
        assert report.suppressed == [finding]

    def test_str_rendering(self):
        finding = Finding("E001", "error", "unreachable", "M.orphan")
        assert str(finding) == "[error] E001 M.orphan: unreachable"


class TestConstFolding:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("1 + 2 * 3", 7),
            ("-(4)", -4),
            ("!0", 1),
            ("true && false", 0),
            ("false || 1", 1),
            ("x && 0", 0),          # short-circuit despite non-constant side
            ("1 || x", 1),
            ("7 / 2", 3),
            ("-7 / 2", -3),         # C truncating division
            ("-7 % 2", -1),
            ("1 < 2 ? 10 : 20", 10),
            ("3 << 2", 12),
        ],
    )
    def test_folds(self, source, expected):
        assert const_value(parse_expression(source)) == expected

    @pytest.mark.parametrize("source", ["x", "x + 1", "x ? 1 : 2", "1 / 0", "5 % 0"])
    def test_does_not_fold(self, source):
        assert const_value(parse_expression(source)) is None
