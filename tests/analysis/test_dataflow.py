"""Action-language dataflow rules D001-D007."""

from repro.analysis import lint_machine
from repro.uml.classifier import Signal
from repro.uml.structure import Property
from repro.uml.packages import Model
from repro.uml.statemachine import StateMachine


def machine():
    m = StateMachine("M")
    m.state("idle", initial=True)
    m.state("busy")
    m.on_signal("busy", "idle", "stop")
    return m


def declared_signals(*specs):
    """Build ``{name: Signal}`` with the given parameter counts."""
    model = Model("m")
    decls = {}
    for name, param_count in specs:
        signal = Signal(name)
        for index in range(param_count):
            signal.add_attribute(Property(f"p{index}", model.primitive("Int32")))
        decls[name] = signal
    return decls


class TestUseBeforeAssign:
    def test_undefined_name_is_error(self):
        m = machine()
        m.on_signal("idle", "busy", "go", effect="x = ghost + 1;")
        findings = lint_machine(m).by_rule("D001")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "'ghost'" in findings[0].message

    def test_declared_variable_is_initialised(self):
        m = machine()
        m.variable("n", 5)
        m.on_signal("idle", "busy", "go", effect="n = n + 1;")
        assert lint_machine(m).by_rule("D001") == []
        assert lint_machine(m).by_rule("D002") == []

    def test_trigger_parameter_is_bound(self):
        m = machine()
        m.variable("total")
        m.on_signal("idle", "busy", "go", params=["amount"],
                    effect="total = total + amount;")
        assert lint_machine(m).by_rule("D001") == []

    def test_maybe_uninitialized_across_blocks_is_warning(self):
        m = machine()
        m.variable("keep")
        # 'tmp' is introduced only by assignment in one effect but read in
        # another: whichever fires first decides, so it is a 'maybe'.
        m.on_signal("idle", "busy", "go", effect="tmp = 1;")
        m.on_signal("idle", "busy", "other", effect="keep = tmp;")
        findings = lint_machine(m).by_rule("D002")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "'tmp'" in findings[0].message

    def test_assignment_before_read_in_block_is_clean(self):
        m = machine()
        m.variable("keep")
        m.on_signal("idle", "busy", "go", effect="tmp = 1; keep = tmp;")
        assert lint_machine(m).by_rule("D002") == []

    def test_if_branch_assignment_is_not_definite(self):
        m = machine()
        m.variable("keep")
        m.variable("cond")
        m.on_signal("idle", "busy", "go",
                    effect="if (cond) { tmp = 1; } keep = tmp;")
        assert len(lint_machine(m).by_rule("D002")) == 1

    def test_both_branches_assigning_is_definite(self):
        m = machine()
        m.variable("keep")
        m.variable("cond")
        m.on_signal("idle", "busy", "go",
                    effect="if (cond) { tmp = 1; } else { tmp = 2; } keep = tmp;")
        assert lint_machine(m).by_rule("D002") == []

    def test_while_body_assignment_is_not_definite(self):
        m = machine()
        m.variable("keep")
        m.variable("cond")
        m.on_signal("idle", "busy", "go",
                    effect="while (cond) { tmp = 1; cond = 0; } keep = tmp;")
        assert len(lint_machine(m).by_rule("D002")) == 1

    def test_guard_reads_are_checked(self):
        m = machine()
        m.on_signal("idle", "busy", "go", guard="phantom > 0")
        findings = lint_machine(m).by_rule("D001")
        assert len(findings) == 1
        assert "'phantom'" in findings[0].message


class TestDeadStores:
    def test_never_read_variable_is_dead_store(self):
        m = machine()
        m.variable("unused")
        findings = lint_machine(m).by_rule("D003")
        assert len(findings) == 1
        assert "'unused'" in findings[0].message

    def test_self_increment_counts_as_read(self):
        # Statistics counters like ``n = n + 1`` must not be flagged.
        m = machine()
        m.variable("n")
        m.on_signal("idle", "busy", "go", effect="n = n + 1;")
        assert lint_machine(m).by_rule("D003") == []

    def test_guard_read_keeps_variable_alive(self):
        m = machine()
        m.variable("mode")
        m.on_signal("idle", "busy", "go", guard="mode == 1")
        assert lint_machine(m).by_rule("D003") == []


class TestSendChecks:
    def test_arity_mismatch_is_error(self):
        m = machine()
        m.on_signal("idle", "busy", "go", effect="send ping(1, 2);")
        decls = declared_signals(("ping", 1), ("stop", 0), ("go", 0))
        findings = lint_machine(m, decls).by_rule("D004")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "2 argument(s)" in findings[0].message
        assert "1 parameter(s)" in findings[0].message

    def test_matching_arity_is_clean(self):
        m = machine()
        m.on_signal("idle", "busy", "go", effect="send ping(7);")
        decls = declared_signals(("ping", 1), ("stop", 0), ("go", 0))
        assert lint_machine(m, decls).by_rule("D004") == []

    def test_undeclared_signal_is_warning(self):
        m = machine()
        m.on_signal("idle", "busy", "go", effect="send mystery();")
        decls = declared_signals(("stop", 0), ("go", 0))
        findings = lint_machine(m, decls).by_rule("D005")
        assert len(findings) == 1
        assert "'mystery'" in findings[0].message

    def test_no_declarations_skips_send_checks(self):
        m = machine()
        m.on_signal("idle", "busy", "go", effect="send anything(1, 2, 3);")
        report = lint_machine(m)
        assert report.by_rule("D004") == []
        assert report.by_rule("D005") == []

    def test_trigger_binding_more_params_than_declared(self):
        m = machine()
        m.variable("keep")
        m.on_signal("idle", "busy", "go", params=["a", "b"],
                    effect="keep = a + b;")
        decls = declared_signals(("go", 1), ("stop", 0))
        findings = lint_machine(m, decls).by_rule("D007")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_trigger_binding_fewer_params_is_allowed(self):
        m = machine()
        m.variable("keep")
        m.on_signal("idle", "busy", "go", params=["a"], effect="keep = a;")
        decls = declared_signals(("go", 2), ("stop", 0))
        assert lint_machine(m, decls).by_rule("D007") == []


class TestDivisionByZero:
    def test_constant_zero_divisor_is_error(self):
        m = machine()
        m.variable("x")
        m.on_signal("idle", "busy", "go", effect="x = x / (2 - 2);")
        findings = lint_machine(m).by_rule("D006")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_modulo_by_zero_in_guard(self):
        m = machine()
        m.variable("x")
        m.on_signal("idle", "busy", "go", guard="x % 0 == 1")
        assert len(lint_machine(m).by_rule("D006")) == 1

    def test_nonconstant_divisor_is_clean(self):
        m = machine()
        m.variable("x")
        m.variable("y", 4)
        m.on_signal("idle", "busy", "go", effect="x = x / y;")
        assert lint_machine(m).by_rule("D006") == []
