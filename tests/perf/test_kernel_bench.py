"""Kernel micro-benchmark: before/after the calendar-queue rewrite.

Produces ``BENCH_kernel.json`` (schema ``repro.bench-kernel/1``, see
``docs/benchmarks.md``) and asserts the rewrite's speedup.  The
"before" measurement runs ``_SeedKernel`` — a pinned, verbatim copy of
the pre-calendar kernel (class-based events with a Python ``__lt__``
per heap comparison) — on the same host and harness as the "after"
measurement, so the ratio is hardware-independent even though absolute
events/s are not.  The recorded pre-rewrite baseline from
``BENCH_explore.json`` (1,623,269 events/s on the original anchor host)
is carried in the artefact for cross-host context.

Three workloads bracket the simulator's real event-time distributions:

* ``chain`` — one self-rescheduling event (the tier-2 harness shape):
  worst case for the calendar queue, since every schedule lands in the
  already-active bucket and takes the spill-heap path.
* ``cluster`` — fan-out ticks (a batch of deliveries per tick): the
  shape the bucket batching is built for.
* ``timers`` — tens of thousands of pre-scheduled timers across a wide
  horizon: deep-heap territory, where the seed kernel pays
  ``O(log n)`` Python comparisons per operation.
"""

from __future__ import annotations

import gc
import heapq
import json
import os
import time
from heapq import heappop as _heappop, heappush as _heappush

from repro.simulation.kernel import Kernel

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

#: the pre-rewrite throughput recorded in BENCH_explore.json on the
#: original anchor host (events/s) — context only, never compared
#: against locally measured numbers
RECORDED_BASELINE_EVENTS_PER_S = 1_623_269

#: required speedup vs the pinned seed kernel, geometric-mean across
#: workloads, measured on the same host/harness
SPEEDUP_TARGET = 3.0

#: design target for the fused hook gate's idle cost per dispatch...
GATE_OVERHEAD_TARGET = 0.02
#: ...and the noise-tolerant ceiling this test asserts (shared-runner
#: wall clocks jitter far more than 2%; the best-of-N measurement below
#: still reports the typical value in the artefact)
GATE_OVERHEAD_CEILING = 0.10

#: the cluster workload must serve at least this fraction of pops from
#: the pre-sorted active bucket (the no-comparison batched path)
BATCHING_HIT_RATE_FLOOR = 0.5


class _SeedEvent:
    """Verbatim pre-rewrite event: attribute slots + Python ``__lt__``."""

    __slots__ = ("time_ps", "sequence", "callback", "cancelled", "dispatched")

    def __init__(self, time_ps, sequence, callback):
        self.time_ps = time_ps
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.dispatched = False

    def __lt__(self, other):
        return (self.time_ps, self.sequence) < (other.time_ps, other.sequence)


class _SeedKernel:
    """Pinned copy of the pre-calendar kernel's hot path (the "before").

    Kept byte-for-byte faithful to the seed implementation's run loop —
    per-event heap push/pop over ``_SeedEvent`` objects and per-event
    ``None`` checks for tracer/budget/after_event — so the benchmark's
    speedup ratio means "this rewrite vs the kernel it replaced", not
    "this host vs the host the baseline was recorded on".
    """

    def __init__(self, max_events=5_000_000):
        self.now_ps = 0
        self.max_events = max_events
        self.tracer = None
        self.trace_stride = 64
        self._heap = []
        self._sequence = 0
        self._dispatched = 0
        self._live = 0
        self.after_event = None

    def schedule(self, delay_ps, callback):
        """Schedule ``callback`` after ``delay_ps`` (seed hot path)."""
        self._sequence += 1
        event = _SeedEvent(self.now_ps + delay_ps, self._sequence, callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def run(self, until_ps=None):
        """The seed dispatch loop, verbatim."""
        dispatched = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_ps is not None and event.time_ps > until_ps:
                break
            heapq.heappop(self._heap)
            self._live -= 1
            event.dispatched = True
            self.now_ps = event.time_ps
            event.callback()
            dispatched += 1
            self._dispatched += 1
            if (
                self.tracer is not None
                and self._dispatched % self.trace_stride == 0
            ):
                pass
            if self._dispatched > self.max_events:
                raise RuntimeError("budget")
            if self.after_event is not None:
                self.after_event()
        if until_ps is not None and until_ps > self.now_ps:
            self.now_ps = until_ps
        return dispatched


class _GateFreeKernel(Kernel):
    """:class:`Kernel` with the fused hook gate compiled out.

    The idle-overhead reference: ``_run_idle`` minus the per-event
    ``_hooks_active`` check (and the mid-run hook handover it guards).
    Hooks registered mid-run are ignored — benchmark use only.
    """

    __slots__ = ()

    def _run_idle(self, until):
        """The fast loop with no hook gate (see :class:`Kernel`)."""
        drain = self._drain
        spill = self._spill
        heappop = _heappop
        budget = self.max_events - self._dispatched
        n = 0
        drained = 0
        spilled = 0
        try:
            while True:
                if drain:
                    if spill and spill[0] < drain[-1]:
                        event = heappop(spill)
                        spilled += 1
                    else:
                        event = drain.pop()
                        drained += 1
                elif spill:
                    event = heappop(spill)
                    spilled += 1
                else:
                    if not self._advance():
                        break
                    continue
                time_ps = event[0]
                if time_ps > until:
                    _heappush(spill, event)
                    break
                if event[3]:
                    self._size -= 1
                    self._tombstones -= 1
                    continue
                self._size -= 1
                event[4] = True
                self.now_ps = time_ps
                event[2]()
                n += 1
                if n > budget:
                    raise RuntimeError("budget")
        finally:
            self._dispatched += n
            self._drained += drained
            self._spilled += spilled
        return n, True


# ---------------------------------------------------------------------------
# workloads — each returns (events_per_s, kernel)
# ---------------------------------------------------------------------------


def _chain(kernel_cls, total=120_000):
    kernel = kernel_cls(max_events=10_000_000)
    fired = [0]

    def tick():
        fired[0] += 1
        if fired[0] < total:
            kernel.schedule(10, tick)

    kernel.schedule(0, tick)
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    assert fired[0] == total
    return total / elapsed, kernel


def _cluster(kernel_cls, ticks=1_200, fan=100):
    kernel = kernel_cls(max_events=10_000_000)
    fired = [0]

    def work():
        fired[0] += 1

    def tick():
        if fired[0] < ticks * fan:
            for _ in range(fan):
                kernel.schedule(100_000, work)
            kernel.schedule(100_000, tick)

    kernel.schedule(0, tick)
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    return fired[0] / elapsed, kernel


def _timers(kernel_cls, total=60_000):
    kernel = kernel_cls(max_events=10_000_000)
    fired = [0]

    def pop():
        fired[0] += 1

    # a deterministic pseudo-random spread over a ~60 ms horizon keeps
    # the heap deep for the whole drain
    t = 0
    for index in range(total):
        t = (t + 1_000_003 * (index % 97) + 11) % 60_000_000_000
        kernel.schedule(t, pop)
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    assert fired[0] == total
    return total / elapsed, kernel


WORKLOADS = (("chain", _chain), ("cluster", _cluster), ("timers", _timers))


def _measure_pair(measure, repeats=5):
    """Best-of-``repeats`` events/s for seed and calendar kernels.

    The two kernels run interleaved (seed, calendar, seed, ...) with the
    cyclic garbage collector off, so host noise and collection pauses
    hit both sides alike and cancel in the ratio.
    """
    best_before = 0.0
    best_after = 0.0
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            best_before = max(best_before, measure(_SeedKernel)[0])
            best_after = max(best_after, measure(Kernel)[0])
    finally:
        gc.enable()
    return best_before, best_after


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def test_bench_kernel_artifact_speedup_batching_and_gate_overhead():
    """One measurement pass produces ``BENCH_kernel.json`` and gates it.

    Before/after pairs run interleaved (seed then calendar per
    workload, best-of-repeats) so host noise cancels in the ratio; the
    gate-idle overhead compares interleaved bests for the same reason.
    """
    results = {}
    ratios = []
    for name, measure in WORKLOADS:
        before, after = _measure_pair(measure)
        ratio = after / before
        ratios.append(ratio)
        results[name] = {
            "events_per_s_before": round(before),
            "events_per_s_after": round(after),
            "speedup": round(ratio, 3),
        }
    speedup = _geomean(ratios)

    # batching hit rate: the cluster shape must drain from pre-sorted
    # buckets, not the spill heap
    _, cluster_kernel = _cluster(Kernel)
    stats = cluster_kernel.queue_stats()
    served = stats["drained"] + stats["spilled"]
    hit_rate = stats["drained"] / served if served else 0.0

    # fused-gate idle cost: interleaved best-of-7 per kernel; comparing
    # bests filters the scheduler noise that single runs (and even
    # per-pair medians) carry on a shared host
    best_gated = 0.0
    best_free = 0.0
    gc.collect()
    gc.disable()
    try:
        for _ in range(7):
            best_gated = max(best_gated, _cluster(Kernel)[0])
            best_free = max(best_free, _cluster(_GateFreeKernel)[0])
    finally:
        gc.enable()
    gate_overhead = (best_free - best_gated) / best_free

    payload = {
        "schema": "repro.bench-kernel/1",
        "workloads": results,
        "speedup": {
            "geometric_mean": round(speedup, 3),
            "target": SPEEDUP_TARGET,
            "recorded_baseline_events_per_s": RECORDED_BASELINE_EVENTS_PER_S,
        },
        "batching": {
            "hit_rate": round(hit_rate, 4),
            "floor": BATCHING_HIT_RATE_FLOOR,
            "queue_stats": stats,
        },
        "gate": {
            "idle_overhead": round(gate_overhead, 4),
            "target": GATE_OVERHEAD_TARGET,
            "ceiling": GATE_OVERHEAD_CEILING,
        },
    }
    path = os.path.join(REPO_ROOT, "BENCH_kernel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert speedup >= SPEEDUP_TARGET, (
        f"calendar kernel is only {speedup:.2f}x the seed kernel "
        f"(target {SPEEDUP_TARGET}x; per-workload {results})"
    )
    assert hit_rate >= BATCHING_HIT_RATE_FLOOR, (
        f"cluster workload served only {hit_rate:.1%} of pops from the "
        f"batched drain path ({stats})"
    )
    assert gate_overhead <= GATE_OVERHEAD_CEILING, (
        f"fused hook gate costs {gate_overhead:.1%} idle "
        f"(ceiling {GATE_OVERHEAD_CEILING:.0%})"
    )


def test_backends_agree_on_bench_workloads():
    """The speedup is not bought with divergence: per-workload dispatch
    counts and final clocks match between seed and calendar kernels."""
    for name, measure in WORKLOADS:
        _, seed_kernel = measure(_SeedKernel)
        _, calendar_kernel = measure(Kernel)
        assert seed_kernel._dispatched == calendar_kernel.dispatched, name
        assert seed_kernel.now_ps == calendar_kernel.now_ps, name
