"""Performance floors for the kernel, simulator and exploration engine.

Each test is a miniature of a ``benchmarks/`` scenario with a generous
floor (roughly one order of magnitude below current measurements on a
laptop-class core), so only a genuine regression — an accidentally
quadratic hot path, a pool that stopped parallelising, a cache that
stopped hitting — trips it, not CI noise.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exploration import (
    DEFAULT_PRUNE_MARGIN,
    PruneConfig,
    SupervisorConfig,
    mapping_sweep_specs,
    prune_candidates,
    run_candidates,
)
from repro.simulation.kernel import Kernel

TUTWLAN_BUILDER = "repro.cases.tutwlan:exploration_factory"

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

#: events/second floor; the kernel currently sustains ~900k on one core.
KERNEL_EVENTS_PER_S_FLOOR = 100_000

#: wall-clock ceiling for one 20 ms TUTMAC/TUTWLAN evaluation (~0.05 s now).
SINGLE_EVALUATION_BUDGET_S = 3.0

#: supervised dispatch (ledgering, deadline bookkeeping) may cost at most
#: this fraction of a campaign's wall clock on top of pure evaluation.
SUPERVISOR_OVERHEAD_CEILING = 0.05


def _measure_kernel_events_per_s(kernel, total=50_000):
    fired = [0]

    def tick():
        fired[0] += 1
        if fired[0] < total:
            kernel.schedule(10, tick)

    kernel.schedule(0, tick)
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    assert fired[0] == total
    return total / elapsed


def test_kernel_event_throughput_floor():
    rate = _measure_kernel_events_per_s(Kernel(max_events=10_000_000))
    assert rate > KERNEL_EVENTS_PER_S_FLOOR, (
        f"kernel dispatched only {rate:.0f} events/s "
        f"(floor {KERNEL_EVENTS_PER_S_FLOOR})"
    )


def test_kernel_event_throughput_floor_tracing_disabled():
    """tracer=None must cost one predicate per dispatch: same floor applies."""
    rate = _measure_kernel_events_per_s(
        Kernel(max_events=10_000_000, tracer=None)
    )
    assert rate > KERNEL_EVENTS_PER_S_FLOOR, (
        f"tracing-disabled kernel dispatched only {rate:.0f} events/s "
        f"(floor {KERNEL_EVENTS_PER_S_FLOOR})"
    )


def test_single_evaluation_wall_clock_budget():
    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=20_000, limit=1)
    started = time.perf_counter()
    run = run_candidates(specs, workers=0)
    elapsed = time.perf_counter() - started
    assert run.evaluated == 1
    assert elapsed < SINGLE_EVALUATION_BUDGET_S, (
        f"one 20 ms TUTMAC evaluation took {elapsed:.2f}s "
        f"(budget {SINGLE_EVALUATION_BUDGET_S}s)"
    )


def test_exploration_sweep_throughput_floor():
    # 6 short candidates must finish well under a second each
    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=5_000, limit=6)
    started = time.perf_counter()
    run = run_candidates(specs, workers=0)
    elapsed = time.perf_counter() - started
    assert run.evaluated == 6
    assert elapsed / 6 < 1.0, (
        f"serial sweep averaged {elapsed / 6:.2f}s per 5 ms candidate"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="parallel speedup needs >= 2 cores"
)
def test_parallel_vs_serial_speedup_smoke():
    """Two workers must beat serial on a ~1 s sweep (smoke, not a 2x claim)."""
    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=20_000, limit=16)

    started = time.perf_counter()
    serial = run_candidates(specs, workers=0)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_candidates(specs, workers=2)
    parallel_wall = time.perf_counter() - started

    serial_hashes = [o.result.stable_hash() for o in serial.ranking()]
    parallel_hashes = [o.result.stable_hash() for o in parallel.ranking()]
    assert serial_hashes == parallel_hashes, "ranking must not depend on workers"
    assert parallel_wall < serial_wall, (
        f"2 workers ({parallel_wall:.2f}s) not faster than serial "
        f"({serial_wall:.2f}s)"
    )


def test_bench_explore_artifact_and_supervisor_overhead():
    """Record the exploration trajectory in ``BENCH_explore.json``.

    The artefact keeps kernel throughput, campaign wall time and the
    supervised-dispatch overhead so future re-anchors can see whether a
    change moved the needle; the asserted floors make it a regression
    gate at the same time.
    """
    kernel_rate = _measure_kernel_events_per_s(Kernel(max_events=10_000_000))
    assert kernel_rate > KERNEL_EVENTS_PER_S_FLOOR

    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=5_000, limit=6)
    started = time.perf_counter()
    run = run_candidates(specs, workers=0, supervisor=SupervisorConfig())
    campaign_wall_s = time.perf_counter() - started
    assert run.evaluated == len(specs)

    evaluation_s = sum(outcome.elapsed_s for outcome in run.outcomes)
    overhead_frac = max(0.0, campaign_wall_s - evaluation_s) / campaign_wall_s
    assert overhead_frac <= SUPERVISOR_OVERHEAD_CEILING, (
        f"supervised dispatch added {overhead_frac:.1%} on top of evaluation "
        f"(ceiling {SUPERVISOR_OVERHEAD_CEILING:.0%})"
    )

    full_specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=5_000)
    kept, pruned_records, _ = prune_candidates(full_specs)
    assert 0 < len(kept) < len(full_specs), (
        "the default prune margin should drop part of the TUTMAC sweep "
        "without emptying it"
    )

    payload = {
        "schema": "repro.bench-explore/1",
        "kernel": {
            "events_per_s": round(kernel_rate),
            "events_per_s_floor": KERNEL_EVENTS_PER_S_FLOOR,
        },
        "campaign": {
            "candidates": len(specs),
            "duration_us": 5_000,
            "wall_s": round(campaign_wall_s, 4),
            "evaluation_s": round(evaluation_s, 4),
            "per_candidate_s": round(campaign_wall_s / len(specs), 4),
        },
        "supervisor": {
            "overhead_frac": round(overhead_frac, 4),
            "overhead_ceiling": SUPERVISOR_OVERHEAD_CEILING,
            "counters": run.supervisor_counters(),
        },
        "pruning": {
            "margin": DEFAULT_PRUNE_MARGIN,
            "candidates_submitted": len(full_specs),
            "kept": len(kept),
            "pruned": len(pruned_records),
            "infeasible": sum(
                1 for r in pruned_records if r.reason == "infeasible"
            ),
            "dominated": sum(
                1 for r in pruned_records if r.reason == "dominated"
            ),
        },
    }
    path = os.path.join(REPO_ROOT, "BENCH_explore.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_static_pruning_preserves_top_candidate(tmp_path):
    """The tentpole acceptance gate for ``--prune-static``.

    On the full TUTMAC mapping sweep the pruned run must evaluate strictly
    fewer candidates, keep the identical top-ranked candidate, and produce
    a pruned ledger that is byte-identical for workers in {0, 1, 4}.  A
    shared cache keeps this at one full sweep's simulation cost.
    """
    cache_dir = str(tmp_path / "cache")
    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=5_000)
    baseline = run_candidates(specs, workers=0, cache_dir=cache_dir)
    assert baseline.evaluated == len(specs)
    best = baseline.ranking()[0]

    ledgers = []
    for workers in (0, 1, 4):
        pruned_run = run_candidates(
            specs,
            workers=workers,
            cache_dir=cache_dir,
            prune_static=PruneConfig(),
        )
        assert len(pruned_run.outcomes) < len(specs), (
            "pruning must evaluate strictly fewer candidates than the sweep"
        )
        assert len(pruned_run.outcomes) + len(pruned_run.pruned) == len(specs)
        top = pruned_run.ranking()[0]
        assert top.spec.digest() == best.spec.digest(), (
            "pruning changed the top-ranked candidate"
        )
        assert top.result.stable_hash() == best.result.stable_hash()
        assert top.result.cost() == best.result.cost()
        ledgers.append(
            json.dumps(
                [record.to_json_dict() for record in pruned_run.pruned],
                sort_keys=True,
            )
        )
    assert ledgers[0] == ledgers[1] == ledgers[2], (
        "the pruned ledger must not depend on worker count"
    )


def test_warm_cache_skips_all_evaluation(tmp_path):
    cache_dir = str(tmp_path / "cache")
    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=5_000, limit=6)

    started = time.perf_counter()
    cold = run_candidates(specs, workers=0, cache_dir=cache_dir)
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_candidates(specs, workers=0, cache_dir=cache_dir)
    warm_wall = time.perf_counter() - started

    assert cold.evaluated == 6 and cold.cache_hits == 0
    assert warm.evaluated == 0 and warm.cache_hits == 6
    assert warm_wall < cold_wall / 2, (
        f"warm cache ({warm_wall:.3f}s) should be far cheaper than cold "
        f"({cold_wall:.3f}s)"
    )
    warm_hashes = [o.result.stable_hash() for o in warm.ranking()]
    cold_hashes = [o.result.stable_hash() for o in cold.ranking()]
    assert warm_hashes == cold_hashes
