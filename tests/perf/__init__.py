"""Tier-2 benchmark-regression suite.

Short (sub-second) versions of the simulator and exploration benchmarks
with asserted performance floors, so a perf regression fails ``pytest``
instead of only showing up in ``benchmarks/`` artefacts.  Floors are set
~10x below measured values to stay robust on slow shared CI runners.
"""
