"""Profiling stage 1: group info from model and from XMI agree."""

from repro.profiling import (
    ENVIRONMENT_GROUP,
    group_info_from_model,
    group_info_from_xmi,
)
from repro.uml import model_to_xml


class TestFromModel:
    def test_pingpong_groups(self, pingpong):
        info = group_info_from_model(pingpong.model)
        assert info.group_of("ping1") == "g1"
        assert info.group_of("pong1") == "g2"
        assert info.group_names == ["g1", "g2"]

    def test_unknown_process_is_environment(self, pingpong):
        info = group_info_from_model(pingpong.model)
        assert info.group_of("mystery") == ENVIRONMENT_GROUP

    def test_members(self, pingpong):
        info = group_info_from_model(pingpong.model)
        assert info.members("g1") == ["ping1"]

    def test_all_groups_appends_environment(self, pingpong):
        info = group_info_from_model(pingpong.model)
        assert info.all_groups() == ["g1", "g2", ENVIRONMENT_GROUP]
        assert info.all_groups(include_environment=False) == ["g1", "g2"]


class TestFromXmi:
    def test_stage1_matches_in_memory_walk(self, pingpong):
        xml = model_to_xml(pingpong.model)
        from_xmi = group_info_from_xmi(xml, profiles=[pingpong.profile])
        from_model = group_info_from_model(pingpong.model)
        assert from_xmi.process_to_group == from_model.process_to_group
        assert from_xmi.group_names == from_model.group_names

    def test_tutmac_stage1(self, tutmac_app):
        xml = model_to_xml(tutmac_app.model)
        info = group_info_from_xmi(xml, profiles=[tutmac_app.profile])
        assert info.group_of("rca") == "group1"
        assert info.group_of("mng") == "group1"
        assert info.group_of("rmng") == "group1"
        assert info.group_of("msduRec") == "group2"
        assert info.group_of("frag") == "group2"
        assert info.group_of("defrag") == "group3"
        assert info.group_of("crc") == "group4"
        # environment processes are unstereotyped -> Environment
        assert info.group_of("user") == ENVIRONMENT_GROUP
        assert info.group_of("phy") == ENVIRONMENT_GROUP
        assert info.process_count == 8
