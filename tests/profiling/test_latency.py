"""Latency statistics in the profiling analysis."""

import pytest

from repro.profiling import LatencyStats, analyze, render_latency_detail
from repro.profiling.groupinfo import ProcessGroupInfo
from repro.simulation import LogWriter, parse_log


class TestLatencyStats:
    def test_observe_accumulates(self):
        stats = LatencyStats()
        for value in (10, 20, 60):
            stats.observe(value)
        assert stats.count == 3
        assert stats.mean_ps == pytest.approx(30.0)
        assert stats.max_ps == 60

    def test_empty_mean_is_zero(self):
        assert LatencyStats().mean_ps == 0.0


def build_data():
    info = ProcessGroupInfo()
    info.process_to_group = {"a": "g", "b": "g"}
    info.group_names = ["g"]
    writer = LogWriter()
    samples = [
        ("ping", "local", 100),
        ("ping", "local", 300),
        ("ping", "bus", 900),
        ("pong", "bus", 500),
    ]
    for signal, transport, latency in samples:
        writer.signal(
            time_ps=0, signal=signal, sender="a", receiver="b",
            bytes=4, latency_ps=latency, transport=transport,
        )
    writer.finish(1)
    return analyze(parse_log(writer.render()), info)


class TestAggregation:
    def test_per_signal_latency(self):
        data = build_data()
        assert data.signal_latency["ping"].count == 3
        assert data.signal_latency["ping"].max_ps == 900
        assert data.signal_latency["pong"].mean_ps == pytest.approx(500.0)

    def test_per_transport_latency(self):
        data = build_data()
        assert data.transport_latency["local"].count == 2
        assert data.transport_latency["bus"].count == 2
        assert data.transport_latency["bus"].mean_ps == pytest.approx(700.0)

    def test_render_detail(self):
        text = render_latency_detail(build_data())
        assert "Delivery latency by transport" in text
        assert "Delivery latency by signal type" in text
        assert "ping" in text and "bus" in text


class TestOnRealRun:
    def test_bus_latency_exceeds_local(self, tutwlan_system):
        from repro.profiling import profile_run
        from repro.simulation import SystemSimulation
        from repro.cases.tutwlan import build_tutwlan_system

        application, platform, mapping = build_tutwlan_system()
        result = SystemSimulation(application, platform, mapping).run(20_000)
        data = profile_run(result, application)
        assert (
            data.transport_latency["bus"].mean_ps
            > data.transport_latency["local"].mean_ps
        )
        # environment deliveries are instantaneous
        assert data.transport_latency["env"].max_ps == 0
