"""CSV export of profiling data."""

import csv
import io

from repro.profiling import (
    analyze,
    group_times_csv,
    latency_csv,
    process_transfers_csv,
    signal_matrix_csv,
    write_all_csv,
)
from tests.profiling.test_analysis import make_info, make_log


def make_data():
    return analyze(make_log(), make_info())


def parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestCsvContents:
    def test_group_times(self):
        rows = parse(group_times_csv(make_data()))
        assert rows[0] == ["group", "cycles", "share", "steps"]
        by_group = {row[0]: row for row in rows[1:]}
        assert by_group["gA"][1] == "150"
        assert float(by_group["gA"][2]) > 0.8
        assert by_group["Environment"][1] == "0"

    def test_signal_matrix_square(self):
        rows = parse(signal_matrix_csv(make_data()))
        groups = rows[0][1:]
        assert len(rows) - 1 == len(groups)
        # gA -> gB is 5 in the synthetic log
        gA_row = [r for r in rows[1:] if r[0] == "gA"][0]
        assert gA_row[1 + groups.index("gB")] == "5"

    def test_process_transfers(self):
        rows = parse(process_transfers_csv(make_data()))
        assert rows[0] == ["sender", "receiver", "signals"]
        assert ["p1", "p3", "5"] in rows

    def test_latency(self):
        rows = parse(latency_csv(make_data()))
        assert rows[0][0] == "signal"
        assert len(rows) > 1

    def test_write_all(self, tmp_path):
        paths = write_all_csv(make_data(), str(tmp_path))
        assert len(paths) == 4
        import os

        for path in paths:
            assert os.path.getsize(path) > 0
