"""Profiling report rendering in the paper's Table 4 layout."""

from repro.profiling import (
    profile_run,
    render_process_detail,
    render_report,
    render_table4a,
    render_table4b,
)
from tests.profiling.test_analysis import make_info, make_log
from repro.profiling import analyze


def make_data():
    return analyze(make_log(), make_info())


class TestTable4a:
    def test_layout(self):
        text = render_table4a(make_data())
        assert "Process group" in text
        assert "Total execution time" in text
        assert "Proportion" in text
        assert "cycles" in text

    def test_rows_sorted_by_share_descending(self):
        text = render_table4a(make_data())
        lines = [l for l in text.splitlines() if "cycles" in l]
        assert lines[0].startswith(" gA")
        assert lines[-1].split("|")[0].strip() == "Environment"

    def test_environment_row_zero(self):
        text = render_table4a(make_data())
        env_line = [l for l in text.splitlines() if l.strip().startswith("Environment")][0]
        assert "0 cycles" in env_line
        assert "0.0 %" in env_line

    def test_percentage_format_matches_paper(self):
        text = render_table4a(make_data())
        assert "85.7 %" in text  # 150/175


class TestTable4b:
    def test_layout(self):
        text = render_table4b(make_data())
        assert "Sender/Receiver" in text
        for group in ("gA", "gB", "Environment"):
            assert group in text

    def test_counts_present(self):
        text = render_table4b(make_data())
        rows = [l for l in text.splitlines() if l.strip().startswith("gA")]
        assert "5" in rows[0]


class TestFullReport:
    def test_sections_present(self):
        text = render_report(make_data(), title="Demo report")
        assert "Demo report" in text
        assert "Process group execution times" in text
        assert "Number of signals between groups" in text
        assert "Transfers between individual application processes" in text
        assert "dropped signals: 1" in text

    def test_process_detail(self):
        text = render_process_detail(make_data())
        assert "p1 -> p3" in text


class TestProfileRun:
    def test_profile_run_via_xmi(self, pingpong, two_cpu_platform):
        from repro.mapping import MappingModel
        from repro.simulation import SystemSimulation

        mapping = MappingModel(pingpong, two_cpu_platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = SystemSimulation(pingpong, two_cpu_platform, mapping).run(5_000)
        data = profile_run(result, pingpong)
        assert data.group_cycles["g1"] > 0
        assert data.signals_between("g1", "g2") > 0
