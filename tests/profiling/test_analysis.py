"""Profiling stage 3: aggregation arithmetic on synthetic logs."""

import pytest

from repro.profiling import ProcessGroupInfo, analyze
from repro.simulation import LogWriter, parse_log


def make_info():
    info = ProcessGroupInfo()
    info.group_names = ["gA", "gB"]
    info.process_to_group = {"p1": "gA", "p2": "gA", "p3": "gB"}
    return info


def make_log():
    writer = LogWriter()
    for process, cycles in (("p1", 100), ("p2", 50), ("p3", 25), ("env1", 0)):
        writer.exec_step(
            time_ps=0, process=process, pe="cpu", cycles=cycles, duration_ps=0,
            from_state="s", to_state="s", trigger="t",
        )
    flows = [
        ("p1", "p2", 10, 3),   # within gA
        ("p1", "p3", 20, 5),   # gA -> gB
        ("p3", "p1", 30, 2),   # gB -> gA
        ("env1", "p1", 8, 1),  # Environment -> gA
    ]
    for sender, receiver, size, count in flows:
        for _ in range(count):
            writer.signal(
                time_ps=0, signal="s", sender=sender, receiver=receiver,
                bytes=size, latency_ps=0, transport="local",
            )
    writer.drop(time_ps=0, process="p1", signal="s", reason="no-transition")
    writer.finish(1_000_000)
    return parse_log(writer.render())


@pytest.fixture
def data():
    return analyze(make_log(), make_info())


class TestCycleAggregation:
    def test_group_cycles(self, data):
        assert data.group_cycles["gA"] == 150
        assert data.group_cycles["gB"] == 25
        assert data.group_cycles["Environment"] == 0

    def test_shares_sum_to_one(self, data):
        assert sum(data.shares().values()) == pytest.approx(1.0)

    def test_group_share(self, data):
        assert data.group_share("gA") == pytest.approx(150 / 175)

    def test_process_cycles(self, data):
        assert data.process_cycles["p1"] == 100

    def test_busiest_group(self, data):
        assert data.busiest_group() == "gA"

    def test_group_steps(self, data):
        assert data.group_steps["gA"] == 2


class TestSignalAggregation:
    def test_group_signal_counts(self, data):
        assert data.signals_between("gA", "gA") == 3
        assert data.signals_between("gA", "gB") == 5
        assert data.signals_between("gB", "gA") == 2
        assert data.signals_between("Environment", "gA") == 1

    def test_matrix_layout(self, data):
        groups = data.group_info.all_groups()
        matrix = data.signal_matrix()
        assert groups == ["gA", "gB", "Environment"]
        assert matrix[0][1] == 5   # gA -> gB
        assert matrix[1][0] == 2   # gB -> gA
        assert matrix[2][0] == 1   # Environment -> gA

    def test_external_internal_split(self, data):
        assert data.external_signals() == 5 + 2 + 1
        assert data.internal_signals() == 3

    def test_external_bytes(self, data):
        assert data.external_bytes() == 5 * 20 + 2 * 30 + 1 * 8

    def test_process_level_transfers(self, data):
        assert data.process_signals[("p1", "p3")] == 5

    def test_drops_counted(self, data):
        assert data.dropped_signals == 1


class TestEmptyLog:
    def test_zero_total_handled(self):
        writer = LogWriter()
        writer.finish(0)
        data = analyze(parse_log(writer.render()), make_info())
        assert data.total_cycles() == 0
        assert data.group_share("gA") == 0.0
        assert data.busiest_group() in {"gA", "gB", "Environment"}
