"""The Figure 2 end-to-end design and profiling flow."""

import os

import pytest

from repro.errors import ValidationError
from repro.flow import FLOW_INVENTORY, FLOW_STEPS, run_design_flow
from repro.mapping import MappingModel
from repro.simulation import read_log

from tests.conftest import build_pingpong, build_two_cpu_platform


@pytest.fixture
def flow_result(tmp_path):
    app = build_pingpong()
    platform = build_two_cpu_platform()
    mapping = MappingModel(app, platform)
    mapping.map("g1", "cpu1")
    mapping.map("g2", "cpu2")
    return run_design_flow(
        app, platform, mapping, str(tmp_path), duration_us=5_000
    )


class TestArtifacts:
    def test_all_artifacts_written(self, flow_result):
        assert os.path.exists(flow_result.xmi_path)
        assert os.path.exists(flow_result.log_path)
        assert os.path.exists(flow_result.report_path)
        assert os.path.isdir(flow_result.code_directory)
        assert os.path.exists(
            os.path.join(flow_result.code_directory, "tut_runtime.c")
        )

    def test_log_file_parses(self, flow_result):
        log = read_log(flow_result.log_path)
        assert log.exec_records
        assert log.signal_records

    def test_report_contains_tables(self, flow_result):
        text = open(flow_result.report_path).read()
        assert "Process group execution times" in text
        assert "Number of signals between groups" in text

    def test_xmi_reparses_into_group_info(self, flow_result):
        from repro.profiling import group_info_from_xmi

        xml = open(flow_result.xmi_path).read()
        info = group_info_from_xmi(xml)
        assert info.group_of("ping1") == "g1"

    def test_profiling_object_populated(self, flow_result):
        assert flow_result.profiling.group_cycles["g1"] > 0
        assert flow_result.profiling.signals_between("g1", "g2") > 0

    def test_steps_enumerated(self, flow_result):
        assert flow_result.steps_run == FLOW_STEPS


class TestValidationGate:
    def test_rule_violation_blocks_flow(self, tmp_path):
        app = build_pingpong()
        # break the model: second «Application» class violates R1
        from repro.uml import Class

        rogue = Class("Rogue")
        app.package.add(rogue)
        app.profile.apply(rogue, "Application")
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        with pytest.raises(ValidationError):
            run_design_flow(app, platform, mapping, str(tmp_path))

    def test_non_strict_mode_continues(self, tmp_path):
        app = build_pingpong()
        from repro.uml import Class

        rogue = Class("Rogue")
        app.package.add(rogue)
        app.profile.apply(rogue, "Application")
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000,
            strict=False,
        )
        assert os.path.exists(result.report_path)


class TestInventory:
    def test_figure1_inventory_covers_tool_boxes(self):
        # Figure 1 boxes: the profile, the UML tool, the profiling tool,
        # and the FPGA target all have stand-ins
        assert "TUT-Profile" in FLOW_INVENTORY
        assert "Telelogic TAU G2" in FLOW_INVENTORY
        assert "UML Profiling tool" in FLOW_INVENTORY
        assert any("FPGA" in key for key in FLOW_INVENTORY)

    def test_skip_codegen_option(self, tmp_path):
        app = build_pingpong()
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000,
            generate_c=False,
        )
        assert not os.path.exists(
            os.path.join(result.code_directory, "tut_runtime.c")
        )


class TestErrorCapture:
    def _system(self):
        app = build_pingpong()
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        return app, platform, mapping

    def test_default_mode_still_raises(self, tmp_path):
        app, platform, mapping = self._system()
        with pytest.raises(TypeError):
            run_design_flow(
                app, platform, mapping, str(tmp_path), duration_us="bogus"
            )

    def test_continue_on_error_partial_result(self, tmp_path):
        app, platform, mapping = self._system()
        result = run_design_flow(
            app, platform, mapping, str(tmp_path),
            duration_us="bogus", continue_on_error=True,
        )
        assert not result.succeeded
        failed = result.failure_for("simulate")
        assert failed is not None and not failed.skipped
        assert "TypeError" in failed.error
        skipped = result.failure_for("profile")
        assert skipped is not None and skipped.skipped
        # independent steps still produced artefacts
        assert os.path.exists(result.xmi_path)
        assert result.simulation is None
        assert result.profiling is None
        assert result.log_path is None
        assert "log" not in result.artifacts

    def test_clean_run_reports_success(self, flow_result):
        assert flow_result.succeeded
        assert flow_result.failures == []

    def test_validation_failure_recorded_not_raised(self, tmp_path):
        app, platform, mapping = self._system()
        from repro.uml import Class

        rogue = Class("Rogue")
        app.package.add(rogue)
        app.profile.apply(rogue, "Application")
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=1_000,
            continue_on_error=True,
        )
        failed = result.failure_for("validate")
        assert failed is not None
        # validation gates nothing downstream: the rest of the flow ran
        assert result.profiling is not None
        assert os.path.exists(result.report_path)


class TestFaultsThroughFlow:
    def test_flow_with_fault_plan(self, tmp_path):
        from repro.cases.tutmac import TutmacParameters
        from repro.cases.tutwlan import build_tutwlan_system
        from repro.faults import build_campaign_plan

        app, platform, mapping = build_tutwlan_system(
            params=TutmacParameters(arq_enabled=True)
        )
        plan = build_campaign_plan(seed=2, fault_rate=0.05)
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=50_000,
            faults=plan,
        )
        assert result.succeeded
        assert result.profiling.fault_stats is not None
        assert result.profiling.fault_stats.injected == plan.stats.injected
        assert "Fault injection" in result.report_text


class TestExploreCampaignMetrics:
    def test_campaign_counters_land_in_metrics_json(self, tmp_path):
        import json

        app = build_pingpong()
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=2_000,
            trace=True,
            explore_factory=lambda: (
                build_pingpong(), build_two_cpu_platform()
            ),
        )
        assert result.succeeded
        zeroed = {
            "crashes": 0, "errors": 0, "quarantined": 0,
            "retries": 0, "timeouts": 0,
        }
        # the metrics artefact is rewritten after the explore step so the
        # observability report carries the campaign's supervisor counters
        with open(os.path.join(str(tmp_path), "metrics.json")) as handle:
            payload = json.load(handle)
        assert payload["results"]["campaign"] == zeroed
        with open(os.path.join(str(tmp_path), "exploration.json")) as handle:
            exploration = json.load(handle)
        assert exploration["supervisor"] == zeroed
        assert result.metrics.campaign == zeroed
