"""CRC-32: known vectors, implementation agreement, properties."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.util.crc import crc32, crc32_bitwise, crc32_bytes, crc32_of_int


class TestKnownVectors:
    def test_check_value(self):
        # the canonical CRC-32 check value for "123456789"
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    def test_matches_zlib(self):
        for sample in (b"", b"a", b"hello world", bytes(range(256))):
            assert crc32(sample) == zlib.crc32(sample) & 0xFFFFFFFF

    def test_bad_byte_rejected(self):
        with pytest.raises(ValueError):
            crc32([300])


class TestImplementationAgreement:
    @given(st.binary(max_size=200))
    def test_table_matches_bitwise(self, data):
        assert crc32(data) == crc32_bitwise(data)

    @given(st.binary(max_size=200))
    def test_matches_zlib_property(self, data):
        assert crc32_bytes(data) == zlib.crc32(data) & 0xFFFFFFFF


class TestIncremental:
    @given(st.binary(max_size=100), st.binary(max_size=100))
    def test_seed_chains_computation(self, first, second):
        whole = crc32(first + second)
        chained = crc32(second, seed=crc32(first))
        assert whole == chained


class TestIntForm:
    def test_deterministic(self):
        assert crc32_of_int(1234) == crc32_of_int(1234)

    def test_matches_little_endian_bytes(self):
        assert crc32_of_int(0x12345678) == crc32(b"\x78\x56\x34\x12")

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_in_range(self, value):
        assert 0 <= crc32_of_int(value) <= 0xFFFFFFFF

    @given(st.integers(min_value=0, max_value=2**31))
    def test_distinct_inputs_rarely_collide(self, value):
        # not a collision test, just sanity: crc(x) != crc(x+1) for these
        assert crc32_of_int(value) != crc32_of_int(value + 1)
