"""ASCII table renderer."""

import pytest

from repro.util.tables import render_percentage, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("Name", "Count"), [("alpha", 10), ("b", 2000)])
        lines = text.splitlines()
        assert "Name" in lines[1]
        # numeric column right-aligned: both numbers end at same column
        data_lines = [l for l in lines if "alpha" in l or " b " in l]
        assert data_lines[0].rstrip().endswith("10")
        assert data_lines[1].rstrip().endswith("2000")

    def test_title(self):
        text = render_table(("A",), [(1,)], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = render_table(("V",), [(3.14159,)])
        assert "3.1" in text
        assert "3.14159" not in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(("A", "B"), [(1,)])

    def test_mixed_column_left_aligned(self):
        text = render_table(("X",), [("text",), (5,)])
        assert "text" in text


class TestPercentage:
    def test_paper_format(self):
        assert render_percentage(0.921) == "92.1 %"
        assert render_percentage(0.0) == "0.0 %"
        assert render_percentage(1.0) == "100.0 %"
