"""ensure_parent: every artefact writer must create missing directories."""

from pathlib import Path

from repro.util.fsio import ensure_parent


class TestEnsureParent:
    def test_creates_nested_ancestors(self, tmp_path):
        target = tmp_path / "a" / "b" / "c" / "out.json"
        returned = ensure_parent(target)
        assert returned == target
        assert isinstance(returned, Path)
        assert target.parent.is_dir()
        assert not target.exists()  # only the parent is created

    def test_idempotent_and_accepts_strings(self, tmp_path):
        target = str(tmp_path / "x" / "y.txt")
        ensure_parent(target)
        result = ensure_parent(target)  # second call must not raise
        assert result == Path(target)

    def test_chainable_write(self, tmp_path):
        target = tmp_path / "deep" / "er" / "note.txt"
        ensure_parent(target).write_text("ok")
        assert target.read_text() == "ok"


class TestWritersCreateNestedDirs:
    """Regression: artefact writers used to fail on nested --out paths."""

    def test_logwriter_write(self, tmp_path, pingpong_system):
        from repro.simulation.system import SystemSimulation

        application, platform, mapping = pingpong_system
        result = SystemSimulation(application, platform, mapping).run(1_000)
        target = tmp_path / "runs" / "42" / "sim.tutlog"
        result.writer.write(str(target))
        assert target.read_text().startswith("TUTLOG")

    def test_write_chrome_trace(self, tmp_path):
        from repro.observability.export import write_chrome_trace
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        tracer.instant("mark", ("g", "lane"), time_ps=0)
        target = tmp_path / "traces" / "nested" / "trace.json"
        write_chrome_trace(tracer, str(target))
        assert target.read_text().startswith("{")

    def test_checkpoint_store_save(self, tmp_path):
        from repro.checkpoint import CheckpointStore, Snapshot, state_hash

        state = {"kernel": {"now_ps": 0}}
        snapshot = Snapshot("tag", 0, 0, state, state_hash(state))
        path = CheckpointStore(tmp_path / "deep" / "store").save(snapshot)
        assert path.is_file()
