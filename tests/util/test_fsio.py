"""ensure_parent: every artefact writer must create missing directories."""

import json
from pathlib import Path

import pytest

from repro.util.fsio import ensure_parent


@pytest.fixture
def service_request():
    from repro.service import JobRequest
    from tests.exploration.test_engine import fault_free_specs

    return JobRequest(specs=tuple(fault_free_specs()), workers=0)


class TestEnsureParent:
    def test_creates_nested_ancestors(self, tmp_path):
        target = tmp_path / "a" / "b" / "c" / "out.json"
        returned = ensure_parent(target)
        assert returned == target
        assert isinstance(returned, Path)
        assert target.parent.is_dir()
        assert not target.exists()  # only the parent is created

    def test_idempotent_and_accepts_strings(self, tmp_path):
        target = str(tmp_path / "x" / "y.txt")
        ensure_parent(target)
        result = ensure_parent(target)  # second call must not raise
        assert result == Path(target)

    def test_chainable_write(self, tmp_path):
        target = tmp_path / "deep" / "er" / "note.txt"
        ensure_parent(target).write_text("ok")
        assert target.read_text() == "ok"


class TestWritersCreateNestedDirs:
    """Regression: artefact writers used to fail on nested --out paths."""

    def test_logwriter_write(self, tmp_path, pingpong_system):
        from repro.simulation.system import SystemSimulation

        application, platform, mapping = pingpong_system
        result = SystemSimulation(application, platform, mapping).run(1_000)
        target = tmp_path / "runs" / "42" / "sim.tutlog"
        result.writer.write(str(target))
        assert target.read_text().startswith("TUTLOG")

    def test_write_chrome_trace(self, tmp_path):
        from repro.observability.export import write_chrome_trace
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        tracer.instant("mark", ("g", "lane"), time_ps=0)
        target = tmp_path / "traces" / "nested" / "trace.json"
        write_chrome_trace(tracer, str(target))
        assert target.read_text().startswith("{")

    def test_checkpoint_store_save(self, tmp_path):
        from repro.checkpoint import CheckpointStore, Snapshot, state_hash

        state = {"kernel": {"now_ps": 0}}
        snapshot = Snapshot("tag", 0, 0, state, state_hash(state))
        path = CheckpointStore(tmp_path / "deep" / "store").save(snapshot)
        assert path.is_file()


class TestWriteJsonAtomic:
    """write_json_atomic: crash-safe JSON for every service artefact."""

    def test_creates_nested_parents_and_writes(self, tmp_path):
        from repro.util.fsio import write_json_atomic

        target = tmp_path / "deep" / "spool" / "jobs" / "j1.json"
        returned = write_json_atomic(target, {"b": 2, "a": 1})
        assert returned == target
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}
        # keys are sorted for stable diffs
        assert target.read_text().index('"a"') < target.read_text().index('"b"')

    def test_replace_is_atomic_no_temp_left_behind(self, tmp_path):
        from repro.util.fsio import write_json_atomic

        target = tmp_path / "out.json"
        write_json_atomic(target, {"v": 1})
        write_json_atomic(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_unserialisable_payload_leaves_no_debris(self, tmp_path):
        from repro.util.fsio import write_json_atomic

        target = tmp_path / "bad.json"
        with pytest.raises(TypeError):
            write_json_atomic(target, {"oops": object()})
        assert list(tmp_path.iterdir()) == []


class TestServiceWritersCreateNestedDirs:
    """Regression: every farm artefact writer handles nested paths."""

    def test_job_spool_in_nested_dir(self, tmp_path, service_request):
        from repro.service import JobStore

        store = JobStore(tmp_path / "very" / "deep" / "spool")
        record = store.submit(service_request)
        assert store.get(record.id).state == "queued"

    def test_service_log_in_nested_dir(self, tmp_path):
        from repro.service.server import ExplorationService

        service = ExplorationService(
            tmp_path / "spool",
            None,
            pool_size=1,
            log_path=tmp_path / "logs" / "by-day" / "service.log",
        )
        service.log("hello")
        assert "hello" in (
            tmp_path / "logs" / "by-day" / "service.log"
        ).read_text()

    def test_bench_envelope_in_nested_dir(self, tmp_path):
        from repro.util.fsio import write_json_atomic
        from repro.util.jsonout import envelope

        target = tmp_path / "bench" / "out" / "BENCH_service.json"
        write_json_atomic(target, envelope("bench-service", {"ok": True}))
        assert json.loads(target.read_text())["schema"] == "repro.bench-service/1"
