"""Shared fixtures: small reference applications and the TUTMAC system."""

from __future__ import annotations

import pytest

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.uml import Port


def build_pingpong() -> ApplicationModel:
    """A two-process timer-driven ping-pong application."""
    app = ApplicationModel("PingPong")
    app.signal("tick", [("n", "Int32")])
    app.signal("tock", [("n", "Int32")])
    ping = app.component("Ping")
    ping.add_port(Port("out", required=["tick"], provided=["tock"]))
    machine = app.behavior(ping)
    machine.variable("count", 0)
    machine.state("idle", initial=True, entry="set_timer(t, 100);")
    machine.state("wait")
    machine.on_timer(
        "idle", "wait", "t", effect="count = count + 1; send tick(count) via out;"
    )
    machine.on_signal(
        "wait", "idle", "tock", params=["n"], effect="set_timer(t, 100);"
    )
    pong = app.component("Pong")
    pong.add_port(Port("io", provided=["tick"], required=["tock"]))
    machine2 = app.behavior(pong)
    machine2.variable("echoed", 0)
    machine2.state("ready", initial=True)
    machine2.on_signal(
        "ready",
        "ready",
        "tick",
        params=["n"],
        effect="echoed = echoed + 1; send tock(n) via io;",
        internal=True,
    )
    app.process(app.top, "ping1", ping)
    app.process(app.top, "pong1", pong)
    app.connect(app.top, ("ping1", "out"), ("pong1", "io"))
    app.group("g1")
    app.group("g2")
    app.assign("ping1", "g1")
    app.assign("pong1", "g2")
    return app


def build_two_cpu_platform() -> PlatformModel:
    """Two NiosCPUs on one HIBI segment."""
    platform = PlatformModel("TwoCpu", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.instantiate("cpu2", "NiosCPU")
    platform.segment("seg1", "HIBISegment")
    platform.attach("cpu1", "seg1", address=0x100)
    platform.attach("cpu2", "seg1", address=0x200)
    return platform


@pytest.fixture
def pingpong():
    return build_pingpong()


@pytest.fixture
def two_cpu_platform():
    return build_two_cpu_platform()


@pytest.fixture
def pingpong_system(pingpong, two_cpu_platform):
    mapping = MappingModel(pingpong, two_cpu_platform)
    mapping.map("g1", "cpu1")
    mapping.map("g2", "cpu2")
    return pingpong, two_cpu_platform, mapping


@pytest.fixture(scope="session")
def tutmac_app():
    from repro.cases.tutmac import build_tutmac

    return build_tutmac()


@pytest.fixture(scope="session")
def tutmac_reference_result(tutmac_app):
    from repro.simulation import run_reference_simulation

    return run_reference_simulation(tutmac_app, duration_us=100_000)


@pytest.fixture(scope="session")
def tutwlan_system():
    from repro.cases.tutwlan import build_tutwlan_system

    return build_tutwlan_system()
