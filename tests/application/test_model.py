"""ApplicationModel construction: components, processes, groups."""

import pytest

from repro.errors import ModelError
from repro.application import ApplicationModel, ENVIRONMENT_GROUP
from repro.uml import Port


@pytest.fixture
def app():
    return ApplicationModel("App")


def add_component(app, name="C"):
    component = app.component(name)
    machine = app.behavior(component)
    machine.state("s", initial=True)
    return component


class TestSignals:
    def test_declare_and_find(self, app):
        signal = app.signal("ping", [("n", "Int32")], payload_bits=128)
        assert app.find_signal("ping") is signal
        assert signal.size_bits() > 128

    def test_duplicate_rejected(self, app):
        app.signal("ping")
        with pytest.raises(ModelError):
            app.signal("ping")

    def test_unknown_rejected(self, app):
        with pytest.raises(ModelError):
            app.find_signal("ghost")


class TestComponents:
    def test_component_is_stereotyped_active_class(self, app):
        component = app.component("C", code_memory=100, data_memory=200)
        assert component.is_active
        assert component.has_stereotype("ApplicationComponent")
        assert component.tag("ApplicationComponent", "CodeMemory") == 100

    def test_structural_is_plain_passive_class(self, app):
        structural = app.structural("S")
        assert structural.is_structural
        assert not structural.applied_stereotypes

    def test_name_collision_rejected(self, app):
        app.component("X")
        with pytest.raises(ModelError):
            app.structural("X")

    def test_top_is_application(self, app):
        assert app.top.has_stereotype("Application")


class TestProcesses:
    def test_process_part_stereotyped(self, app):
        component = add_component(app)
        process = app.process(app.top, "p1", component, priority=3)
        assert process.part.has_stereotype("ApplicationProcess")
        assert process.priority() == 3
        assert process.process_type() == "general"

    def test_duplicate_process_rejected(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        with pytest.raises(ModelError):
            app.process(app.top, "p1", component)

    def test_process_requires_functional_component(self, app):
        structural = app.structural("S")
        with pytest.raises(ModelError):
            app.process(app.top, "p1", structural)

    def test_environment_process_unstereotyped(self, app):
        component = add_component(app)
        process = app.environment_process("env1", component)
        assert process.is_environment
        assert not process.part.applied_stereotypes
        assert process in app.environment_processes()
        assert process not in app.functional_processes()

    def test_behavior_accessor(self, app):
        component = add_component(app)
        process = app.process(app.top, "p1", component)
        assert process.behavior is component.classifier_behavior


class TestGrouping:
    def test_assign_and_query(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        app.group("g1")
        app.assign("p1", "g1")
        assert app.group_of("p1") == "g1"
        assert [m.name for m in app.processes_in("g1")] == ["p1"]

    def test_double_assignment_rejected(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        app.group("g1")
        app.group("g2")
        app.assign("p1", "g1")
        with pytest.raises(ModelError):
            app.assign("p1", "g2")

    def test_unassign_then_reassign(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        app.group("g1")
        app.group("g2")
        app.assign("p1", "g1")
        app.unassign("p1")
        assert app.group_of("p1") is None
        app.assign("p1", "g2")
        assert app.group_of("p1") == "g2"

    def test_fixed_grouping_cannot_be_unassigned(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        app.group("g1")
        app.assign("p1", "g1", fixed=True)
        with pytest.raises(ModelError):
            app.unassign("p1")

    def test_group_assignment_maps_environment(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        app.environment_process("env1", add_component(app, "E"))
        app.group("g1")
        app.assign("p1", "g1")
        assignment = app.group_assignment()
        assert assignment["p1"] == "g1"
        assert assignment["env1"] == ENVIRONMENT_GROUP

    def test_unknown_group_rejected(self, app):
        component = add_component(app)
        app.process(app.top, "p1", component)
        with pytest.raises(ModelError):
            app.assign("p1", "ghost")

    def test_duplicate_group_rejected(self, app):
        app.group("g1")
        with pytest.raises(ModelError):
            app.group("g1")


class TestConnect:
    def test_connect_validates_names(self, app):
        component = add_component(app)
        component.add_port(Port("p"))
        app.process(app.top, "p1", component)
        with pytest.raises(ModelError):
            app.connect(app.top, ("p1", "nope"), ("p1", "p"))
        with pytest.raises(ModelError):
            app.connect(app.top, ("ghost", "p"), ("p1", "p"))
        with pytest.raises(ModelError):
            app.connect(app.top, (None, "noSuchBoundary"), ("p1", "p"))

    def test_bind_boundary_validations(self, app):
        component = add_component(app)
        component.add_port(Port("out"))
        app.top.add_port(Port("pB"))
        env = app.environment_process("env1", component)
        app.bind_boundary("pB", "env1", "out")
        with pytest.raises(ModelError):  # already bound
            app.bind_boundary("pB", "env1", "out")
        with pytest.raises(ModelError):  # not a boundary port
            app.bind_boundary("ghost", "env1", "out")

    def test_bind_boundary_requires_environment_process(self, app):
        component = add_component(app)
        component.add_port(Port("out"))
        app.top.add_port(Port("pB"))
        app.process(app.top, "p1", component)
        with pytest.raises(ModelError):
            app.bind_boundary("pB", "p1", "out")
