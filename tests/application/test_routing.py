"""Composite-structure routing: delegation, boundaries, signal filtering."""

import pytest

from repro.errors import ModelError
from repro.application import ApplicationModel
from repro.uml import Port


def simple_component(app, name, ports):
    component = app.component(name)
    for port in ports:
        component.add_port(port)
    machine = app.behavior(component)
    machine.state("s", initial=True)
    return component


class TestDirectRouting:
    def test_part_to_part(self):
        app = ApplicationModel("A")
        app.signal("m")
        sender = simple_component(app, "S", [Port("out", required=["m"])])
        receiver = simple_component(app, "R", [Port("inp", provided=["m"])])
        app.process(app.top, "s1", sender)
        app.process(app.top, "r1", receiver)
        app.connect(app.top, ("s1", "out"), ("r1", "inp"))
        assert app.route("s1", "m", "out") == ("r1", "inp")
        assert app.route("s1", "m") == ("r1", "inp")

    def test_no_route_raises(self):
        app = ApplicationModel("A")
        app.signal("m")
        sender = simple_component(app, "S", [Port("out", required=["m"])])
        app.process(app.top, "s1", sender)
        with pytest.raises(ModelError):
            app.route("s1", "m")

    def test_ambiguous_route_raises(self):
        app = ApplicationModel("A")
        app.signal("m")
        sender = simple_component(app, "S", [Port("out", required=["m"])])
        receiver = simple_component(app, "R", [Port("inp", provided=["m"])])
        app.process(app.top, "s1", sender)
        app.process(app.top, "r1", receiver)
        app.process(app.top, "r2", receiver)
        app.connect(app.top, ("s1", "out"), ("r1", "inp"))
        app.connect(app.top, ("s1", "out"), ("r2", "inp"))
        with pytest.raises(ModelError):
            app.route("s1", "m", "out")

    def test_port_must_emit_signal(self):
        app = ApplicationModel("A")
        app.signal("m")
        app.signal("other")
        sender = simple_component(app, "S", [Port("out", required=["m"])])
        receiver = simple_component(app, "R", [Port("inp", provided=["other"])])
        app.process(app.top, "s1", sender)
        app.process(app.top, "r1", receiver)
        app.connect(app.top, ("s1", "out"), ("r1", "inp"))
        with pytest.raises(ModelError):
            app.route("s1", "other")  # sender port does not emit it


class TestSignalFiltering:
    def test_shared_port_disambiguated_by_provided_signals(self):
        app = ApplicationModel("A")
        app.signal("a")
        app.signal("b")
        receiver_a = simple_component(app, "RA", [Port("p", provided=["a"])])
        receiver_b = simple_component(app, "RB", [Port("p", provided=["b"])])
        box = app.structural("Box")
        box.add_port(Port("bp"))
        app.process(box, "ra", receiver_a)
        app.process(box, "rb", receiver_b)
        app.connect(box, (None, "bp"), ("ra", "p"))
        app.connect(box, (None, "bp"), ("rb", "p"))
        sender = simple_component(app, "S", [Port("out", required=["a", "b"])])
        app.process(app.top, "s1", sender)
        app.part(app.top, "box1", box)
        app.connect(app.top, ("s1", "out"), ("box1", "bp"))
        assert app.route("s1", "a") == ("ra", "p")
        assert app.route("s1", "b") == ("rb", "p")

    def test_reply_path_through_shared_port(self):
        app = ApplicationModel("A")
        app.signal("req")
        app.signal("rsp")
        server = simple_component(
            app, "Server", [Port("p", provided=["req"], required=["rsp"])]
        )
        client_a = simple_component(
            app, "ClientA", [Port("c", required=["req"], provided=["rsp"])]
        )
        app.process(app.top, "server1", server)
        app.process(app.top, "client1", client_a)
        app.connect(app.top, ("server1", "p"), ("client1", "c"))
        assert app.route("client1", "req") == ("server1", "p")
        assert app.route("server1", "rsp") == ("client1", "c")


class TestDelegationChains:
    def build_nested(self):
        app = ApplicationModel("A")
        app.signal("m")
        leaf = simple_component(app, "Leaf", [Port("lp", provided=["m"])])
        inner = app.structural("Inner")
        inner.add_port(Port("ip"))
        app.process(inner, "leaf1", leaf)
        app.connect(inner, (None, "ip"), ("leaf1", "lp"))
        outer = app.structural("Outer")
        outer.add_port(Port("op"))
        app.part(outer, "inner1", inner)
        app.connect(outer, (None, "op"), ("inner1", "ip"))
        sender = simple_component(app, "S", [Port("out", required=["m"])])
        app.process(app.top, "s1", sender)
        app.part(app.top, "outer1", outer)
        app.connect(app.top, ("s1", "out"), ("outer1", "op"))
        return app

    def test_two_level_descent(self):
        app = self.build_nested()
        assert app.route("s1", "m") == ("leaf1", "lp")

    def test_routing_table_lists_constrained_routes(self):
        app = self.build_nested()
        table = app.routing_table()
        assert table[("s1", "out", "m")] == ("leaf1", "lp")

    def test_outward_route_from_nested_leaf(self):
        app = ApplicationModel("A")
        app.signal("up")
        leaf = simple_component(app, "Leaf", [Port("lp", required=["up"])])
        inner = app.structural("Inner")
        inner.add_port(Port("ip"))
        app.process(inner, "leaf1", leaf)
        app.connect(inner, (None, "ip"), ("leaf1", "lp"))
        receiver = simple_component(app, "R", [Port("rp", provided=["up"])])
        app.process(app.top, "r1", receiver)
        app.part(app.top, "inner1", inner)
        app.connect(app.top, ("inner1", "ip"), ("r1", "rp"))
        assert app.route("leaf1", "up") == ("r1", "rp")


class TestEnvironmentBoundary:
    def test_round_trip_through_boundary(self):
        app = ApplicationModel("A")
        app.signal("req")
        app.signal("rsp")
        inner = simple_component(
            app, "I", [Port("io", provided=["req"], required=["rsp"])]
        )
        app.process(app.top, "i1", inner)
        app.top.add_port(Port("pEnv"))
        app.connect(app.top, (None, "pEnv"), ("i1", "io"))
        tester = simple_component(
            app, "T", [Port("out", required=["req"], provided=["rsp"])]
        )
        app.environment_process("t1", tester)
        app.bind_boundary("pEnv", "t1", "out")
        assert app.route("t1", "req") == ("i1", "io")
        assert app.route("i1", "rsp") == ("t1", "out")

    def test_unbound_boundary_has_no_route(self):
        app = ApplicationModel("A")
        app.signal("m")
        inner = simple_component(app, "I", [Port("io", required=["m"])])
        app.process(app.top, "i1", inner)
        app.top.add_port(Port("pEnv"))
        app.connect(app.top, (None, "pEnv"), ("i1", "io"))
        with pytest.raises(ModelError):
            app.route("i1", "m")

    def test_shared_boundary_port_filters_by_env_port(self):
        # two env processes cannot bind one boundary port, but one env
        # process reached through a boundary still filters by signal
        app = ApplicationModel("A")
        app.signal("x")
        app.signal("y")
        inner = simple_component(app, "I", [Port("io", required=["x", "y"])])
        app.process(app.top, "i1", inner)
        app.top.add_port(Port("pEnv"))
        app.connect(app.top, (None, "pEnv"), ("i1", "io"))
        env = simple_component(app, "E", [Port("e", provided=["x"])])
        app.environment_process("e1", env)
        app.bind_boundary("pEnv", "e1", "e")
        assert app.route("i1", "x") == ("e1", "e")
        with pytest.raises(ModelError):
            app.route("i1", "y")  # env port does not accept y


class TestSingleInstantiation:
    def test_double_instantiation_rejected(self):
        app = ApplicationModel("A")
        app.signal("m")
        leaf = simple_component(app, "Leaf", [Port("lp", provided=["m"])])
        box = app.structural("Box")
        box.add_port(Port("bp"))
        app.process(box, "leaf1", leaf)
        app.part(app.top, "b1", box)
        app.part(app.top, "b2", box)
        with pytest.raises(ModelError):
            app.routing_table()


class TestTutmacRouting:
    ROUTES = [
        ("user", "msdu_req", ("msduRec", "pUser")),
        ("msduRec", "sdu_tx", ("frag", "pUi")),
        ("frag", "pdu_tx", ("rca", "DataPort")),
        ("frag", "frag_crc_req", ("crc", "pReq")),
        ("crc", "frag_crc_cnf", ("frag", "pCrc")),
        ("crc", "defrag_crc_cnf", ("defrag", "pCrc")),
        ("rca", "phy_tx", ("phy", "pMac")),
        ("phy", "phy_rx", ("rca", "PhyPort")),
        ("rca", "pdu_rx", ("defrag", "pRca")),
        ("defrag", "sdu_rx", ("msduDel", "pDp")),
        ("msduDel", "msdu_ind", ("user", "pMac")),
        ("mng", "beacon_req", ("rca", "MngPort")),
        ("rmng", "meas_req", ("phy", "pMac")),
        ("phy", "meas_ind", ("rmng", "PhyPort")),
        ("mngUser", "mng_cmd", ("mng", "MngUserPort")),
        ("rca", "ch_load", ("rmng", "RChPort")),
    ]

    @pytest.mark.parametrize("sender,signal,expected", ROUTES)
    def test_paper_figure5_routes(self, tutmac_app, sender, signal, expected):
        assert tutmac_app.route(sender, signal) == expected
