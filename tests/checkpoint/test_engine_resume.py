"""Resumable exploration campaigns: interrupt, resume, identical ranking."""

import pytest

from repro.checkpoint import CheckpointStore
from repro.errors import ExplorationError, SimulationInterrupted
from repro.exploration import mapping_sweep_specs, run_candidates

DURATION_US = 3_000
STRIDE = 50
FACTORY = "repro.cases.tutwlan:exploration_factory"


@pytest.fixture(scope="module")
def specs():
    return mapping_sweep_specs(FACTORY, duration_us=DURATION_US, limit=3)


@pytest.fixture(scope="module")
def reference_ranking(specs):
    run = run_candidates(specs, workers=0)
    return [(o.spec.digest(), o.result.stable_hash(), o.cost) for o in run.ranking()]


def ranking_key(run):
    return [(o.spec.digest(), o.result.stable_hash(), o.cost) for o in run.ranking()]


def interrupt_campaign(specs, tmp_path, budget=150):
    """Run until the cumulative event budget trips; returns (cache, store)."""
    cache_dir = str(tmp_path / "cache")
    checkpoint_dir = str(tmp_path / "checkpoints")
    with pytest.raises(SimulationInterrupted):
        run_candidates(
            specs,
            workers=0,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=STRIDE,
            interrupt_after_events=budget,
        )
    return cache_dir, checkpoint_dir


@pytest.mark.parametrize("workers", [0, 1, 4])
class TestResumedCampaign:
    def test_ranking_identical_to_uninterrupted(
        self, specs, reference_ranking, tmp_path, workers
    ):
        cache_dir, checkpoint_dir = interrupt_campaign(specs, tmp_path)
        resumed = run_candidates(
            specs,
            workers=workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=STRIDE,
        )
        assert ranking_key(resumed) == reference_ranking
        # the candidate finished before the interrupt is served from cache
        assert resumed.cache_hits >= 1
        assert resumed.evaluated == len(specs) - resumed.cache_hits

    def test_snapshots_pruned_once_results_cached(
        self, specs, tmp_path, workers
    ):
        cache_dir, checkpoint_dir = interrupt_campaign(specs, tmp_path)
        run_candidates(
            specs,
            workers=workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_events=STRIDE,
        )
        assert CheckpointStore(checkpoint_dir).list() == []


class TestRepeatedInterruption:
    def test_two_interruptions_then_finish(self, specs, reference_ranking, tmp_path):
        cache_dir = str(tmp_path / "cache")
        checkpoint_dir = str(tmp_path / "checkpoints")
        interruptions = 0
        for _ in range(10):
            try:
                final = run_candidates(
                    specs,
                    workers=0,
                    cache_dir=cache_dir,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every_events=STRIDE,
                    interrupt_after_events=120,
                )
                break
            except SimulationInterrupted:
                interruptions += 1
        else:
            pytest.fail("campaign never completed")
        assert interruptions >= 2
        assert ranking_key(final) == reference_ranking


class TestValidation:
    def test_interrupt_requires_checkpoint_dir(self, specs):
        with pytest.raises(ExplorationError, match="checkpoint_dir"):
            run_candidates(specs, workers=0, interrupt_after_events=10)

    def test_interrupt_is_serial_only(self, specs, tmp_path):
        with pytest.raises(ExplorationError, match="serial"):
            run_candidates(
                specs,
                workers=2,
                checkpoint_dir=str(tmp_path),
                interrupt_after_events=10,
            )

    def test_checkpointing_needs_digestable_specs(self, specs, tmp_path):
        import dataclasses

        local = dataclasses.replace(specs[0], builder=lambda: None)
        with pytest.raises(ExplorationError, match="importable by name"):
            run_candidates(
                [local], workers=0, checkpoint_dir=str(tmp_path)
            )
