"""Checkpoint policies must be resume-invariant (cumulative counters)."""

import pytest

from repro.checkpoint import EveryEvents, EveryInterval
from repro.errors import CheckpointError
from repro.simulation.kernel import PS_PER_US


class TestEveryEvents:
    def test_due_at_stride_multiples(self):
        policy = EveryEvents(100)
        assert policy.due(0, 100)
        assert policy.due(0, 200)
        assert not policy.due(0, 150)

    def test_resume_invariant(self):
        # a run restored at event 250 fires at the same instants (300,
        # 400, ...) the uninterrupted run would have
        fresh, resumed = EveryEvents(100), EveryEvents(100)
        fresh.reset(0, 0)
        resumed.reset(0, 250)
        fired_fresh = [n for n in range(251, 500) if fresh.due(0, n)]
        fired_resumed = [n for n in range(251, 500) if resumed.due(0, n)]
        assert fired_fresh == fired_resumed == [300, 400]

    def test_positive_stride_required(self):
        with pytest.raises(CheckpointError):
            EveryEvents(0)


class TestEveryInterval:
    def test_due_once_per_time_bucket(self):
        policy = EveryInterval(10)
        policy.reset(0, 0)
        assert not policy.due(5 * PS_PER_US, 1)
        assert policy.due(11 * PS_PER_US, 2)
        assert not policy.due(12 * PS_PER_US, 3)  # same bucket
        assert policy.due(25 * PS_PER_US, 4)

    def test_reset_anchors_at_restored_clock(self):
        # restoring inside bucket 3 must not re-fire bucket 3's snapshot
        policy = EveryInterval(10)
        policy.reset(34 * PS_PER_US, 100)
        assert not policy.due(38 * PS_PER_US, 101)
        assert policy.due(41 * PS_PER_US, 102)

    def test_positive_interval_required(self):
        with pytest.raises(CheckpointError):
            EveryInterval(-1)
