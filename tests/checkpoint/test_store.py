"""Snapshot store: atomic writes, dedupe, strict loading, pruning."""

import json

import pytest

from repro.checkpoint import CheckpointStore, Snapshot, state_hash
from repro.errors import CheckpointError


def make_snapshot(tag="t", now_ps=1_000, dispatched=42, extra=0):
    state = {"kernel": {"now_ps": now_ps, "dispatched": dispatched}, "x": extra}
    return Snapshot(
        tag=tag,
        now_ps=now_ps,
        dispatched=dispatched,
        state=state,
        digest=state_hash(state),
    )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_snapshot())
        loaded = store.load(path)
        assert loaded == make_snapshot()

    def test_filename_embeds_position_and_hash(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snapshot = make_snapshot(dispatched=7)
        path = store.save(snapshot)
        assert path.name == f"{7:012d}-{snapshot.digest[:12]}.json"
        assert path.parent.name == "t"

    def test_resaving_identical_state_is_a_noop(self, tmp_path):
        store = CheckpointStore(tmp_path)
        first = store.save(make_snapshot())
        second = store.save(make_snapshot())
        assert first == second
        assert len(store.list("t")) == 1

    def test_divergent_state_at_same_position_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_snapshot(extra=0))
        with pytest.raises(CheckpointError, match="diverged"):
            store.save(make_snapshot(extra=1))

    def test_payload_uses_versioned_envelope(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_snapshot())
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.checkpoint/1"


class TestStrictLoading:
    def test_corrupted_json_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_snapshot())
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.load(path)

    def test_future_schema_version_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_snapshot())
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.checkpoint/2"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="schema"):
            store.load(path)

    def test_tampered_state_fails_hash_check(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_snapshot())
        payload = json.loads(path.read_text())
        payload["results"]["state"]["x"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load(path)

    def test_missing_field_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(make_snapshot())
        payload = json.loads(path.read_text())
        del payload["results"]["state_hash"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="missing field"):
            store.load(path)


class TestListingAndLatest:
    def test_list_sorts_chronologically(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for dispatched in (300, 5, 40):
            store.save(make_snapshot(now_ps=dispatched * 10, dispatched=dispatched))
        positions = [store.load(p).dispatched for p in store.list("t")]
        assert positions == [5, 40, 300]

    def test_latest_returns_most_advanced(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for dispatched in (5, 300, 40):
            store.save(make_snapshot(now_ps=dispatched * 10, dispatched=dispatched))
        assert store.latest("t").dispatched == 300

    def test_latest_skips_unreadable_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_snapshot(now_ps=10, dispatched=1))
        bad = store.save(make_snapshot(now_ps=20, dispatched=2))
        bad.write_text("{ truncated")
        assert store.latest("t").dispatched == 1

    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).latest("missing") is None

    def test_prune_removes_tag_directory(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_snapshot(now_ps=10, dispatched=1))
        store.save(make_snapshot(now_ps=20, dispatched=2))
        assert store.prune("t") == 2
        assert store.list("t") == []
        assert not (tmp_path / "t").exists()
