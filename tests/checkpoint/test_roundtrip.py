"""Interrupt/resume round trips must replay byte-identically.

The acceptance bar for the checkpoint subsystem: a run interrupted at an
arbitrary event and resumed from its snapshot produces the **same bytes**
— tutlog, Chrome trace, aggregated metrics — as the uninterrupted run.
"""

import dataclasses

import pytest

from repro.cases.tutmac import TutmacParameters
from repro.cases.tutwlan import build_tutwlan_system
from repro.checkpoint import (
    Checkpointer,
    CheckpointStore,
    EveryEvents,
    resume_simulation,
)
from repro.errors import CheckpointError, SimulationError, SimulationInterrupted
from repro.faults.campaign import build_campaign_plan
from repro.observability.export import render_chrome_trace
from repro.observability.metrics import collect_metrics
from repro.observability.tracer import Tracer
from repro.simulation.system import SystemSimulation

DURATION_US = 20_000
STRIDE = 100
INTERRUPT_AT = 401


def build_simulation(faulted: bool, traced: bool = True):
    """A fresh TUTWLAN simulation (optionally ARQ + fault plan + tracer)."""
    if faulted:
        application, platform, mapping = build_tutwlan_system(
            params=TutmacParameters(arq_enabled=True)
        )
        plan = build_campaign_plan(seed=7, fault_rate=0.05)
    else:
        application, platform, mapping = build_tutwlan_system()
        plan = None
    tracer = Tracer() if traced else None
    return SystemSimulation(
        application, platform, mapping, faults=plan, tracer=tracer
    )


def run_to_completion(simulation, store_root, interrupt=None):
    checkpointer = Checkpointer(
        CheckpointStore(store_root),
        EveryEvents(STRIDE),
        tag="t",
        interrupt_after_events=interrupt,
    )
    checkpointer.attach(simulation)
    try:
        return simulation.run(DURATION_US), checkpointer
    finally:
        checkpointer.detach()


@pytest.mark.parametrize("faulted", [False, True], ids=["plain", "faulted"])
class TestByteIdenticalResume:
    def test_interrupted_resume_reproduces_reference(self, tmp_path, faulted):
        reference_sim = build_simulation(faulted)
        reference, _ = run_to_completion(reference_sim, tmp_path / "ref")

        interrupted_sim = build_simulation(faulted)
        with pytest.raises(SimulationInterrupted) as excinfo:
            run_to_completion(
                interrupted_sim, tmp_path / "int", interrupt=INTERRUPT_AT
            )
        snapshot = excinfo.value.snapshot
        assert snapshot.dispatched == INTERRUPT_AT

        resumed_sim = build_simulation(faulted)
        resume_simulation(resumed_sim, snapshot)
        resumed, _ = run_to_completion(resumed_sim, tmp_path / "int")

        assert resumed.writer.render() == reference.writer.render()
        assert resumed.dispatched_events == reference.dispatched_events
        assert resumed.end_time_ps == reference.end_time_ps
        assert render_chrome_trace(resumed_sim.tracer) == render_chrome_trace(
            reference_sim.tracer
        )
        reference_metrics = collect_metrics(
            reference_sim.tracer, reference.end_time_ps
        )
        resumed_metrics = collect_metrics(resumed_sim.tracer, resumed.end_time_ps)
        assert resumed_metrics.to_dict() == reference_metrics.to_dict()

    def test_resume_without_tracer(self, tmp_path, faulted):
        reference_sim = build_simulation(faulted, traced=False)
        reference, _ = run_to_completion(reference_sim, tmp_path / "ref")

        interrupted_sim = build_simulation(faulted, traced=False)
        with pytest.raises(SimulationInterrupted) as excinfo:
            run_to_completion(
                interrupted_sim, tmp_path / "int", interrupt=INTERRUPT_AT
            )

        resumed_sim = build_simulation(faulted, traced=False)
        resume_simulation(resumed_sim, excinfo.value.snapshot)
        resumed, _ = run_to_completion(resumed_sim, tmp_path / "int")
        assert resumed.writer.render() == reference.writer.render()
        assert resumed.dispatched_events == reference.dispatched_events

    def test_checkpointing_leaves_artefacts_unchanged(self, tmp_path, faulted):
        """Snapshotting must not perturb the simulation: the tutlog and
        aggregated metrics match a run with no checkpointer at all (the
        trace alone gains the ``checkpoint`` instants)."""
        bare_sim = build_simulation(faulted)
        bare = bare_sim.run(DURATION_US)

        observed_sim = build_simulation(faulted)
        observed, checkpointer = run_to_completion(observed_sim, tmp_path / "ck")
        assert checkpointer.taken > 0

        assert observed.writer.render() == bare.writer.render()
        assert observed.dispatched_events == bare.dispatched_events
        bare_metrics = collect_metrics(bare_sim.tracer, bare.end_time_ps)
        observed_metrics = collect_metrics(
            observed_sim.tracer, observed.end_time_ps
        )
        assert observed_metrics.to_dict() == bare_metrics.to_dict()


class TestRestoreValidation:
    def test_snapshot_restored_onto_wrong_build_rejected(self, tmp_path):
        faulted_sim = build_simulation(faulted=True)
        with pytest.raises(SimulationInterrupted) as excinfo:
            run_to_completion(faulted_sim, tmp_path / "ck", interrupt=INTERRUPT_AT)
        plain_sim = build_simulation(faulted=False)
        with pytest.raises((SimulationError, CheckpointError)):
            resume_simulation(plain_sim, excinfo.value.snapshot)

    def test_restore_infidelity_detected_by_hash(self, tmp_path):
        simulation = build_simulation(faulted=False)
        with pytest.raises(SimulationInterrupted) as excinfo:
            run_to_completion(simulation, tmp_path / "ck", interrupt=INTERRUPT_AT)
        snapshot = excinfo.value.snapshot
        tampered_state = dict(snapshot.state, dropped=snapshot.state["dropped"] + 1)
        tampered = dataclasses.replace(snapshot, state=tampered_state)
        with pytest.raises(CheckpointError, match="does not reproduce"):
            resume_simulation(build_simulation(faulted=False), tampered)

    def test_restore_needs_fresh_simulation(self, tmp_path):
        simulation = build_simulation(faulted=False)
        with pytest.raises(SimulationInterrupted) as excinfo:
            run_to_completion(simulation, tmp_path / "ck", interrupt=INTERRUPT_AT)
        used = build_simulation(faulted=False)
        used.run(1_000)
        with pytest.raises(SimulationError):
            resume_simulation(used, excinfo.value.snapshot)

    def test_attach_refuses_occupied_hook(self, tmp_path):
        simulation = build_simulation(faulted=False)
        first = Checkpointer(CheckpointStore(tmp_path), EveryEvents(STRIDE))
        first.attach(simulation)
        second = Checkpointer(CheckpointStore(tmp_path), EveryEvents(STRIDE))
        with pytest.raises(CheckpointError, match="after_event"):
            second.attach(simulation)
