"""State hashing and structural diffing primitives."""

from repro.checkpoint import canonical_json, diff_states, state_hash


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": None}) == '{"a":null,"b":[1,2]}'


class TestStateHash:
    def test_stable_across_key_order(self):
        assert state_hash({"x": 1, "y": 2}) == state_hash({"y": 2, "x": 1})

    def test_sensitive_to_values(self):
        assert state_hash({"x": 1}) != state_hash({"x": 2})

    def test_is_sha256_hex(self):
        digest = state_hash({})
        assert len(digest) == 64
        int(digest, 16)  # must be hex


class TestDiffStates:
    def test_identical_states_diff_empty(self):
        state = {"a": [1, {"b": 2}]}
        assert diff_states(state, state) == []

    def test_leaf_difference_reported_once_with_path(self):
        left = {"kernel": {"now_ps": 100, "sequence": 5}}
        right = {"kernel": {"now_ps": 200, "sequence": 5}}
        assert diff_states(left, right) == ["$.kernel.now_ps: 100 != 200"]

    def test_missing_keys_reported_by_side(self):
        lines = diff_states({"a": 1}, {"b": 1})
        assert "$.a: only in first" in lines
        assert "$.b: only in second" in lines

    def test_list_length_and_elements(self):
        lines = diff_states({"q": [1, 2, 3]}, {"q": [1, 9]})
        assert "$.q: length 3 != 2" in lines
        assert "$.q[1]: 2 != 9" in lines

    def test_type_mismatch(self):
        assert diff_states({"v": 1}, {"v": "1"}) == ["$.v: type int != str"]
