"""TUTMAC model structure: Figures 4, 5 and 6 as machine-checkable facts."""

import pytest

from repro.tutprofile import check_design_rules
from repro.uml import validate_model
from repro.cases.tutmac import PAPER_GROUPING, build_tutmac


class TestFigure4ClassHierarchy:
    def test_top_level_class(self, tutmac_app):
        assert tutmac_app.top.name == "Tutmac_Protocol"
        assert tutmac_app.top.has_stereotype("Application")

    def test_five_top_level_parts(self, tutmac_app):
        assert [p.name for p in tutmac_app.top.parts] == [
            "ui", "dp", "mng", "rmng", "rca"
        ]

    def test_functional_components_stereotyped(self, tutmac_app):
        for name in ("Management", "RadioManagement", "RadioChannelAccess"):
            component = tutmac_app.components[name]
            assert component.has_stereotype("ApplicationComponent")
            assert component.is_functional

    def test_structural_components_unstereotyped(self, tutmac_app):
        for name in ("UserInterface", "DataProcessing"):
            structural = tutmac_app.structurals[name]
            assert structural.is_structural
            assert not structural.applied_stereotypes

    def test_structural_parts_not_processes(self, tutmac_app):
        ui = tutmac_app.top.part("ui")
        dp = tutmac_app.top.part("dp")
        assert not ui.has_stereotype("ApplicationProcess")
        assert not dp.has_stereotype("ApplicationProcess")

    def test_functional_parts_are_processes(self, tutmac_app):
        for name in ("mng", "rmng", "rca"):
            assert tutmac_app.top.part(name).has_stereotype("ApplicationProcess")


class TestFigure5CompositeStructure:
    def test_boundary_ports(self, tutmac_app):
        assert [p.name for p in tutmac_app.top.ports] == ["pUser", "pPhy", "pMngUser"]

    def test_connector_count(self, tutmac_app):
        # Figure 5 wires: pUser-ui, ui-dp, ui-mng, dp-mng, dp-rca, mng-rca,
        # mng-rmng, rca-rmng, pPhy-rca, pPhy-rmng, pMngUser-mng
        assert len(tutmac_app.top.connectors) == 11

    def test_paper_port_names(self, tutmac_app):
        rca = tutmac_app.components["RadioChannelAccess"]
        assert {p.name for p in rca.ports} == {
            "DataPort", "MngPort", "RMngPort", "PhyPort"
        }
        mng = tutmac_app.components["Management"]
        assert {p.name for p in mng.ports} == {
            "UIPort", "DPPort", "RChPort", "RMngPort", "MngUserPort"
        }

    def test_inner_processes(self, tutmac_app):
        ui = tutmac_app.structurals["UserInterface"]
        assert {p.name for p in ui.parts} == {"msduRec", "msduDel"}
        dp = tutmac_app.structurals["DataProcessing"]
        assert {p.name for p in dp.parts} == {"frag", "defrag", "crc"}

    def test_process_inventory(self, tutmac_app):
        functional = {p.name for p in tutmac_app.functional_processes()}
        assert functional == {
            "msduRec", "msduDel", "frag", "defrag", "crc", "mng", "rmng", "rca"
        }
        environment = {p.name for p in tutmac_app.environment_processes()}
        assert environment == {"user", "phy", "mngUser"}

    def test_well_formed(self, tutmac_app):
        report = validate_model(tutmac_app.model)
        assert report.ok, report.render()
        assert not report.warnings, report.render()


class TestFigure6Grouping:
    def test_paper_grouping(self, tutmac_app):
        for process, group in PAPER_GROUPING.items():
            assert tutmac_app.group_of(process) == group

    def test_group1_contents(self, tutmac_app):
        assert {p.name for p in tutmac_app.processes_in("group1")} == {
            "rca", "mng", "rmng"
        }

    def test_group2_contents(self, tutmac_app):
        assert {p.name for p in tutmac_app.processes_in("group2")} == {
            "msduRec", "msduDel", "frag"
        }

    def test_group4_is_hardware(self, tutmac_app):
        group = tutmac_app.groups["group4"]
        assert group.tag("ProcessGroup", "ProcessType") == "hardware"
        assert tutmac_app.find_process("crc").process_type() == "hardware"

    def test_custom_grouping_override(self):
        custom = dict(PAPER_GROUPING)
        custom["defrag"] = "group2"
        app = build_tutmac(grouping=custom)
        assert app.group_of("defrag") == "group2"
        assert "group3" not in {
            g for g in app.groups if app.processes_in(g)
        }

    def test_design_rules_clean(self, tutmac_app):
        report = check_design_rules(tutmac_app.model)
        assert report.ok, report.render()


class TestBehaviorSanity:
    def test_every_functional_component_has_behavior(self, tutmac_app):
        for process in tutmac_app.functional_processes():
            machine = process.behavior
            assert machine.initial_state is not None

    def test_rca_is_timer_driven(self, tutmac_app):
        rca = tutmac_app.find_process("rca")
        assert "slot_t" in rca.behavior.timer_names()

    def test_signal_alphabets_closed(self, tutmac_app):
        """Every signal a machine sends is declared in the application."""
        declared = set(tutmac_app.signals)
        for process in tutmac_app.processes.values():
            for name in process.behavior.sent_signal_names():
                assert name in declared, f"{process.name} sends {name}"
