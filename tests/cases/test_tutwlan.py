"""TUTWLAN platform and paper mapping: Figures 7 and 8."""

import pytest

from repro.cases.tutwlan import (
    PAPER_MAPPING,
    build_paper_mapping,
    build_tutwlan_platform,
    build_tutwlan_system,
)


class TestFigure7Platform:
    def test_four_processing_elements(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        assert len(platform.processing_elements) == 4
        assert platform.pe("accelerator1").spec.component_type == "hw accelerator"
        for name in ("processor1", "processor2", "processor3"):
            assert platform.pe(name).spec.component_type == "general"

    def test_hierarchical_bus(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        assert set(platform.agents_on("hibisegment1")) == {"processor1", "processor2"}
        assert set(platform.agents_on("hibisegment2")) == {
            "processor3",
            "accelerator1",
        }
        assert set(platform.agents_on("bridge")) == {"hibisegment1", "hibisegment2"}

    def test_instance_ids_unique(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        ids = [pe.identifier for pe in platform.processing_elements.values()]
        assert len(set(ids)) == 4

    def test_stereotypes_applied(self, tutwlan_system):
        _, platform, _ = tutwlan_system
        pe = platform.pe("processor1")
        assert pe.part.has_stereotype("PlatformComponentInstance")
        segment = platform.segments["hibisegment1"]
        assert segment.part.has_stereotype("HIBISegment")
        for wrapper in platform.wrappers:
            assert wrapper.dependency.has_stereotype("HIBIWrapper")


class TestFigure8Mapping:
    def test_paper_assignment(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        assert mapping.assignment() == PAPER_MAPPING

    def test_groups_1_and_3_share_processor1(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        assert mapping.groups_on("processor1") == ["group1", "group3"]

    def test_processor3_left_free(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        assert mapping.groups_on("processor3") == []

    def test_group4_on_accelerator(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        assert mapping.pe_of_group("group4") == "accelerator1"

    def test_mapping_complete(self, tutwlan_system):
        _, _, mapping = tutwlan_system
        mapping.check_complete()

    def test_mapping_overrides(self):
        application, platform, mapping = build_tutwlan_system(
            mapping_overrides={"group3": "processor3"}
        )
        assert mapping.pe_of_group("group3") == "processor3"

    def test_shared_model_single_xmi(self, tutwlan_system):
        application, platform, _ = tutwlan_system
        assert application.model is platform.model
        from repro.uml import model_to_xml

        xml = model_to_xml(application.model)
        assert "ext:" not in xml  # every reference resolves in one document


class TestSystemSimulation:
    def test_runs_on_real_platform(self, tutwlan_system):
        from repro.simulation import SystemSimulation

        application, platform, mapping = build_tutwlan_system()
        result = SystemSimulation(application, platform, mapping).run(20_000)
        assert result.dispatched_events > 0
        # crc work lands on the accelerator
        crc_execs = [
            r for r in result.log.exec_records
            if r.process == "crc" and r.cycles > 0
        ]
        assert crc_execs
        assert all(r.pe == "accelerator1" for r in crc_execs)

    def test_bus_segments_carry_traffic(self):
        from repro.simulation import SystemSimulation

        application, platform, mapping = build_tutwlan_system()
        result = SystemSimulation(application, platform, mapping).run(20_000)
        # group2 (processor2) talks to group1 (processor1) over hibisegment1
        assert result.bus_stats["hibisegment1"].transfers > 0
        # group2 -> group4 (accelerator) crosses the bridge
        assert result.bus_stats["bridge"].transfers > 0
