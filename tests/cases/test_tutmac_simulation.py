"""TUTMAC reference simulation: the Table 4 shape (paper §4.4)."""

import pytest

from repro.profiling import profile_run

#: Paper Table 4(a) proportions and the tolerance bands we accept.
PAPER_SHARES = {
    "group1": (92.1, 85.0, 96.0),
    "group2": (5.2, 2.0, 10.0),
    "group3": (2.5, 1.0, 6.0),
    "group4": (0.2, 0.05, 1.5),
}


@pytest.fixture(scope="module")
def profiling(tutmac_app, tutmac_reference_result):
    return profile_run(tutmac_reference_result, tutmac_app)


class TestTable4aShape:
    @pytest.mark.parametrize("group", sorted(PAPER_SHARES))
    def test_share_within_band(self, profiling, group):
        paper, low, high = PAPER_SHARES[group]
        measured = 100.0 * profiling.group_share(group)
        assert low <= measured <= high, (
            f"{group}: measured {measured:.1f} %, paper {paper} %, "
            f"band [{low}, {high}]"
        )

    def test_strict_ordering(self, profiling):
        cycles = profiling.group_cycles
        assert cycles["group1"] > cycles["group2"] > cycles["group3"] > cycles["group4"] > 0

    def test_group1_dominates_by_an_order_of_magnitude(self, profiling):
        assert profiling.group_cycles["group1"] > 10 * profiling.group_cycles["group2"]

    def test_environment_zero_cycles(self, profiling):
        assert profiling.group_cycles["Environment"] == 0
        assert profiling.group_share("Environment") == 0.0


class TestTable4bShape:
    def test_pipeline_flows_nonzero(self, profiling):
        expected_flows = [
            ("Environment", "group2"),  # user -> msduRec
            ("group2", "group1"),       # frag -> rca (pdu_tx)
            ("group2", "group4"),       # frag -> crc
            ("group4", "group2"),       # crc -> frag
            ("group1", "Environment"),  # rca -> phy
            ("Environment", "group1"),  # phy -> rca
            ("group1", "group3"),       # rca -> defrag
            ("group3", "group4"),       # defrag -> crc
            ("group4", "group3"),       # crc -> defrag
            ("group3", "group2"),       # defrag -> msduDel
            ("group2", "Environment"),  # msduDel -> user
            ("group1", "group1"),       # management plane internal
        ]
        for sender, receiver in expected_flows:
            assert profiling.signals_between(sender, receiver) > 0, (
                sender, receiver
            )

    def test_forbidden_flows_zero(self, profiling):
        for sender, receiver in [
            ("group3", "group1"),
            ("group4", "group1"),
            ("group4", "Environment"),
            ("Environment", "group3"),
            ("Environment", "group4"),
            ("Environment", "Environment"),
        ]:
            assert profiling.signals_between(sender, receiver) == 0

    def test_uplink_rate_matches_workload(self, profiling, tutmac_app):
        """500 MSDUs/s * 5 fragments => ~2500 pdu_tx/s from group2 to group1."""
        params = tutmac_app.params
        duration_s = profiling.end_time_ps / 1e12
        msdus = duration_s * 1e6 / params.msdu_period_us
        expected = msdus * params.uplink_fragments
        measured = profiling.signals_between("group2", "group1")
        assert expected * 0.8 <= measured <= expected * 1.05

    def test_no_dropped_signals(self, profiling):
        assert profiling.dropped_signals == 0


class TestDeterminism:
    def test_repeat_run_identical(self, tutmac_app, tutmac_reference_result):
        from repro.cases.tutmac import build_tutmac
        from repro.simulation import run_reference_simulation

        repeat = run_reference_simulation(build_tutmac(), duration_us=100_000)
        assert (
            repeat.writer.render() == tutmac_reference_result.writer.render()
        )
