"""TUTMAC protocol-level behaviour: the MAC actually moves data."""

import pytest

from repro.cases.tutmac import DEFAULT_PARAMETERS, TutmacParameters, build_tutmac
from repro.simulation import SystemSimulation, run_reference_simulation
from repro.simulation.reference import build_reference_mapping, build_reference_platform


@pytest.fixture(scope="module")
def simulation():
    application = build_tutmac()
    platform = build_reference_platform(profile=application.profile)
    mapping = build_reference_mapping(application, platform)
    system = SystemSimulation(application, platform, mapping)
    result = system.run(200_000)
    return application, system, result


def var(system, process, name):
    return system.executors[process].variables[name]


class TestUplink:
    def test_user_msdus_reach_fragmenter(self, simulation):
        _, system, _ = simulation
        sent = var(system, "user", "seq")
        fragmented = var(system, "frag", "sdus")
        assert sent > 0
        # the final MSDU may still be in flight at the horizon
        assert sent - 1 <= fragmented <= sent

    def test_fragment_count_matches_formula(self, simulation):
        _, system, result = simulation
        sdus = var(system, "frag", "sdus")
        pdu_tx = sum(
            1 for r in result.log.signal_records if r.signal == "pdu_tx"
        )
        assert pdu_tx == sdus * DEFAULT_PARAMETERS.uplink_fragments

    def test_rca_transmits_queued_fragments(self, simulation):
        _, system, _ = simulation
        queued = var(system, "rca", "txq")
        sent = var(system, "rca", "sent")
        # nearly everything queued got a slot; a residue may be in flight
        assert sent > 0
        assert queued <= DEFAULT_PARAMETERS.uplink_fragments  # bounded backlog

    def test_radio_receives_transmissions(self, simulation):
        _, system, _ = simulation
        assert var(system, "phy", "received") >= var(system, "rca", "sent") - 1


class TestDownlink:
    def test_sdus_delivered_to_user(self, simulation):
        _, system, _ = simulation
        generated = var(system, "phy", "dl_seq")
        delivered = var(system, "user", "delivered")
        assert generated > 0
        # the last SDU may be mid-reassembly at the horizon
        assert generated - 1 <= delivered <= generated

    def test_defrag_sees_all_fragments(self, simulation):
        _, system, result = simulation
        pdu_rx = sum(
            1 for r in result.log.signal_records if r.signal == "pdu_rx"
        )
        generated = var(system, "phy", "dl_seq")
        assert pdu_rx >= (generated - 1) * DEFAULT_PARAMETERS.downlink_fragments

    def test_crc_serves_both_directions(self, simulation):
        _, system, _ = simulation
        computed = var(system, "crc", "computed")
        uplink_sdus = var(system, "frag", "sdus")
        downlink_sdus = var(system, "user", "delivered")
        assert computed >= uplink_sdus + downlink_sdus


class TestManagementPlane:
    def test_beacons_flow(self, simulation):
        _, system, result = simulation
        beacons = var(system, "mng", "beacons")
        expected = 200_000 // DEFAULT_PARAMETERS.beacon_period_us
        assert expected - 1 <= beacons <= expected + 1
        confirmations = sum(
            1 for r in result.log.signal_records if r.signal == "beacon_cnf"
        )
        assert confirmations >= beacons - 1

    def test_measurements_flow(self, simulation):
        _, system, _ = simulation
        measurements = var(system, "rmng", "measurements")
        expected = 200_000 // DEFAULT_PARAMETERS.measurement_period_us
        assert expected - 1 <= measurements <= expected + 1

    def test_management_commands_answered(self, simulation):
        _, system, _ = simulation
        issued = var(system, "mngUser", "code")
        acknowledged = var(system, "mngUser", "acks")
        assert issued > 0
        assert acknowledged >= issued - 1


class TestParameterSensitivity:
    def test_double_traffic_doubles_group2_work(self):
        base = run_reference_simulation(build_tutmac(), duration_us=100_000)
        busy_params = TutmacParameters(msdu_period_us=1000)  # 2x MSDU rate
        busy = run_reference_simulation(
            build_tutmac(params=busy_params), duration_us=100_000
        )
        from repro.profiling import profile_run

        base_data = profile_run(base, build_tutmac())
        busy_data = profile_run(
            busy, build_tutmac(params=busy_params)
        )
        ratio = (
            busy_data.group_cycles["group2"] / base_data.group_cycles["group2"]
        )
        assert 1.7 <= ratio <= 2.3

    def test_smaller_fragments_mean_more_pdus(self):
        small = TutmacParameters(fragment_bytes=128)
        assert small.uplink_fragments > DEFAULT_PARAMETERS.uplink_fragments
        result = run_reference_simulation(
            build_tutmac(params=small), duration_us=50_000
        )
        pdu_count = sum(
            1 for r in result.log.signal_records if r.signal == "pdu_tx"
        )
        base_result = run_reference_simulation(
            build_tutmac(), duration_us=50_000
        )
        base_count = sum(
            1 for r in base_result.log.signal_records if r.signal == "pdu_tx"
        )
        assert pdu_count > base_count

    def test_slot_time_scales_group1_share(self):
        slow_slots = TutmacParameters(slot_time_us=1000)  # 4x fewer slots
        result = run_reference_simulation(
            build_tutmac(params=slow_slots), duration_us=100_000
        )
        from repro.profiling import profile_run

        data = profile_run(result, build_tutmac(params=slow_slots))
        base = profile_run(
            run_reference_simulation(build_tutmac(), duration_us=100_000),
            build_tutmac(),
        )
        assert data.group_share("group1") < base.group_share("group1")
