"""Shared-structure aliasing regressions in the case builders.

The case builders hand module-level dicts (paper grouping/mapping tables,
cycle tables) to model constructors; a builder that kept a live reference
would let one build's mutation silently change every later build.  These
tests pin the copy-on-ingest behaviour.
"""

from __future__ import annotations

from repro.cases.tutmac import PAPER_GROUPING, TutmacParameters, build_tutmac
from repro.cases.tutwlan import (
    PAPER_MAPPING,
    build_tutwlan_platform,
    build_tutwlan_system,
)
from repro.platform.components import ProcessingElementSpec


class TestProcessingElementSpec:
    def test_cycle_table_is_copied_on_construction(self):
        """The historical hazard: several specs built from one shared
        cycle table, then the table mutated in place."""
        shared = {"general": 10, "dsp": 14}
        first = ProcessingElementSpec(name="A", cycles_per_statement=shared)
        second = ProcessingElementSpec(name="B", cycles_per_statement=shared)
        shared["general"] = 999
        shared["hardware"] = 1
        assert first.statement_cycles("general") == 10
        assert second.statement_cycles("general") == 10
        assert not first.supports("hardware")
        assert first.cycles_per_statement is not second.cycles_per_statement

    def test_specs_from_same_literal_are_independent(self):
        spec = ProcessingElementSpec(name="C")
        spec.cycles_per_statement["general"] = 1
        assert ProcessingElementSpec(name="D").statement_cycles("general") == 10


class TestTutmacGroupingTable:
    def test_builder_does_not_mutate_paper_grouping(self):
        snapshot = dict(PAPER_GROUPING)
        build_tutmac()
        assert PAPER_GROUPING == snapshot

    def test_caller_grouping_dict_not_aliased(self):
        grouping = dict(PAPER_GROUPING)
        app = build_tutmac(grouping=grouping)
        grouping["rca"] = "group9"
        assert app.group_of("rca") == "group1"

    def test_two_builds_share_no_group_objects(self):
        first = build_tutmac()
        second = build_tutmac()
        shared = {
            id(group) for group in first.groups.values()
        } & {id(group) for group in second.groups.values()}
        assert not shared


class TestTutwlanMappingTable:
    def test_system_build_does_not_mutate_paper_mapping(self):
        snapshot = dict(PAPER_MAPPING)
        build_tutwlan_system()
        assert PAPER_MAPPING == snapshot

    def test_mapping_overrides_do_not_leak_back(self):
        from repro.cases.tutwlan import build_paper_mapping

        application = build_tutmac()
        platform = build_tutwlan_platform(
            model=application.model, profile=application.profile
        )
        snapshot = dict(PAPER_MAPPING)
        build_paper_mapping(
            application, platform, mapping_overrides={"group3": "processor2"}
        )
        assert PAPER_MAPPING == snapshot

    def test_parameters_default_instance_unshared_mutable_state(self):
        """TutmacParameters is frozen and scalar-only; the default
        instance must equal a fresh one (no accumulated state)."""
        assert TutmacParameters() == TutmacParameters()
