"""Project emission and (when a compiler is available) compile & run."""

import os
import shutil
import subprocess

import pytest

from repro.codegen import generate_project

HAVE_CC = shutil.which("cc") is not None and shutil.which("make") is not None


class TestEmission:
    def test_file_inventory(self, pingpong, tmp_path):
        project = generate_project(pingpong, str(tmp_path))
        names = project.file_names
        assert "tut_runtime.c" in names
        assert "tut_runtime.h" in names
        assert "tut_app.c" in names
        assert "main.c" in names
        assert "Makefile" in names
        assert "Ping.c" in names and "Pong.h" in names

    def test_write_creates_files(self, pingpong, tmp_path):
        project = generate_project(pingpong, str(tmp_path / "out"))
        project.write()
        for name in project.file_names:
            assert os.path.exists(os.path.join(project.directory, name))

    def test_routing_table_embedded(self, pingpong, tmp_path):
        project = generate_project(pingpong, str(tmp_path))
        app_source = project.files["tut_app.c"]
        assert "/* ping1 -tick-> pong1 */" in app_source
        assert "/* pong1 -tock-> ping1 */" in app_source

    def test_signal_ids_sorted_and_shared(self, pingpong, tmp_path):
        project = generate_project(pingpong, str(tmp_path))
        header = project.files["tut_app.h"]
        assert "#define SIG_TICK 0" in header
        assert "#define SIG_TOCK 1" in header

    def test_shared_component_generated_once(self, tmp_path):
        from repro.application import ApplicationModel
        from repro.uml import Port

        app = ApplicationModel("Multi")
        app.signal("s")
        worker = app.component("Worker")
        worker.add_port(Port("p", provided=["s"]))
        machine = app.behavior(worker)
        machine.state("x", initial=True)
        app.process(app.top, "w1", worker)
        app.process(app.top, "w2", worker)
        project = generate_project(app, str(tmp_path))
        assert project.file_names.count("Worker.c") == 1
        # but both processes appear in the application table
        assert "proc_w1" in project.files["tut_app.c"]
        assert "proc_w2" in project.files["tut_app.c"]

    def test_total_lines_substantial(self, pingpong, tmp_path):
        project = generate_project(pingpong, str(tmp_path))
        assert project.total_lines() > 300


@pytest.mark.skipif(not HAVE_CC, reason="no C compiler/make available")
class TestCompileAndRun:
    def build(self, app, tmp_path, duration_us=20_000):
        project = generate_project(app, str(tmp_path))
        project.write()
        result = subprocess.run(
            ["make", "-C", str(tmp_path)], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        log_path = tmp_path / "out.tutlog"
        run = subprocess.run(
            [str(tmp_path / "app"), str(duration_us), str(log_path)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert run.returncode == 0, run.stderr
        return log_path.read_text()

    def test_pingpong_compiles_and_runs(self, pingpong, tmp_path):
        log_text = self.build(pingpong, tmp_path)
        assert log_text.startswith("TUTLOG 1")
        assert "SIG" in log_text

    def test_generated_log_feeds_python_profiler(self, pingpong, tmp_path):
        from repro.profiling import analyze, group_info_from_model
        from repro.simulation import parse_log

        log_text = self.build(pingpong, tmp_path)
        log = parse_log(log_text)
        data = analyze(log, group_info_from_model(pingpong.model))
        # the C execution exhibits the same signal flows as the DES
        assert data.signals_between("g1", "g2") > 0
        assert data.signals_between("g2", "g1") > 0

    def test_tutmac_c_matches_des_signal_shape(self, tmp_path):
        """The generated C and the Python DES agree on the Table 4(b) shape."""
        from repro.cases.tutmac import build_tutmac
        from repro.profiling import analyze, group_info_from_model
        from repro.simulation import parse_log

        app = build_tutmac()
        log_text = self.build(app, tmp_path, duration_us=50_000)
        data = analyze(parse_log(log_text), group_info_from_model(app.model))
        # uplink pipeline flows exist in C exactly as in the DES
        assert data.signals_between("group2", "group1") > 0
        assert data.signals_between("group2", "group4") > 0
        assert data.signals_between("group1", "group3") > 0
        assert data.signals_between("group3", "group2") > 0
        # no flows that the composite structure forbids
        assert data.signals_between("group4", "group1") == 0
        assert data.signals_between("group3", "group1") == 0
