"""C generation of hierarchical state machines (static flattening)."""

import shutil
import subprocess

import pytest

from repro.errors import CodegenError
from repro.codegen import CGenerator
from repro.uml import Class, StateMachine
from repro.uml.structure import Port

SIGNAL_IDS = {"power": 0, "work": 1, "rest": 2, "power_off": 3}


def hierarchical_component():
    component = Class("Hier", is_active=True)
    component.add_port(Port("io", provided=list(SIGNAL_IDS)))
    machine = StateMachine("beh")
    component.set_behavior(machine)
    machine.variable("trace", 0)
    machine.state("off", initial=True, entry="trace = trace * 10 + 7;")
    machine.state("on", entry="trace = trace * 10 + 1;",
                  exit="trace = trace * 10 + 6;")
    machine.state("idle", parent="on", initial=True,
                  entry="trace = trace * 10 + 2;",
                  exit="trace = trace * 10 + 4;")
    machine.state("busy", parent="on",
                  entry="trace = trace * 10 + 3;",
                  exit="trace = trace * 10 + 5;")
    machine.on_signal("off", "on", "power")
    machine.on_signal("idle", "busy", "work")
    machine.on_signal("busy", "idle", "rest")
    machine.on_signal("on", "off", "power_off")
    return component


class TestFlattening:
    def test_composite_enter_descends(self):
        generator = CGenerator(hierarchical_component(), SIGNAL_IDS)
        source = generator.source()
        on_body = source.split("Hier_enter_on(Hier_ctx_t *ctx)")[2]
        assert "Hier_enter_idle(ctx);" in on_body.split("\n}\n")[0]

    def test_leaf_cases_inherit_composite_transitions(self):
        generator = CGenerator(hierarchical_component(), SIGNAL_IDS)
        source = generator.source()
        # the power_off transition (declared on the composite) must appear
        # in both leaf cases, with the correct exit chains
        idle_case = source.split("case HIER_STATE_IDLE:")[1].split("case HIER_STATE_BUSY:")[0]
        busy_case = source.split("case HIER_STATE_BUSY:")[1].split("case HIER_STATE_OFF:")[0]
        assert "SIG_POWER_OFF" in idle_case
        assert "SIG_POWER_OFF" in busy_case

    def test_no_case_for_composite_states(self):
        generator = CGenerator(hierarchical_component(), SIGNAL_IDS)
        source = generator.source()
        handler = source.split("void Hier_handle_signal")[1]
        assert "case HIER_STATE_ON:" not in handler

    def test_composite_without_initial_rejected(self):
        component = Class("Bad", is_active=True)
        machine = StateMachine("beh")
        component.set_behavior(machine)
        machine.state("a", initial=True)
        machine.state("comp")
        machine.state("sub", parent="comp")
        machine.on_signal("a", "comp", "power")
        with pytest.raises(CodegenError):
            CGenerator(component, SIGNAL_IDS).source()


@pytest.mark.skipif(shutil.which("cc") is None, reason="no C compiler")
class TestNativeEquivalence:
    def test_trace_matches_interpreter(self, tmp_path):
        """Drive the same signal sequence through the compiled C and the
        Python interpreter; the entry/exit trace digits must agree."""
        from repro.codegen.runtime import RUNTIME_HEADER
        from repro.simulation import ProcessExecutor

        component = hierarchical_component()
        generator = CGenerator(component, SIGNAL_IDS, instrument=False)
        (tmp_path / "Hier.h").write_text(generator.header())
        (tmp_path / "Hier.c").write_text(generator.source())
        (tmp_path / "tut_runtime.h").write_text(RUNTIME_HEADER)
        (tmp_path / "tut_app.h").write_text(
            "#ifndef TUT_APP_H\n#define TUT_APP_H\n"
            '#include "tut_runtime.h"\n'
            + "".join(
                f"#define SIG_{name.upper()} {sid}\n"
                for name, sid in SIGNAL_IDS.items()
            )
            + "#endif\n"
        )
        (tmp_path / "main.c").write_text(
            '#include "Hier.h"\n#include "tut_app.h"\n#include <stdio.h>\n'
            "void tut_send(void *c, int s, const int32_t *a, int n, const char *p)"
            "{(void)c;(void)s;(void)a;(void)n;(void)p;}\n"
            "void tut_set_timer(void *c, int t, int32_t d){(void)c;(void)t;(void)d;}\n"
            "void tut_reset_timer(void *c, int t){(void)c;(void)t;}\n"
            "uint32_t tut_crc32(uint32_t v, uint32_t s){(void)s;return v;}\n"
            "int32_t tut_rand16(uint16_t *s){(void)s;return 0;}\n"
            "const char *tut_signal_name(int id){(void)id;return \"?\";}\n"
            "static void shoot(Hier_ctx_t *ctx, int id) {\n"
            "    tut_signal_t sig = {0};\n"
            "    sig.id = id;\n"
            "    Hier_handle_signal(ctx, &sig);\n"
            "    printf(\"%d %d\\n\", ctx->v_trace, ctx->base.state);\n"
            "    ctx->v_trace = 0;\n"
            "}\n"
            "int main(void) {\n"
            "    Hier_ctx_t ctx;\n"
            "    Hier_init(&ctx);\n"
            "    Hier_start(&ctx);\n"
            "    ctx.v_trace = 0;\n"
            "    shoot(&ctx, SIG_POWER);\n"
            "    shoot(&ctx, SIG_WORK);\n"
            "    shoot(&ctx, SIG_POWER_OFF);\n"
            "    return 0;\n"
            "}\n"
        )
        build = subprocess.run(
            ["cc", "-std=c99", "-o", str(tmp_path / "h"),
             str(tmp_path / "Hier.c"), str(tmp_path / "main.c")],
            capture_output=True, text=True,
        )
        assert build.returncode == 0, build.stderr
        run = subprocess.run(
            [str(tmp_path / "h")], capture_output=True, text=True, timeout=20
        )
        native_traces = [
            int(line.split()[0]) for line in run.stdout.strip().splitlines()
        ]

        executor = ProcessExecutor("p", component.classifier_behavior)
        executor.start()
        python_traces = []
        for signal in ("power", "work", "power_off"):
            executor.variables["trace"] = 0
            executor.consume_signal(signal, [])
            python_traces.append(executor.variables["trace"])

        assert native_traces == python_traces == [12, 43, 567]
