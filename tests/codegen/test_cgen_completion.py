"""C generation of completion transitions, final states and guards."""

import shutil
import subprocess

import pytest

from repro.codegen import CGenerator
from repro.uml import Class, StateMachine
from repro.uml.structure import Port

SIGNAL_IDS = {"go": 0, "done": 1}


def chained_component():
    component = Class("Chained", is_active=True)
    component.add_port(Port("out", required=["done"], provided=["go"]))
    machine = StateMachine("beh")
    component.set_behavior(machine)
    machine.variable("x", 0)
    machine.state("start", initial=True, entry="x = 1;")
    machine.state("middle", entry="x = x + 10;")
    machine.state("finish", entry="send done() via out;")
    machine.transition("start", "middle")                       # completion
    machine.transition("middle", "finish", guard="x > 5")       # guarded completion
    final = machine.final_state()
    machine.on_signal("finish", final, "go")
    return component


class TestCompletionChains:
    def test_enter_functions_chain(self):
        generator = CGenerator(chained_component(), SIGNAL_IDS)
        source = generator.source()
        # start's enter function must call middle's (completion transition)
        start_body = source.split("Chained_enter_start(Chained_ctx_t *ctx)")[2]
        assert "Chained_enter_middle(ctx);" in start_body.split("}")[0] + "}"

    def test_guarded_completion_emits_condition(self):
        generator = CGenerator(chained_component(), SIGNAL_IDS)
        source = generator.source()
        middle_body = source.split("Chained_enter_middle(Chained_ctx_t *ctx)")[2]
        head = middle_body.split("Chained_enter_finish")[0]
        assert "if ((ctx->v_x > 5))" in head

    def test_final_state_sets_terminated(self):
        generator = CGenerator(chained_component(), SIGNAL_IDS)
        source = generator.source()
        final_body = source.split("Chained_enter_final(Chained_ctx_t *ctx)")[2]
        assert "ctx->base.terminated = 1;" in final_body.split("}")[0] + "}"


@pytest.mark.skipif(
    shutil.which("cc") is None, reason="no C compiler available"
)
class TestSemanticEquivalence:
    def test_chained_entry_behaviour_matches_interpreter(self, tmp_path):
        """Compile a tiny harness around the generated component and compare
        its variable trajectory with the Python executor's."""
        from repro.codegen.runtime import RUNTIME_HEADER
        from repro.simulation import ProcessExecutor

        component = chained_component()
        generator = CGenerator(component, SIGNAL_IDS, instrument=False)
        (tmp_path / "Chained.h").write_text(generator.header())
        (tmp_path / "Chained.c").write_text(generator.source())
        (tmp_path / "tut_runtime.h").write_text(RUNTIME_HEADER)
        (tmp_path / "tut_app.h").write_text(
            "#ifndef TUT_APP_H\n#define TUT_APP_H\n"
            '#include "tut_runtime.h"\n'
            "#define SIG_GO 0\n#define SIG_DONE 1\n"
            "int tut_route(int s, int g, const char *p);\n"
            "#endif\n"
        )
        (tmp_path / "harness.c").write_text(
            '#include "Chained.h"\n'
            '#include "tut_app.h"\n'
            "#include <stdio.h>\n"
            "/* minimal runtime stubs for a single-component harness */\n"
            "void tut_send(void *c, int s, const int32_t *a, int n, const char *p)"
            " { (void)c; (void)a; (void)n; (void)p; printf(\"send %d\\n\", s); }\n"
            "void tut_set_timer(void *c, int t, int32_t d) { (void)c; (void)t; (void)d; }\n"
            "void tut_reset_timer(void *c, int t) { (void)c; (void)t; }\n"
            "uint32_t tut_crc32(uint32_t v, uint32_t s) { (void)s; return v; }\n"
            "int32_t tut_rand16(uint16_t *s) { (void)s; return 0; }\n"
            "int tut_route(int s, int g, const char *p) { (void)s; (void)g; (void)p; return -1; }\n"
            "int main(void) {\n"
            "    Chained_ctx_t ctx;\n"
            "    Chained_init(&ctx);\n"
            "    Chained_start(&ctx);\n"
            "    printf(\"x=%d state=%d\\n\", ctx.v_x, ctx.base.state);\n"
            "    tut_signal_t sig = {SIG_GO, {0}, 0, 0};\n"
            "    Chained_handle_signal(&ctx, &sig);\n"
            "    printf(\"terminated=%d\\n\", ctx.base.terminated);\n"
            "    return 0;\n"
            "}\n"
            "const char *tut_signal_name(int id) { (void)id; return \"?\"; }\n"
        )
        build = subprocess.run(
            ["cc", "-std=c99", "-o", str(tmp_path / "h"),
             str(tmp_path / "Chained.c"), str(tmp_path / "harness.c")],
            capture_output=True, text=True,
        )
        assert build.returncode == 0, build.stderr
        run = subprocess.run(
            [str(tmp_path / "h")], capture_output=True, text=True, timeout=20
        )
        assert run.returncode == 0

        # Python side
        executor = ProcessExecutor("p", component.classifier_behavior)
        outcome = executor.start()
        assert outcome.to_state == "finish"
        assert f"x={executor.variables['x']}" in run.stdout  # x == 11
        assert "send 1" in run.stdout  # finish's entry sent `done`
        outcome, _ = executor.consume_signal("go", [])
        assert outcome.reached_final
        assert "terminated=1" in run.stdout
