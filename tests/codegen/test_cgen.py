"""C translation of expressions, statements and machines."""

import pytest

from repro.errors import CodegenError
from repro.codegen import CGenerator, sanitize
from repro.uml import Class, StateMachine, parse_actions, parse_expression
from repro.uml.structure import Port

SIGNAL_IDS = {"ping": 0, "pong": 1}


def component_with_machine():
    component = Class("Demo", is_active=True)
    component.add_port(Port("out", required=["ping"], provided=["pong"]))
    machine = StateMachine("beh")
    component.set_behavior(machine)
    machine.variable("x", 3)
    machine.state("idle", initial=True, entry="set_timer(t, 100);")
    machine.state("busy")
    machine.on_timer("idle", "busy", "t", effect="x = x + 1; send ping(x) via out;")
    machine.on_signal("busy", "idle", "pong", params=["n"], guard="n > 0")
    machine.on_signal("busy", "busy", "pong", params=["n"], internal=True, priority=1)
    return component


@pytest.fixture
def generator():
    return CGenerator(component_with_machine(), SIGNAL_IDS)


class TestSanitize:
    def test_passthrough(self):
        assert sanitize("Valid_Name1") == "Valid_Name1"

    def test_specials_replaced(self):
        assert sanitize("a-b c") == "a_b_c"

    def test_leading_digit(self):
        assert sanitize("1abc") == "_1abc"


class TestExpressionTranslation:
    def test_variables_become_context_fields(self, generator):
        text = generator.expr(parse_expression("x + 1"), ())
        assert text == "(ctx->v_x + 1)"

    def test_parameters_stay_local(self, generator):
        text = generator.expr(parse_expression("n * 2"), ("n",))
        assert text == "(n * 2)"

    def test_crc32_builtin(self, generator):
        assert generator.expr(parse_expression("crc32(x)"), ()) == "tut_crc32(ctx->v_x, 0)"

    def test_rand16_builtin(self, generator):
        assert generator.expr(parse_expression("rand16()"), ()) == "tut_rand16(&ctx->rng)"

    def test_min_max_abs(self, generator):
        assert generator.expr(parse_expression("min(1, 2)"), ()) == "tut_min(1, 2)"
        assert generator.expr(parse_expression("abs(x)"), ()) == "tut_abs(ctx->v_x)"

    def test_ternary(self, generator):
        text = generator.expr(parse_expression("x > 0 ? 1 : 0"), ())
        assert "?" in text and ":" in text

    def test_unknown_builtin_rejected(self, generator):
        with pytest.raises(CodegenError):
            generator.expr(parse_expression("mystery(1)"), ())


class TestStatementTranslation:
    def test_send(self, generator):
        lines = generator.block(parse_actions("send ping(x) via out;"), (), 0)
        assert lines == [
            'tut_send(ctx, SIG_PING, (int32_t[]){ctx->v_x}, 1, "out");'
        ]

    def test_send_without_args_or_port(self, generator):
        lines = generator.block(parse_actions("send pong();"), (), 0)
        assert lines == ["tut_send(ctx, SIG_PONG, NULL, 0, NULL);"]

    def test_undeclared_signal_rejected(self, generator):
        with pytest.raises(CodegenError):
            generator.block(parse_actions("send ghost();"), (), 0)

    def test_if_else(self, generator):
        lines = generator.block(
            parse_actions("if (x > 0) { x = 1; } else { x = 2; }"), (), 0
        )
        assert lines[0].startswith("if (")
        assert "} else {" in lines

    def test_while(self, generator):
        lines = generator.block(parse_actions("while (x < 5) { x = x + 1; }"), (), 0)
        assert lines[0].startswith("while (")

    def test_timer_statements(self, generator):
        lines = generator.block(
            parse_actions("set_timer(t, 100); reset_timer(t);"), (), 0
        )
        assert "tut_set_timer(ctx, 0, 100);" in lines
        assert "tut_reset_timer(ctx, 0);" in lines


class TestGeneratedCode:
    def test_header_declares_api(self, generator):
        header = generator.header()
        assert "typedef struct" in header
        assert "int32_t v_x;" in header
        assert "void Demo_start(Demo_ctx_t *ctx);" in header
        assert "DEMO_STATE_IDLE = 0," in header

    def test_source_structure(self, generator):
        source = generator.source()
        assert "void Demo_init(Demo_ctx_t *ctx)" in source
        assert "ctx->v_x = 3;" in source
        assert "Demo_enter_idle" in source
        assert "Demo_handle_signal" in source
        assert "Demo_handle_timer" in source
        assert "case SIG_PONG:" in source

    def test_guard_emitted(self, generator):
        source = generator.source()
        assert "if ((n > 0))" in source

    def test_internal_transition_does_not_reenter(self, generator):
        source = generator.source()
        # the internal pong self-loop must not call Demo_enter_busy
        internal_section = source.split("case SIG_PONG:")[1]
        first_case = internal_section.split("}")[0]
        assert "return;" in internal_section

    def test_instrumentation_flag(self):
        instrumented = CGenerator(component_with_machine(), SIGNAL_IDS, instrument=True)
        bare = CGenerator(component_with_machine(), SIGNAL_IDS, instrument=False)
        assert "tut_log_exec" in instrumented.source()
        assert "tut_log_exec" not in bare.source()

    def test_behaviorless_component_rejected(self):
        with pytest.raises(CodegenError):
            CGenerator(Class("Empty", is_active=True), SIGNAL_IDS)

    def test_timer_ids_stable(self, generator):
        assert generator.timer_ids == {"t": 0}
