"""The ``repro generate-model`` subcommand and its round trips."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.genmodel import (
    GeneratorConfig,
    blueprint_json,
    builder_token,
    generate_blueprint,
    known_defects,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestJsonOutput:
    def test_stdout_matches_api_bytes(self, capsys):
        code, out = run_cli(capsys, "generate-model", "--seed", "19")
        assert code == 0
        expected = blueprint_json(generate_blueprint(GeneratorConfig(seed=19)))
        assert out.strip() == expected

    def test_file_output_matches_api_bytes(self, capsys, tmp_path):
        out_path = tmp_path / "model.json"
        code, _ = run_cli(
            capsys,
            "generate-model",
            "--seed", "19",
            "--topology", "star",
            "--segments", "3",
            "--out", str(out_path),
        )
        assert code == 0
        expected = blueprint_json(
            generate_blueprint(
                GeneratorConfig(seed=19, topology="star", n_segments=3)
            )
        )
        assert out_path.read_text().strip() == expected

    def test_blueprint_parses_and_carries_config(self, capsys):
        _, out = run_cli(
            capsys, "generate-model", "--seed", "2", "--defects", "E001"
        )
        blueprint = json.loads(out)
        assert blueprint["schema"] == "repro.genmodel/1"
        assert blueprint["config"]["seed"] == 2
        assert blueprint["config"]["inject_defects"] == ["E001"]


class TestXmiRoundTrip:
    def test_xmi_validates_and_lints_clean(self, capsys, tmp_path):
        """The written XMI must be runnable by the existing subcommands."""
        xmi = tmp_path / "gen.xmi"
        code, _ = run_cli(
            capsys,
            "generate-model", "--seed", "4", "--format", "xmi",
            "--out", str(xmi),
        )
        assert code == 0
        assert main(["validate", str(xmi)]) == 0
        capsys.readouterr()
        assert main(["lint", str(xmi)]) == 0

    def test_xmi_defect_model_fails_lint(self, capsys, tmp_path):
        xmi = tmp_path / "defect.xmi"
        code, _ = run_cli(
            capsys,
            "generate-model", "--seed", "4", "--defects", "E003,D006",
            "--format", "xmi", "--out", str(xmi),
        )
        assert code == 0
        assert main(["lint", str(xmi)]) == 1

    def test_xmi_requires_out(self, capsys):
        code = main(["generate-model", "--format", "xmi"])
        assert code == 2


class TestFlags:
    def test_list_defects_matches_registry(self, capsys):
        code, out = run_cli(capsys, "generate-model", "--list-defects")
        assert code == 0
        assert out.split() == known_defects()

    def test_print_token(self, capsys):
        code, out = run_cli(
            capsys, "generate-model", "--seed", "8", "--print-token"
        )
        assert code == 0
        assert out.strip() == builder_token(GeneratorConfig(seed=8))

    def test_out_of_range_knob_exits_2(self, capsys):
        assert main(["generate-model", "--pes", "99"]) == 2

    def test_unknown_defect_exits_2(self, capsys):
        assert main(["generate-model", "--defects", "Z999"]) == 2
