"""Generator determinism, distinctness, validation and factory tokens."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.errors import GeneratorError
from repro.genmodel import (
    GeneratorConfig,
    blueprint_json,
    builder_token,
    config_for_seed,
    decode_config,
    encode_config,
    generate_blueprint,
    generate_model,
)
from repro.exploration.spec import resolve_builder


class TestConfigValidation:
    def test_defaults_are_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_processes": 1},
            {"n_processes": 65},
            {"efsm_depth": 0},
            {"fanout": 9},
            {"topology": "ring"},
            {"topology": "mesh", "n_segments": 6},
            {"topology": "chain", "n_segments": 1},
            {"n_processes": 2, "request_reply": 2},
            {"seed": "zero"},
        ],
    )
    def test_out_of_range_rejected(self, overrides):
        with pytest.raises(GeneratorError):
            GeneratorConfig(**overrides)

    def test_round_trip_through_dict(self):
        config = GeneratorConfig(
            seed=9, topology="mesh", n_segments=3, inject_defects=("E001",)
        )
        assert GeneratorConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(GeneratorError, match="unknown"):
            GeneratorConfig.from_dict({"seed": 1, "n_procs": 4})

    def test_replace_revalidates(self):
        config = GeneratorConfig()
        with pytest.raises(GeneratorError):
            config.replace(n_pes=0)


class TestDeterminism:
    def test_same_seed_byte_identical_in_process(self):
        config = GeneratorConfig(seed=17, topology="star", n_segments=3)
        first = blueprint_json(generate_blueprint(config))
        second = blueprint_json(generate_blueprint(config))
        assert first == second

    def test_same_seed_byte_identical_across_subprocesses(self):
        """The determinism contract must hold across interpreter runs —
        no dict-order, hash-seed or process-state dependence."""
        config = GeneratorConfig(seed=23, topology="chain", n_segments=3)
        snippet = (
            "import sys, json\n"
            "from repro.genmodel import GeneratorConfig, generate_blueprint, "
            "blueprint_json\n"
            f"config = GeneratorConfig.from_dict({config.to_dict()!r})\n"
            "sys.stdout.write(blueprint_json(generate_blueprint(config)))\n"
        )
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0] == blueprint_json(generate_blueprint(config))

    def test_different_seeds_structurally_distinct(self):
        """Smoke statistics over 50 seeds: the seed must actually matter."""
        dumps = {}
        for seed in range(50):
            config = config_for_seed(seed)
            dumps[seed] = blueprint_json(generate_blueprint(config))
        assert len(set(dumps.values())) == 50
        # the spread covers every topology and several ring sizes
        topologies = {
            json.loads(dump)["config"]["topology"] for dump in dumps.values()
        }
        assert topologies == {"single", "paper", "chain", "star", "mesh"}
        ring_sizes = {
            len(json.loads(dump)["application"]["processes"])
            for dump in dumps.values()
        }
        assert len(ring_sizes) >= 4

    def test_seed_changes_machine_content(self):
        one = generate_blueprint(GeneratorConfig(seed=1))
        two = generate_blueprint(GeneratorConfig(seed=2))
        assert blueprint_json(one) != blueprint_json(two)
        # same shapes, different drawn content
        assert len(one["application"]["components"]) == len(
            two["application"]["components"]
        )


class TestGeneratedModel:
    def test_views_share_one_uml_model(self):
        generated = generate_model(GeneratorConfig(seed=5))
        assert generated.platform.model is generated.application.model
        assert generated.mapping.application is generated.application

    def test_all_groups_mapped(self):
        generated = generate_model(GeneratorConfig(seed=5))
        for group_name in generated.application.groups:
            assert generated.mapping.pe_of_group(group_name) is not None

    def test_topologies_build(self):
        for topology in ("single", "paper", "chain", "star", "mesh"):
            config = GeneratorConfig(
                seed=3, topology=topology, n_segments=3, n_pes=4
            )
            generated = generate_model(config)
            assert len(generated.platform.processing_elements) == 4


class TestFactoryTokens:
    def test_token_round_trip(self):
        config = GeneratorConfig(
            seed=41, topology="mesh", n_segments=3, inject_defects=("A001",)
        )
        assert decode_config(encode_config(config)) == config

    def test_token_resolves_to_builder(self):
        config = GeneratorConfig(seed=8)
        token = builder_token(config)
        builder = resolve_builder(token)
        application, platform = builder()
        assert sorted(application.groups)
        assert builder.generator_config == config

    def test_builder_rejects_grouping_override(self):
        builder = resolve_builder(builder_token(GeneratorConfig(seed=8)))
        with pytest.raises(GeneratorError):
            builder(grouping={"p0": "g0"})

    def test_malformed_token_rejected(self):
        with pytest.raises(GeneratorError):
            decode_config("notbase32!!!")
