"""Property-based differential checks over the whole flow.

Each generated configuration is driven through validate → lint →
simulate → checkpoint/resume → explore → prune by
:func:`repro.genmodel.pipeline.run_pipeline`, which raises
:class:`InvariantViolation` on the first broken cross-subsystem
invariant.  The CI smoke job (``tools/fuzz_smoke.py``) runs the same
pipeline over a larger seed corpus; these tests keep a representative
slice in the tier-1 suite.
"""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.genmodel import (
    GeneratorConfig,
    config_for_seed,
    run_pipeline,
    shrink_config,
)
from repro.genmodel.pipeline import (
    candidate_specs,
    check_soundness,
    run_pipeline as _run_pipeline,
)

#: A slice of the smoke corpus covering all five topologies.
TIER1_SEEDS = (0, 1, 2, 3, 5)


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_pipeline_invariants_hold(seed, tmp_path):
    counters = run_pipeline(
        config_for_seed(seed), workers=(0, 1), work_dir=str(tmp_path)
    )
    assert counters["stages"] == [
        "determinism",
        "validate",
        "lint",
        "simulate",
        "soundness",
        "resume",
        "explore",
        "prune",
    ]
    assert counters["events"] > 0
    assert counters["interrupt_at"] > 0
    assert counters["candidates"] >= 2


def test_pipeline_worker_four_invariance(tmp_path):
    """One seed also checks the 4-worker ranking (cheap representative of
    the smoke job's full (0, 1, 4) sweep)."""
    counters = run_pipeline(
        config_for_seed(1), workers=(0, 1, 4), work_dir=str(tmp_path)
    )
    assert "explore" in counters["stages"]


def test_soundness_checks_flagged_transitions(tmp_path):
    """A001/A003 defect models carry provably dead transitions; the
    concrete simulation must never take them."""
    counters = run_pipeline(
        GeneratorConfig(seed=11, inject_defects=("A001", "A003")),
        workers=(0,),
        work_dir=str(tmp_path),
    )
    assert counters["flagged_checked"] >= 2
    assert "soundness" in counters["stages"]


def test_soundness_catches_executed_flagged_transition():
    """If a lint finding flags a transition the simulation does take,
    check_soundness must fail — guarding the harness itself."""
    from repro.analysis.core import Finding
    from repro.genmodel import generate_model
    from repro.genmodel.pipeline import simulate

    generated = generate_model(GeneratorConfig(seed=3))
    _, result = simulate(generated, 3_000)
    process = generated.application.processes["p0"]
    machine = process.component.classifier_behavior
    driver = next(
        t
        for t in machine.transitions
        if t.trigger is not None and "t_drive" in t.trigger.describe()
    )
    forged = type(
        "Report", (), {"findings": [Finding("A001", "warning", "x", "s", (driver,))]}
    )()
    with pytest.raises(InvariantViolation, match="soundness"):
        check_soundness(generated, forged, result)


def test_defect_configs_stop_after_lint():
    counters = run_pipeline(GeneratorConfig(seed=2, inject_defects=("D006",)))
    assert counters["stages"] == ["determinism", "validate", "lint"]


def test_candidate_enumeration_is_deterministic():
    from repro.genmodel import generate_model

    config = config_for_seed(3)
    generated = generate_model(config)
    first = [s.digest() for s in candidate_specs(config, generated, 3_000)]
    second = [s.digest() for s in candidate_specs(config, generated, 3_000)]
    assert first == second
    assert all(digest is not None for digest in first)


class TestShrinking:
    def test_shrinks_to_minimal_failing_config(self):
        """A synthetic predicate ("fails whenever fanout >= 3") must shrink
        to the smallest configuration still satisfying it."""
        start = GeneratorConfig(
            seed=4,
            n_processes=12,
            fanout=5,
            topology="mesh",
            n_segments=4,
            n_pes=8,
        )
        result = shrink_config(start, lambda cfg: cfg.fanout >= 3)
        assert result.config.fanout == 3
        assert result.config.n_processes == 2
        assert result.config.topology == "single"
        assert result.reductions > 0

    def test_shrink_is_deterministic(self):
        start = GeneratorConfig(seed=4, n_processes=10, n_pes=6)
        predicate = lambda cfg: cfg.n_pes >= 2
        first = shrink_config(start, predicate)
        second = shrink_config(start, predicate)
        assert first.config == second.config
        assert first.attempts == second.attempts

    def test_summary_names_repro_command(self):
        result = shrink_config(
            GeneratorConfig(seed=6, n_processes=8),
            lambda cfg: cfg.n_processes >= 3,
        )
        assert "python -m repro generate-model" in result.summary()
        assert "--seed 6" in result.summary()

    def test_repro_command_round_trips_defaults(self):
        from repro.genmodel import repro_command

        assert repro_command(GeneratorConfig()) == (
            "python -m repro generate-model --seed 0"
        )
