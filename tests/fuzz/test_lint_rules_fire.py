"""Every catalogued lint rule must fire on a generated defect model.

This is the lint catalogue's liveness proof: for each rule id there is a
seeded constructive trigger (:mod:`repro.genmodel.defects`), so no rule
is dead code that only ever matched the hand-built TUTMAC fixtures.
"""

from __future__ import annotations

import pytest

from repro.analysis import rule_catalogue_records, run_lint
from repro.errors import GeneratorError
from repro.genmodel import GeneratorConfig, generate_model, known_defects

CATALOGUE_IDS = sorted(r["rule"] for r in rule_catalogue_records())


def lint_generated(config: GeneratorConfig):
    generated = generate_model(config)
    return run_lint(
        generated.application, generated.platform, generated.mapping
    )


def test_injector_registry_covers_whole_catalogue():
    """A new lint rule without an injector must fail loudly here."""
    assert known_defects() == CATALOGUE_IDS


@pytest.mark.parametrize("rule", CATALOGUE_IDS)
def test_rule_fires_on_single_defect_model(rule):
    config = GeneratorConfig(seed=7, inject_defects=(rule,))
    report = lint_generated(config)
    fired = {finding.rule for finding in report.active}
    assert rule in fired, f"injected defect for {rule} did not fire it"


def test_all_defects_combined_fire_every_rule():
    config = GeneratorConfig(seed=7, inject_defects=tuple(known_defects()))
    report = lint_generated(config)
    fired = {finding.rule for finding in report.active}
    assert set(CATALOGUE_IDS) <= fired


def test_clean_model_has_no_active_errors():
    report = lint_generated(GeneratorConfig(seed=7))
    assert report.errors == []
    assert not [f for f in report.active if f.rule.startswith("A")]


def test_unknown_defect_rejected():
    with pytest.raises(GeneratorError, match="no defect injector"):
        generate_model(GeneratorConfig(seed=1, inject_defects=("Z999",)))


def test_defect_injection_is_deterministic():
    from repro.genmodel import blueprint_json, generate_blueprint

    config = GeneratorConfig(seed=5, inject_defects=("E003", "M005", "A001"))
    assert blueprint_json(generate_blueprint(config)) == blueprint_json(
        generate_blueprint(config)
    )
