"""The static pruning oracle: partition, determinism and engine wiring.

Pingpong's *static* optimum is the split mapping (wire bytes beat the
1000-point load-share term), while its *simulated* optimum is all-on-one
— so these tests exercise mechanics and determinism with a tight margin
and leave top-1 preservation to the tier-2 TUTMAC sweep in tests/perf.
"""

from __future__ import annotations

import pytest

from repro.errors import ExplorationError
from repro.exploration import (
    CandidateSpec,
    PruneConfig,
    mapping_sweep_specs,
    prune_candidates,
    run_candidates,
    static_estimates,
)

from tests.exploration.test_engine import pingpong_factory


def sweep_specs():
    return mapping_sweep_specs(pingpong_factory, duration_us=3_000)


def ghost_spec():
    """A candidate the estimator proves infeasible (unknown PE)."""
    return CandidateSpec.make(
        pingpong_factory,
        {"g1": "ghost", "g2": "cpu1"},
        duration_us=3_000,
        label="g1->ghost,g2->cpu1",
    )


def ledger_dicts(run):
    return [record.to_json_dict() for record in run.pruned]


class TestPruneConfig:
    def test_margin_below_one_is_rejected(self):
        with pytest.raises(ExplorationError, match="margin must be >= 1.0"):
            PruneConfig(margin=0.5)

    def test_default_margin(self):
        assert PruneConfig().margin == 3.0


class TestStaticEstimates:
    def test_one_estimate_per_spec(self):
        specs = sweep_specs()
        estimates = static_estimates(specs)
        assert len(estimates) == len(specs)
        assert all(e.infeasible is None for e in estimates)

    def test_split_mappings_score_below_colocated(self):
        # the static cost of pingpong is dominated by the load-share term,
        # so the split assignments are the static optimum
        specs = sweep_specs()
        by_label = dict(zip([s.label for s in specs], static_estimates(specs)))
        assert (
            by_label["g1->cpu1,g2->cpu2"].cost < by_label["g1->cpu1,g2->cpu1"].cost
        )


class TestPruneCandidates:
    def test_partition_covers_every_spec_exactly_once(self):
        specs = sweep_specs()
        kept, pruned, estimates = prune_candidates(specs, PruneConfig(margin=1.2))
        assert sorted(kept + [record.index for record in pruned]) == list(
            range(len(specs))
        )
        assert len(estimates) == len(specs)

    def test_tight_margin_prunes_the_colocated_mappings(self):
        specs = sweep_specs()
        kept, pruned, _ = prune_candidates(specs, PruneConfig(margin=1.2))
        kept_labels = {specs[i].label for i in kept}
        assert kept_labels == {"g1->cpu1,g2->cpu2", "g1->cpu2,g2->cpu1"}
        assert all(record.reason == "dominated" for record in pruned)
        assert all("exceeds 1.2x" in record.detail for record in pruned)

    def test_wide_margin_keeps_everything(self):
        specs = sweep_specs()
        kept, pruned, _ = prune_candidates(specs, PruneConfig(margin=3.0))
        assert len(kept) == len(specs) and pruned == []

    def test_infeasible_spec_is_always_pruned(self):
        specs = sweep_specs() + [ghost_spec()]
        kept, pruned, _ = prune_candidates(specs, PruneConfig(margin=100.0))
        assert len(kept) == len(specs) - 1
        (record,) = pruned
        assert record.reason == "infeasible"
        assert record.estimate is None
        assert "no PE named 'ghost'" in record.detail

    def test_pure_function_of_specs_and_config(self):
        first = prune_candidates(sweep_specs(), PruneConfig(margin=1.2))
        second = prune_candidates(sweep_specs(), PruneConfig(margin=1.2))
        assert first[0] == second[0]
        assert [r.to_json_dict() for r in first[1]] == [
            r.to_json_dict() for r in second[1]
        ]


class TestEngineIntegration:
    def test_prune_static_evaluates_strictly_fewer(self):
        specs = sweep_specs()
        base = run_candidates(specs, workers=0)
        pruned_run = run_candidates(
            specs, workers=0, prune_static=PruneConfig(margin=1.2)
        )
        assert len(base.outcomes) == len(specs)
        assert len(pruned_run.outcomes) < len(base.outcomes)
        assert len(pruned_run.outcomes) + len(pruned_run.pruned) == len(specs)
        assert pruned_run.prune_margin == 1.2

    def test_survivor_results_match_the_unpruned_run(self):
        specs = sweep_specs()
        base = run_candidates(specs, workers=0)
        pruned_run = run_candidates(
            specs, workers=0, prune_static=PruneConfig(margin=1.2)
        )
        base_by_digest = {
            o.spec.digest(): o.result.stable_hash() for o in base.outcomes
        }
        for outcome in pruned_run.outcomes:
            digest = outcome.spec.digest()
            assert base_by_digest[digest] == outcome.result.stable_hash()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_ledger_is_worker_count_independent(self, workers):
        specs = sweep_specs()
        serial = run_candidates(
            specs, workers=0, prune_static=PruneConfig(margin=1.2)
        )
        parallel = run_candidates(
            specs, workers=workers, prune_static=PruneConfig(margin=1.2)
        )
        assert ledger_dicts(parallel) == ledger_dicts(serial)
        assert [o.spec.digest() for o in parallel.ranking()] == [
            o.spec.digest() for o in serial.ranking()
        ]

    def test_infeasible_candidate_is_skipped_not_crashed(self):
        specs = sweep_specs() + [ghost_spec()]
        run = run_candidates(specs, workers=0, prune_static=True)
        assert len(run.outcomes) == len(specs) - 1
        (record,) = [r for r in run.pruned if r.reason == "infeasible"]
        assert record.label == "g1->ghost,g2->cpu1"

    def test_prune_true_uses_default_config(self):
        run = run_candidates(sweep_specs(), workers=0, prune_static=True)
        assert run.prune_margin == 3.0

    def test_json_payload_reports_pruning(self):
        specs = sweep_specs()
        run = run_candidates(
            specs, workers=0, prune_static=PruneConfig(margin=1.2)
        )
        payload = run.to_json_dict()
        assert payload["candidates_submitted"] == len(specs)
        assert payload["candidates_total"] == len(run.outcomes)
        pruned = payload["pruned"]
        assert pruned["count"] == len(specs) - len(run.outcomes)
        assert pruned["margin"] == 1.2
        assert [r["index"] for r in pruned["records"]] == [
            record.index for record in run.pruned
        ]

    def test_unpruned_payload_is_unchanged(self):
        payload = run_candidates(sweep_specs(), workers=0).to_json_dict()
        assert payload["candidates_total"] == payload["candidates_submitted"]
        assert payload["pruned"] == {"count": 0, "margin": None, "records": []}

    def test_pruning_composes_with_the_cache(self, tmp_path):
        specs = sweep_specs()
        cache_dir = str(tmp_path / "cache")
        run_candidates(specs, workers=0, cache_dir=cache_dir)
        cached = run_candidates(
            specs,
            workers=0,
            cache_dir=cache_dir,
            prune_static=PruneConfig(margin=1.2),
        )
        assert all(outcome.cached for outcome in cached.outcomes)
        assert len(cached.pruned) == 2
