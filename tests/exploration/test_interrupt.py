"""Interrupting a campaign mid-flight: clean shutdown, no orphans.

Ctrl-C (SIGINT) and a polite SIGTERM must both terminate the worker pool
cleanly: every completed result already flushed to the cache, every live
worker terminated and reaped, exit code 3 from the CLI.  Signals cannot
be delivered to a pytest-internal campaign reliably, so these tests
drive a real subprocess and interrupt it for real.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

#: Driver: run a 4-candidate campaign whose last candidate hangs forever,
#: report progress on stdout, and on interrupt report liveness + cache
#: population.  Exits 3 on a clean interrupt, 0 (wrongly) on completion.
DRIVER = """\
import multiprocessing
import signal
import sys
import time

from repro.exploration import (
    ResultCache,
    SupervisorConfig,
    WorkerFaultPlan,
    run_candidates,
)
from tests.exploration.test_engine import fault_free_specs


def _sigterm(signum, frame):
    raise KeyboardInterrupt


def progress(outcome, done, total):
    print(f"DONE {done}/{total}", flush=True)


def main():
    cache_dir = sys.argv[1]
    specs = fault_free_specs()
    plan = WorkerFaultPlan.make({len(specs) - 1: ["hang"]}, hang_s=120.0)
    signal.signal(signal.SIGTERM, _sigterm)
    try:
        run_candidates(
            specs,
            workers=2,
            cache_dir=cache_dir,
            progress=progress,
            supervisor=SupervisorConfig(),
            worker_faults=plan,
        )
    except KeyboardInterrupt:
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        print(f"ALIVE={len(multiprocessing.active_children())}", flush=True)
        print(f"CACHED={len(ResultCache(cache_dir))}", flush=True)
        sys.exit(3)
    sys.exit(0)


main()
"""


def _spawn_driver(tmp_path):
    driver_path = tmp_path / "driver.py"
    driver_path.write_text(DRIVER, encoding="utf-8")
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
    )
    process = subprocess.Popen(
        [sys.executable, str(driver_path), str(cache_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        start_new_session=True,
    )
    return process, cache_dir


def _wait_for_progress(process, completed, deadline_s=60.0):
    """Read driver stdout until ``completed`` candidates have finished."""
    lines = []
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line.strip())
        if line.startswith(f"DONE {completed}/"):
            return lines
    pytest.fail(f"driver never reported {completed} completions: {lines}")


def _assert_clean_interrupt(process, cache_dir, expect_cached):
    stdout, stderr = process.communicate(timeout=30)
    assert process.returncode == 3, (stdout, stderr)
    report = dict(
        line.split("=", 1)
        for line in stdout.splitlines()
        if "=" in line
    )
    assert report["ALIVE"] == "0", "workers survived the interrupt"
    assert int(report["CACHED"]) >= expect_cached
    # the whole session (driver + any forked worker) must be gone
    _assert_session_dead(process.pid)
    # and the cache entries it flushed must be readable
    json_entries = [
        name
        for _, _, names in os.walk(cache_dir)
        for name in names
        if name.endswith(".json")
    ]
    assert len(json_entries) >= expect_cached


def _assert_session_dead(session_id, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            os.killpg(session_id, 0)
        except ProcessLookupError:
            return
        time.sleep(0.1)
    pytest.fail(f"process group {session_id} still has live members")


class TestInterruptedCampaign:
    @pytest.mark.parametrize(
        "signum", [signal.SIGINT, signal.SIGTERM], ids=["sigint", "sigterm"]
    )
    def test_interrupt_terminates_pool_and_keeps_cache(self, tmp_path, signum):
        process, cache_dir = _spawn_driver(tmp_path)
        try:
            # 3 of the 4 candidates finish; the 4th hangs its worker forever
            _wait_for_progress(process, completed=3)
            os.kill(process.pid, signum)
            _assert_clean_interrupt(process, cache_dir, expect_cached=3)
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=10)


class TestInterruptedCli:
    def test_sigterm_exits_3_and_flushes_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "explore",
                "--limit",
                "8",
                "--duration-us",
                "2000",
                "--workers",
                "2",
                "--cache-dir",
                str(cache_dir),
                "--inject-worker-fault",
                "7:hang",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            start_new_session=True,
        )
        try:
            # progress lines go to stderr; wait until most candidates are in
            deadline = time.monotonic() + 60.0
            seen = []
            while time.monotonic() < deadline:
                line = process.stderr.readline()
                if not line:
                    break
                seen.append(line.strip())
                if line.startswith("[5/"):
                    break
            else:
                pytest.fail(f"no campaign progress before deadline: {seen}")
            os.kill(process.pid, signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 3, (stdout, stderr)
            assert "interrupted" in stderr
            _assert_session_dead(process.pid)
            cached = [
                name
                for _, _, names in os.walk(cache_dir)
                for name in names
                if name.endswith(".json")
            ]
            assert len(cached) >= 5
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=10)
