"""The parallel candidate-evaluation engine: determinism matrix and cache.

The engine's contract: the ranking and every result hash are a pure
function of the candidate specs — independent of worker count, completion
order and cache temperature.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ExplorationError
from repro.exploration import (
    CandidateSpec,
    EvaluationResult,
    ResultCache,
    builder_ref,
    evaluate_spec,
    mapping_sweep_specs,
    run_candidates,
)
from repro.faults import fault_sweep_specs

from tests.conftest import build_pingpong, build_two_cpu_platform


def pingpong_factory():
    """Module-level (importable by name) builder for worker processes."""
    return build_pingpong(), build_two_cpu_platform()


def fault_free_specs():
    return mapping_sweep_specs(pingpong_factory, duration_us=3_000)


def fault_campaign_specs():
    return fault_sweep_specs((1, 2), fault_rate=0.08, duration_us=10_000)


def result_hashes(run):
    return [outcome.result.stable_hash() for outcome in run.ranking()]


class TestDeterminismMatrix:
    """Identical hashes for workers in {0, 1, 4} and repeated runs."""

    @pytest.mark.parametrize("workers", [0, 1, 4])
    @pytest.mark.parametrize(
        "make_specs", [fault_free_specs, fault_campaign_specs],
        ids=["fault-free", "fault-campaign"],
    )
    def test_workers_do_not_change_results(self, workers, make_specs):
        baseline = run_candidates(make_specs(), workers=0)
        run = run_candidates(make_specs(), workers=workers)
        assert result_hashes(run) == result_hashes(baseline)
        assert [o.spec.sort_key() for o in run.ranking()] == [
            o.spec.sort_key() for o in baseline.ranking()
        ]

    def test_repeated_run_same_seed_identical(self):
        first = run_candidates(fault_campaign_specs(), workers=0)
        second = run_candidates(fault_campaign_specs(), workers=0)
        assert result_hashes(first) == result_hashes(second)
        # the campaign actually injected something, so this is a real check
        assert any(o.result.fault_injected > 0 for o in first.outcomes)

    def test_ranking_is_stable_under_cost_ties(self):
        # pingpong on two identical CPUs: mirrored assignments tie on cost;
        # the spec sort key must break the tie the same way every run
        run_a = run_candidates(fault_free_specs(), workers=0)
        run_b = run_candidates(fault_free_specs(), workers=4)
        labels_a = [o.spec.mapping_dict for o in run_a.ranking()]
        labels_b = [o.spec.mapping_dict for o in run_b.ranking()]
        assert labels_a == labels_b
        costs = [o.cost for o in run_a.ranking()]
        assert costs == sorted(costs)


class TestCache:
    def test_second_run_evaluates_nothing(self, tmp_path):
        cache_dir = str(tmp_path)
        cold = run_candidates(fault_free_specs(), workers=0, cache_dir=cache_dir)
        warm = run_candidates(fault_free_specs(), workers=2, cache_dir=cache_dir)
        assert cold.evaluated == len(cold.outcomes)
        assert warm.evaluated == 0
        assert warm.cache_hits == len(warm.outcomes)
        assert result_hashes(warm) == result_hashes(cold)

    def test_cache_roundtrip_preserves_result(self, tmp_path):
        spec = fault_free_specs()[0]
        result = evaluate_spec(spec)
        cache = ResultCache(str(tmp_path))
        cache.store(spec, result, 0.25)
        loaded, elapsed = cache.load(spec)
        assert loaded == result
        assert loaded.stable_hash() == result.stable_hash()
        assert elapsed == 0.25

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = fault_free_specs()[0]
        cache = ResultCache(str(tmp_path))
        path = cache.store(spec, evaluate_spec(spec), 0.1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.load(spec) is None

    def test_digest_is_content_addressed(self):
        specs = fault_free_specs()
        assert specs[0].digest() != specs[1].digest()
        # label is presentation-only: must not change the digest
        relabelled = CandidateSpec.make(
            specs[0].builder,
            specs[0].mapping_dict,
            duration_us=specs[0].duration_us,
            label="renamed",
        )
        assert relabelled.digest() == specs[0].digest()
        # but the horizon is part of the content
        longer = CandidateSpec.make(
            specs[0].builder, specs[0].mapping_dict, duration_us=9_999
        )
        assert longer.digest() != specs[0].digest()

    def test_cache_layout_is_sharded_json(self, tmp_path):
        spec = fault_free_specs()[0]
        cache = ResultCache(str(tmp_path))
        path = cache.store(spec, evaluate_spec(spec), 0.0)
        digest = spec.digest()
        assert path == os.path.join(str(tmp_path), digest[:2], digest + ".json")
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["digest"] == digest
        assert entry["spec"]["mapping"] == spec.mapping_dict


class TestSerialFallback:
    def test_lambda_builder_runs_serially(self):
        factory = lambda: (build_pingpong(), build_two_cpu_platform())  # noqa: E731
        assert builder_ref(factory) is None
        spec = CandidateSpec.make(factory, {"g1": "cpu1", "g2": "cpu1"})
        run = run_candidates([spec], workers=0)
        assert run.outcomes[0].result.bus_bytes == 0

    def test_lambda_builder_rejected_for_workers(self):
        factory = lambda: (build_pingpong(), build_two_cpu_platform())  # noqa: E731
        spec = CandidateSpec.make(factory, {"g1": "cpu1", "g2": "cpu1"})
        with pytest.raises(ExplorationError):
            run_candidates([spec], workers=2)

    def test_lambda_builder_not_cacheable(self, tmp_path):
        factory = lambda: (build_pingpong(), build_two_cpu_platform())  # noqa: E731
        spec = CandidateSpec.make(factory, {"g1": "cpu1", "g2": "cpu1"})
        run = run_candidates([spec], workers=0, cache_dir=str(tmp_path))
        assert run.evaluated == 1
        assert len(ResultCache(str(tmp_path))) == 0

    def test_negative_workers_rejected(self):
        with pytest.raises(ExplorationError):
            run_candidates([], workers=-1)


class TestRunSummary:
    def test_progress_records_and_json_summary(self):
        seen = []

        def progress(outcome, done, total):
            seen.append((outcome.index, done, total, outcome.elapsed_s))

        run = run_candidates(fault_free_specs(), workers=0, progress=progress)
        assert len(seen) == len(run.outcomes)
        assert [done for _, done, _, _ in seen] == list(
            range(1, len(run.outcomes) + 1)
        )
        assert all(elapsed > 0 for _, _, _, elapsed in seen)

        summary = run.to_json_dict(top=2)
        assert summary["evaluated"] == len(run.outcomes)
        assert summary["cache_hits"] == 0
        assert len(summary["ranking"]) == 2
        assert summary["ranking"][0]["rank"] == 1
        # per-candidate timing records cover every submitted candidate
        assert len(summary["records"]) == len(run.outcomes)
        assert all("elapsed_s" in record for record in summary["records"])

    def test_fault_results_carry_ledger(self):
        run = run_candidates(fault_campaign_specs(), workers=0)
        for outcome in run.outcomes:
            result = outcome.result
            assert result.fault_injected >= result.fault_detected
            assert result.fault_residual == (
                result.fault_detected - result.fault_recovered
            )
