"""``repro explore`` CLI: supervisor flags and the exit-code contract.

0 = clean campaign, 3 = interrupted (covered by the subprocess tests in
``test_interrupt.py``), 4 = completed but with quarantined candidates.
Failures print a one-line footer in text output and land in the
``supervisor`` block of the JSON envelope.
"""

from __future__ import annotations

import json

from repro.__main__ import main

EXPLORE = ["explore", "--limit", "3", "--duration-us", "2000"]


class TestExitCodeContract:
    def test_clean_campaign_exits_0_without_footer(self, capsys):
        assert main(EXPLORE) == 0
        out = capsys.readouterr().out
        assert "evaluated 3 of 3 candidates" in out
        assert "failures:" not in out

    def test_recovered_failures_exit_0_with_footer(self, capsys):
        assert main(EXPLORE + ["--inject-worker-fault", "0:flaky"]) == 0
        out = capsys.readouterr().out
        assert "evaluated 3 of 3 candidates" in out
        assert "failures: 0 timeouts, 0 crashes, 1 errors;" in out
        assert "1 retries, 0 quarantined" in out

    def test_quarantined_candidate_exits_4(self, capsys):
        assert main(EXPLORE + ["--inject-worker-fault", "1:poison"]) == 4
        out = capsys.readouterr().out
        assert "evaluated 2 of 2 candidates" in out
        assert "1 quarantined" in out

    def test_malformed_fault_entry_exits_2(self, capsys):
        assert main(EXPLORE + ["--inject-worker-fault", "1:segfault"]) == 2
        assert "unknown mode" in capsys.readouterr().err

    def test_bad_policy_rejected(self, capsys):
        assert main(EXPLORE + ["--timeout", "0"]) != 0


class TestJsonSupervisorBlock:
    def test_quarantine_ledger_in_envelope(self, capsys):
        code = main(
            EXPLORE
            + ["--format", "json", "--inject-worker-fault", "1:poison"]
        )
        assert code == 4
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.explore/1"
        block = payload["results"]["supervisor"]
        assert block["quarantined"] == 1
        assert block["errors"] == 3
        quarantine = block["quarantine"]
        assert len(quarantine) == 1
        assert quarantine[0]["index"] == 1
        assert quarantine[0]["reason"] == "failure-budget"
        assert len(block["failures"]) == 3
        assert all(
            failure["detail"].startswith("WorkerFaultError")
            for failure in block["failures"]
        )

    def test_clean_run_has_zeroed_block(self, capsys):
        assert main(EXPLORE + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        block = payload["results"]["supervisor"]
        assert block["timeouts"] == 0
        assert block["crashes"] == 0
        assert block["errors"] == 0
        assert block["retries"] == 0
        assert block["quarantined"] == 0
        assert block["failures"] == []
        assert block["quarantine"] == []
        assert block["degraded_to_serial"] is False
