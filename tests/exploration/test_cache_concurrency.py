"""Concurrent writers racing on one cache entry never corrupt it.

The cache's atomicity contract (``docs/exploration.md``): entries are
written to a unique temp file and published with ``os.replace``, so a
reader — or a racing writer — sees either no entry or one complete,
valid entry, never torn JSON, and the store never leaks temp files.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.exploration import ResultCache, evaluate_spec
from repro.exploration.cache import CACHE_SCHEMA

from tests.exploration.test_engine import fault_free_specs


def _hammer(cache_dir, spec, result_dict, iterations, barrier, failures):
    """Child body: race store/load on the same digest ``iterations`` times."""
    from repro.exploration.objectives import EvaluationResult

    cache = ResultCache(cache_dir)
    result = EvaluationResult.from_dict(result_dict)
    barrier.wait()
    for _ in range(iterations):
        cache.store(spec, result, 0.5)
        loaded = cache.load(spec)
        # a racing writer must never make a load fail or change the result
        if loaded is None or loaded[0] != result:
            failures.put("load returned a missing or mismatched entry")
            return


class TestConcurrentWriters:
    def test_racing_stores_never_tear_the_entry(self, tmp_path):
        spec = fault_free_specs()[0]
        result = evaluate_spec(spec)
        cache_dir = str(tmp_path)

        context = multiprocessing.get_context("fork")
        writers = 4
        iterations = 50
        barrier = context.Barrier(writers)
        failures = context.Queue()
        processes = [
            context.Process(
                target=_hammer,
                args=(
                    cache_dir,
                    spec,
                    result.to_dict(),
                    iterations,
                    barrier,
                    failures,
                ),
            )
            for _ in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        assert failures.empty()

        # exactly one entry, valid JSON, correct content
        cache = ResultCache(cache_dir)
        assert len(cache) == 1
        path = cache.path_for(spec.digest())
        with open(path, encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["digest"] == spec.digest()
        assert entry["result_hash"] == result.stable_hash()
        loaded, elapsed = cache.load(spec)
        assert loaded == result
        assert elapsed == 0.5

        # the atomic-rename path must not leak temp files
        leftovers = [
            name
            for _, _, names in os.walk(cache_dir)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_concurrent_distinct_digests_all_land(self, tmp_path):
        specs = fault_free_specs()[:3]
        results = [evaluate_spec(spec) for spec in specs]
        cache_dir = str(tmp_path)

        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(len(specs))
        failures = context.Queue()
        processes = [
            context.Process(
                target=_hammer,
                args=(cache_dir, spec, result.to_dict(), 20, barrier, failures),
            )
            for spec, result in zip(specs, results)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        assert failures.empty()

        cache = ResultCache(cache_dir)
        assert len(cache) == len(specs)
        for spec, result in zip(specs, results):
            loaded, _ = cache.load(spec)
            assert loaded.stable_hash() == result.stable_hash()
