"""Grouping strategies and the communication-minimising merge."""

import pytest

from repro.exploration import (
    communication_minimizing_grouping,
    external_traffic,
    per_process_grouping,
    round_robin_grouping,
    single_group_grouping,
)
from repro.profiling import ProcessGroupInfo, analyze
from repro.simulation import LogWriter, parse_log


def synthetic_profiling():
    """Traffic where p1<->p2 and p3<->p4 are hot pairs; p5 is quiet."""
    info = ProcessGroupInfo()
    info.process_to_group = {f"p{i}": f"g_p{i}" for i in range(1, 6)}
    info.group_names = sorted(set(info.process_to_group.values()))
    writer = LogWriter()
    flows = [
        ("p1", "p2", 100),
        ("p2", "p1", 80),
        ("p3", "p4", 60),
        ("p4", "p3", 50),
        ("p1", "p3", 2),
        ("p5", "p1", 1),
    ]
    for sender, receiver, count in flows:
        for _ in range(count):
            writer.signal(
                time_ps=0, signal="s", sender=sender, receiver=receiver,
                bytes=4, latency_ps=0, transport="local",
            )
    writer.finish(1)
    return analyze(parse_log(writer.render()), info)


PROCESS_TYPES = {f"p{i}": "general" for i in range(1, 6)}


class TestBasicStrategies:
    def test_per_process(self):
        assignment = per_process_grouping(PROCESS_TYPES, PROCESS_TYPES)
        assert len(set(assignment.values())) == 5

    def test_single_group_splits_hardware(self):
        types = dict(PROCESS_TYPES, p5="hardware")
        assignment = single_group_grouping(types, types)
        assert assignment["p5"] == "g_hw"
        assert len({assignment[f"p{i}"] for i in range(1, 5)}) == 1

    def test_round_robin_deterministic(self):
        first = round_robin_grouping(PROCESS_TYPES, PROCESS_TYPES, 3, seed=7)
        second = round_robin_grouping(PROCESS_TYPES, PROCESS_TYPES, 3, seed=7)
        assert first == second

    def test_round_robin_respects_group_count(self):
        assignment = round_robin_grouping(PROCESS_TYPES, PROCESS_TYPES, 2)
        assert len(set(assignment.values())) <= 2


class TestCommunicationMinimizing:
    def test_hot_pairs_merged(self):
        data = synthetic_profiling()
        assignment = communication_minimizing_grouping(data, PROCESS_TYPES, 3)
        assert assignment["p1"] == assignment["p2"]
        assert assignment["p3"] == assignment["p4"]
        assert len(set(assignment.values())) == 3

    def test_hardware_kept_separate(self):
        data = synthetic_profiling()
        types = dict(PROCESS_TYPES, p2="hardware")
        assignment = communication_minimizing_grouping(data, types, 3)
        # p2 is hardware: cannot merge with p1 despite hot traffic
        assert assignment["p1"] != assignment["p2"]

    def test_beats_round_robin_on_external_traffic(self):
        data = synthetic_profiling()
        optimised = communication_minimizing_grouping(data, PROCESS_TYPES, 3)
        arbitrary = round_robin_grouping(PROCESS_TYPES, PROCESS_TYPES, 3, seed=3)
        assert external_traffic(optimised, data) <= external_traffic(arbitrary, data)

    def test_group_count_one_internalises_everything(self):
        data = synthetic_profiling()
        assignment = communication_minimizing_grouping(data, PROCESS_TYPES, 1)
        assert len(set(assignment.values())) == 1
        assert external_traffic(assignment, data) == 0


class TestEmptyProcessList:
    """Every strategy must degrade gracefully to an empty assignment."""

    def test_per_process_empty(self):
        assert per_process_grouping([], {}) == {}

    def test_single_group_empty(self):
        assert single_group_grouping([], {}) == {}

    def test_round_robin_empty(self):
        assert round_robin_grouping([], {}, 3) == {}

    def test_communication_minimizing_empty(self):
        data = synthetic_profiling()
        assert communication_minimizing_grouping(data, {}, 2) == {}

    def test_external_traffic_empty_assignment(self):
        assert external_traffic({}, synthetic_profiling()) == 0


class TestAllHardware:
    """Hardware-only models: nothing may land in a software group."""

    HW_TYPES = {f"p{i}": "hardware" for i in range(1, 4)}

    def test_single_group_all_hardware(self):
        assignment = single_group_grouping(self.HW_TYPES, self.HW_TYPES)
        assert set(assignment.values()) == {"g_hw"}

    def test_round_robin_all_hardware(self):
        assignment = round_robin_grouping(self.HW_TYPES, self.HW_TYPES, 2)
        assert set(assignment.values()) == {"g_hw"}

    def test_communication_minimizing_all_hardware_merges(self):
        # same-kind clusters may merge, so the greedy loop still reaches
        # the requested count even when every process is hardware
        data = synthetic_profiling()
        types = {f"p{i}": "hardware" for i in range(1, 6)}
        assignment = communication_minimizing_grouping(data, types, 2)
        assert len(set(assignment.values())) == 2

    def test_mixed_kinds_never_share_a_group(self):
        data = synthetic_profiling()
        types = dict(
            {f"p{i}": "hardware" for i in range(1, 3)},
            **{f"p{i}": "general" for i in range(3, 6)},
        )
        assignment = communication_minimizing_grouping(data, types, 2)
        hw_groups = {assignment[p] for p, k in types.items() if k == "hardware"}
        sw_groups = {assignment[p] for p, k in types.items() if k == "general"}
        assert not hw_groups & sw_groups


class TestGroupCountEdges:
    def test_requested_count_above_process_count(self):
        data = synthetic_profiling()
        assignment = communication_minimizing_grouping(data, PROCESS_TYPES, 99)
        # nothing merges: one group per process
        assert len(set(assignment.values())) == 5

    def test_round_robin_single_group(self):
        assignment = round_robin_grouping(PROCESS_TYPES, PROCESS_TYPES, 1)
        assert len(set(assignment.values())) == 1


class TestExternalTraffic:
    def test_counts_only_cross_group(self):
        data = synthetic_profiling()
        same = {f"p{i}": "g" for i in range(1, 6)}
        assert external_traffic(same, data) == 0
        split = dict(same, p2="other")
        assert external_traffic(split, data) == 180  # p1->p2 plus p2->p1

    def test_unassigned_endpoints_ignored(self):
        data = synthetic_profiling()
        partial = {"p1": "a", "p2": "a"}
        assert external_traffic(partial, data) == 0


class TestTutmacGrouping:
    def test_recovers_paper_like_grouping(self, tutmac_app, tutmac_reference_result):
        """Greedy merging on real TUTMAC profiling data keeps the paper's
        heavy pipelines intact."""
        from repro.profiling import profile_run

        data = profile_run(tutmac_reference_result, tutmac_app)
        types = {
            name: process.process_type()
            for name, process in tutmac_app.processes.items()
            if not process.is_environment
        }
        assignment = communication_minimizing_grouping(data, types, 4)
        # the hottest flows must stay internal: msduRec->frag (500/s) and
        # frag->rca (2500/s) dominate, so they end up merged
        assert assignment["msduRec"] == assignment["frag"]
        # crc is hardware: always its own group
        crc_group = assignment["crc"]
        assert [p for p, g in assignment.items() if g == crc_group] == ["crc"]
        # the result does not exceed the requested group count
        assert len(set(assignment.values())) <= 4
