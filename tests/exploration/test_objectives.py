"""EvaluationResult edge cases: serialisation, hashing, tie-breaking."""

from __future__ import annotations

import pytest

from repro.exploration import (
    CandidateSpec,
    EvaluationResult,
    evaluate,
    run_candidates,
    summarize,
)
from repro.mapping import MappingModel

from tests.conftest import build_pingpong, build_two_cpu_platform


def make_result(**overrides) -> EvaluationResult:
    base = dict(
        bus_signals=10,
        bus_bytes=400,
        bus_busy_ps=5_000,
        max_pe_utilization=0.5,
        mean_latency_ps=123.456,
        delivered_msdus=7,
        dropped_signals=0,
        group_cycles={"g1": 100, "g2": 50},
    )
    base.update(overrides)
    return EvaluationResult(**base)


class TestSerialisation:
    def test_dict_roundtrip(self):
        result = make_result(fault_injected=3, fault_detected=3, fault_recovered=2)
        clone = EvaluationResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.fault_residual == 1

    def test_from_dict_ignores_unknown_keys(self):
        data = make_result().to_dict()
        data["future_field"] = "whatever"
        assert EvaluationResult.from_dict(data) == make_result()

    def test_fault_fields_default_to_zero(self):
        result = make_result()
        assert result.fault_injected == 0
        assert result.fault_residual == 0


class TestStableHash:
    def test_equal_results_equal_hashes(self):
        assert make_result().stable_hash() == make_result().stable_hash()

    def test_any_field_change_changes_hash(self):
        base = make_result().stable_hash()
        assert make_result(bus_bytes=401).stable_hash() != base
        assert make_result(mean_latency_ps=123.457).stable_hash() != base
        assert make_result(group_cycles={"g1": 100}).stable_hash() != base
        assert make_result(fault_injected=1).stable_hash() != base


class TestCost:
    def test_dropped_signals_dominate(self):
        clean = make_result()
        dropping = make_result(dropped_signals=1)
        assert dropping.cost() > clean.cost() + 999_999

    def test_utilization_breaks_bus_ties(self):
        hot = make_result(max_pe_utilization=0.9)
        cool = make_result(max_pe_utilization=0.2)
        assert cool.cost() < hot.cost()


class TestRankingTieBreak:
    def test_equal_cost_ranked_by_spec_key(self):
        # pingpong on two identical CPUs: the two colocated designs tie on
        # cost; the ranking must order them by the canonical spec key
        def factory():
            return build_pingpong(), build_two_cpu_platform()

        specs = [
            CandidateSpec.make(factory, {"g1": "cpu2", "g2": "cpu2"}),
            CandidateSpec.make(factory, {"g1": "cpu1", "g2": "cpu1"}),
        ]
        run = run_candidates(specs, workers=0)
        first, second = run.ranking()
        assert first.cost == second.cost
        assert first.spec.sort_key() < second.spec.sort_key()
        # cpu1 sorts before cpu2 in the canonical JSON
        assert first.spec.mapping_dict == {"g1": "cpu1", "g2": "cpu1"}


class TestSummarizeEdges:
    def test_colocated_run_has_no_bus_traffic(self):
        application, platform = build_pingpong(), build_two_cpu_platform()
        mapping = MappingModel(application, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
        result = evaluate(application, platform, mapping, duration_us=3_000)
        assert result.bus_signals == 0
        assert result.bus_bytes == 0
        assert result.mean_latency_ps == 0.0  # no bus records: defined as 0
        assert result.fault_injected == 0

    def test_summarize_accepts_quiet_log(self):
        # a simulation horizon too short for any signal still summarises
        from repro.simulation.system import SystemSimulation

        application, platform = build_pingpong(), build_two_cpu_platform()
        mapping = MappingModel(application, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        sim_result = SystemSimulation(application, platform, mapping).run(0)
        metrics = summarize(sim_result, application)
        assert metrics.bus_signals == 0
        assert metrics.max_pe_utilization == 0.0
