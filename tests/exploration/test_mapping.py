"""Mapping exploration: enumeration, exhaustive search, improvement loop."""

import pytest

from repro.exploration import (
    enumerate_assignments,
    exhaustive_search,
    improvement_loop,
)
from repro.mapping import MappingModel

from tests.conftest import build_pingpong, build_two_cpu_platform


def factory():
    return build_pingpong(), build_two_cpu_platform()


class TestEnumeration:
    def test_two_groups_two_cpus(self):
        app, platform = factory()
        assignments = enumerate_assignments(app, platform)
        assert len(assignments) == 4
        assert {"g1": "cpu1", "g2": "cpu2"} in assignments
        assert {"g1": "cpu2", "g2": "cpu2"} in assignments

    def test_type_restriction_shrinks_domain(self, tutwlan_system):
        application, platform, _ = tutwlan_system
        assignments = enumerate_assignments(application, platform)
        # group4 is hardware: runs on accelerator1 or any general CPU (4);
        # groups 1-3 are general: 3 CPUs each => 3^3 * 4
        assert len(assignments) == 27 * 4
        for assignment in assignments:
            assert assignment["group4"] in {
                "accelerator1", "processor1", "processor2", "processor3"
            }
            assert assignment["group1"] != "accelerator1"


class TestExhaustiveSearch:
    def test_candidates_sorted_by_cost(self):
        candidates = exhaustive_search(factory, duration_us=5_000)
        costs = [c.cost for c in candidates]
        assert costs == sorted(costs)
        assert len(candidates) == 4

    def test_colocated_beats_split_on_bus_bytes(self):
        candidates = exhaustive_search(factory, duration_us=5_000)
        best = candidates[0]
        # the cheapest design co-locates both groups (zero bus traffic)
        assert best.assignment["g1"] == best.assignment["g2"]
        assert best.result.bus_bytes == 0
        worst = candidates[-1]
        assert worst.result.bus_bytes > 0

    def test_limit_caps_evaluations(self):
        candidates = exhaustive_search(factory, duration_us=2_000, limit=2)
        assert len(candidates) == 2


class TestImprovementLoop:
    def test_improves_split_initial_design(self):
        history = improvement_loop(
            factory,
            {"g1": "cpu1", "g2": "cpu2"},
            duration_us=5_000,
        )
        assert len(history) >= 2
        assert history[-1].cost < history[0].cost
        # the accepted move co-located the communicating groups
        final = history[-1].assignment
        assert final["g1"] == final["g2"]

    def test_already_good_design_stays(self):
        history = improvement_loop(
            factory,
            {"g1": "cpu1", "g2": "cpu1"},
            duration_us=5_000,
        )
        assert history[0].assignment == {"g1": "cpu1", "g2": "cpu1"}
        # no move can beat zero bus traffic
        assert history[-1].assignment["g1"] == history[-1].assignment["g2"]

    def test_history_costs_monotonic(self):
        history = improvement_loop(
            factory, {"g1": "cpu1", "g2": "cpu2"}, duration_us=5_000
        )
        costs = [candidate.cost for candidate in history]
        assert costs == sorted(costs, reverse=True)


class TestEvaluation:
    def test_evaluate_metrics(self):
        from repro.exploration import evaluate

        app, platform = factory()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = evaluate(app, platform, mapping, duration_us=5_000)
        assert result.bus_signals > 0
        assert result.bus_bytes > 0
        assert 0 < result.max_pe_utilization <= 1.0
        assert result.mean_latency_ps > 0
        assert result.dropped_signals == 0
        assert result.group_cycles["g1"] > 0
