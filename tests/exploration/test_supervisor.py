"""The campaign supervisor: fault tolerance without determinism loss.

The tentpole invariant: a campaign with injected worker faults
(crashes, hangs, transient errors) produces a ranking byte-identical to
a clean run — for serial and parallel dispatch alike.  On top of that,
the failure ledger, the retry/backoff policy and poison-candidate
quarantine each get direct coverage.
"""

from __future__ import annotations

import pytest

from repro.errors import ExplorationError
from repro.exploration import (
    SupervisorConfig,
    WorkerFaultPlan,
    parse_worker_faults,
    run_candidates,
)
from repro.exploration.supervisor import (
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    QUARANTINE_FAILURE_BUDGET,
    QUARANTINE_RETRIES_EXHAUSTED,
    Supervisor,
)

from tests.exploration.test_engine import fault_free_specs, result_hashes


def fast_config(**overrides):
    """A supervisor policy with near-zero backoffs (tests must stay quick)."""
    defaults = dict(
        backoff_base_s=0.001, backoff_max_s=0.01, backoff_jitter_s=0.001
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestFaultToleranceDeterminism:
    """Injected infrastructure faults never change the ranking."""

    @pytest.mark.parametrize("workers", [0, 1, 4])
    def test_chaos_run_matches_clean_run(self, workers):
        clean = run_candidates(fault_free_specs(), workers=0)
        plan = WorkerFaultPlan.make(
            {0: ["crash"], 2: ["flaky", "flaky"], 3: ["slow"]}, slow_s=0.01
        )
        chaotic = run_candidates(
            fault_free_specs(),
            workers=workers,
            supervisor=fast_config(),
            worker_faults=plan,
        )
        assert result_hashes(chaotic) == result_hashes(clean)
        assert [o.spec.sort_key() for o in chaotic.ranking()] == [
            o.spec.sort_key() for o in clean.ranking()
        ]
        counters = chaotic.supervisor_counters()
        assert counters["crashes"] == 1
        assert counters["errors"] == 2
        assert counters["retries"] == 3
        assert counters["quarantined"] == 0
        assert not chaotic.quarantined

    def test_hang_is_reclaimed_by_timeout(self):
        clean = run_candidates(fault_free_specs(), workers=0)
        plan = WorkerFaultPlan.make({1: ["hang"]}, hang_s=30.0)
        run = run_candidates(
            fault_free_specs(),
            workers=2,
            supervisor=fast_config(timeout_s=1.0),
            worker_faults=plan,
        )
        assert result_hashes(run) == result_hashes(clean)
        assert run.supervisor_counters()["timeouts"] == 1
        timeout_failures = [
            f for f in run.failures if f.kind == FAILURE_TIMEOUT
        ]
        assert len(timeout_failures) == 1
        assert timeout_failures[0].index == 1

    def test_serial_hang_degrades_to_transient_error(self):
        # workers=0 cannot preempt, so an injected hang surfaces as a
        # raised WorkerFaultError classified as a timeout failure
        plan = WorkerFaultPlan.make({0: ["hang"]})
        run = run_candidates(
            fault_free_specs(), workers=0,
            supervisor=fast_config(), worker_faults=plan,
        )
        assert run.supervisor_counters()["timeouts"] == 1
        assert not run.quarantined

    def test_crash_records_exit_code(self):
        plan = WorkerFaultPlan.make({0: ["crash"]})
        run = run_candidates(
            fault_free_specs(), workers=2,
            supervisor=fast_config(), worker_faults=plan,
        )
        crash = next(f for f in run.failures if f.kind == FAILURE_CRASH)
        assert crash.exitcode == 137
        assert crash.attempt == 1


class TestAttemptAccounting:
    def test_outcomes_carry_attempts_and_ledger(self):
        plan = WorkerFaultPlan.make({1: ["flaky", "flaky"]})
        run = run_candidates(
            fault_free_specs(), workers=0,
            supervisor=fast_config(), worker_faults=plan,
        )
        by_index = {o.index: o for o in run.outcomes}
        assert by_index[1].attempts == 3
        assert [f.kind for f in by_index[1].failures] == [
            FAILURE_ERROR, FAILURE_ERROR,
        ]
        untouched = [o for o in run.outcomes if o.index != 1]
        assert all(o.attempts == 1 and not o.failures for o in untouched)

    def test_json_summary_has_supervisor_block(self):
        plan = WorkerFaultPlan.make({0: ["flaky"]})
        run = run_candidates(
            fault_free_specs(), workers=0,
            supervisor=fast_config(), worker_faults=plan,
        )
        summary = run.to_json_dict(top=2)
        block = summary["supervisor"]
        assert block["errors"] == 1
        assert block["retries"] == 1
        assert block["degraded_to_serial"] is False
        assert len(block["failures"]) == 1
        failure = block["failures"][0]
        assert failure["kind"] == FAILURE_ERROR
        assert failure["attempt"] == 1
        assert failure["backoff_s"] > 0
        assert block["quarantine"] == []
        assert all("attempts" in record for record in summary["records"])


class TestQuarantine:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_poison_candidate_is_quarantined(self, workers):
        specs = fault_free_specs()
        plan = WorkerFaultPlan.make({1: ["poison"]})
        run = run_candidates(
            specs, workers=workers,
            supervisor=fast_config(), worker_faults=plan,
        )
        assert len(run.outcomes) == len(specs) - 1
        assert len(run.quarantined) == 1
        record = run.quarantined[0]
        assert record.index == 1
        assert record.reason == QUARANTINE_FAILURE_BUDGET
        assert record.failures == 3
        # the surviving ranking is still the clean ranking minus the victim
        clean = run_candidates(specs, workers=0)
        survivor_hashes = [
            o.result.stable_hash()
            for o in clean.ranking()
            if o.index != 1
        ]
        assert result_hashes(run) == survivor_hashes

    def test_retries_exhausted_reason(self):
        plan = WorkerFaultPlan.make({0: ["flaky", "flaky"]})
        run = run_candidates(
            fault_free_specs(), workers=0,
            supervisor=fast_config(max_retries=0, quarantine_after=5),
            worker_faults=plan,
        )
        assert run.quarantined[0].reason == QUARANTINE_RETRIES_EXHAUSTED
        assert run.quarantined[0].failures == 1

    def test_quarantine_after_bounds_failures(self):
        plan = WorkerFaultPlan.make({0: ["poison"]})
        run = run_candidates(
            fault_free_specs(), workers=0,
            supervisor=fast_config(max_retries=10, quarantine_after=2),
            worker_faults=plan,
        )
        assert run.quarantined[0].failures == 2
        assert run.supervisor_counters()["quarantined"] == 1


class TestBackoffPolicy:
    def test_backoff_is_deterministic(self):
        config = SupervisorConfig(seed=7)
        assert config.backoff_s("digest-a", 1) == config.backoff_s("digest-a", 1)
        assert config.backoff_s("digest-a", 1) != config.backoff_s("digest-b", 1)
        assert config.backoff_s("digest-a", 1) != config.backoff_s("digest-a", 2)
        assert (
            SupervisorConfig(seed=1).backoff_s("k", 1)
            != SupervisorConfig(seed=2).backoff_s("k", 1)
        )

    def test_backoff_grows_and_caps(self):
        config = SupervisorConfig(
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_max_s=0.35,
            backoff_jitter_s=0.0,
        )
        assert config.backoff_s("k", 1) == pytest.approx(0.1)
        assert config.backoff_s("k", 2) == pytest.approx(0.2)
        assert config.backoff_s("k", 3) == pytest.approx(0.35)  # capped
        assert config.backoff_s("k", 9) == pytest.approx(0.35)

    def test_jitter_stays_bounded(self):
        config = SupervisorConfig(backoff_base_s=0.0, backoff_jitter_s=0.05)
        for attempt in range(1, 20):
            jitter = config.backoff_s("k", attempt)
            assert 0.0 <= jitter < 0.05

    def test_config_validation(self):
        with pytest.raises(ExplorationError):
            SupervisorConfig(timeout_s=0.0)
        with pytest.raises(ExplorationError):
            SupervisorConfig(max_retries=-1)
        with pytest.raises(ExplorationError):
            SupervisorConfig(quarantine_after=0)
        with pytest.raises(ExplorationError):
            SupervisorConfig(backoff_factor=0.5)
        with pytest.raises(ExplorationError):
            SupervisorConfig(backoff_base_s=-0.1)


class TestWorkerFaultPlan:
    def test_schedule_consumed_per_attempt(self):
        plan = WorkerFaultPlan.make({3: ["crash", "flaky"]})
        assert plan.mode_for(3, 1) == "crash"
        assert plan.mode_for(3, 2) == "flaky"
        assert plan.mode_for(3, 3) is None
        assert plan.mode_for(0, 1) is None

    def test_poison_faults_every_attempt(self):
        plan = WorkerFaultPlan.make({2: ["poison"]})
        for attempt in (1, 2, 50):
            assert plan.mode_for(2, attempt) == "poison"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExplorationError):
            WorkerFaultPlan.make({0: ["segfault"]})

    def test_plan_is_picklable(self):
        import pickle

        plan = WorkerFaultPlan.make({0: ["crash"], 1: ["poison"]})
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_parse_cli_entries(self):
        plan = parse_worker_faults(["0:crash", "3:flaky:2", "5:poison"])
        assert plan.mode_for(0, 1) == "crash"
        assert plan.mode_for(3, 1) == "flaky"
        assert plan.mode_for(3, 2) == "flaky"
        assert plan.mode_for(3, 3) is None
        assert plan.mode_for(5, 9) == "poison"

    def test_parse_empty_is_none(self):
        assert parse_worker_faults([]) is None

    @pytest.mark.parametrize(
        "entry", ["nonsense", "0:segfault", "x:crash", "0:crash:0", "0:crash:x"]
    )
    def test_parse_rejects_malformed(self, entry):
        with pytest.raises(ExplorationError):
            parse_worker_faults([entry])


class _UnspawnableContext:
    """A multiprocessing context whose Process can never start."""

    @staticmethod
    def Pipe(duplex=False):
        import multiprocessing

        return multiprocessing.Pipe(duplex=duplex)

    class Process:
        def __init__(self, *args, **kwargs):
            pass

        def start(self):
            raise OSError("fork: resource temporarily unavailable")


class TestGracefulDegradation:
    def test_irreparable_pool_degrades_to_serial(self):
        specs = fault_free_specs()
        boss = Supervisor(
            context=_UnspawnableContext(), workers=2, config=fast_config()
        )
        collected = []

        def on_success(index, result, elapsed, attempts, failures):
            collected.append((index, result.stable_hash()))

        stats = boss.run(list(enumerate(specs)), on_success)
        assert stats.degraded_to_serial
        assert stats.spawn_failures >= 2
        assert len(collected) == len(specs)
        clean = run_candidates(specs, workers=0)
        assert dict(collected) == {
            o.index: o.result.stable_hash() for o in clean.outcomes
        }

    def test_degraded_run_flag_in_engine_summary(self):
        # the engine exposes the flag so the CLI/flow can report it
        run = run_candidates(fault_free_specs(), workers=0)
        assert run.to_json_dict()["supervisor"]["degraded_to_serial"] is False
