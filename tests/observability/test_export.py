"""Chrome-trace export: validity, deterministic ids, byte-identical runs."""

from __future__ import annotations

import json

from repro.mapping import MappingModel
from repro.observability import (
    SYSTEM_TRACK,
    Tracer,
    bus_track,
    pe_track,
    render_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.simulation import SystemSimulation

from tests.conftest import build_pingpong, build_two_cpu_platform


def build_trace() -> Tracer:
    tracer = Tracer()
    tracer.span(
        "step", pe_track("cpu2"), start_ps=2_000_000, duration_ps=500_000,
        category="exec",
    )
    tracer.span("step", pe_track("cpu1"), start_ps=0, duration_ps=1_000_000)
    tracer.instant("msg", SYSTEM_TRACK, category="signal", time_ps=1_500_000)
    tracer.counter("requests", bus_track("seg1"), {"depth": 2}, time_ps=100)
    return tracer


def run_traced_pingpong() -> Tracer:
    app = build_pingpong()
    platform = build_two_cpu_platform()
    mapping = MappingModel(app, platform)
    mapping.map("g1", "cpu1")
    mapping.map("g2", "cpu2")
    tracer = Tracer()
    SystemSimulation(app, platform, mapping, tracer=tracer).run(5_000)
    return tracer


class TestChromeTraceShape:
    def test_every_event_carries_ph_ts_pid_tid(self):
        payload = to_chrome_trace(build_trace())
        assert payload["displayTimeUnit"] == "ns"
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(event)
            assert event["ph"] in ("M", "X", "i", "C")

    def test_metadata_events_label_every_track(self):
        events = to_chrome_trace(build_trace())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        processes = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert processes == {"pe", "bus", "system"}
        assert threads == {"cpu1", "cpu2", "seg1", "dispatch"}
        # metadata rows come first so Perfetto labels tracks before data
        first_data = next(i for i, e in enumerate(events) if e["ph"] != "M")
        assert all(e["ph"] == "M" for e in events[:first_data])

    def test_pid_tid_assignment_is_sorted_and_deterministic(self):
        events = to_chrome_trace(build_trace())["traceEvents"]
        names = {}
        for event in events:
            if event["ph"] == "M" and event["name"] == "process_name":
                names[event["args"]["name"]] = event["pid"]
        # sorted group names -> pids from 1: bus < pe < system
        assert names == {"bus": 1, "pe": 2, "system": 3}
        spans = [e for e in events if e["ph"] == "X"]
        # within the "pe" group, cpu1 sorts before cpu2
        by_name = {
            (e["pid"], e["tid"]): e["ts"] for e in spans
        }
        assert by_name == {(2, 1): 0.0, (2, 2): 2.0}

    def test_timestamps_are_microseconds(self):
        spans = [
            e for e in to_chrome_trace(build_trace())["traceEvents"]
            if e["ph"] == "X"
        ]
        longest = max(spans, key=lambda e: e["dur"])
        assert longest["dur"] == 1.0  # 1_000_000 ps

    def test_instants_are_thread_scoped(self):
        instants = [
            e for e in to_chrome_trace(build_trace())["traceEvents"]
            if e["ph"] == "i"
        ]
        assert instants and all(e["s"] == "t" for e in instants)
        assert instants[0]["cat"] == "signal"

    def test_metadata_lands_in_container(self):
        payload = to_chrome_trace(build_trace(), metadata={"app": "PingPong"})
        assert payload["metadata"] == {"app": "PingPong"}


class TestRendering:
    def test_render_is_canonical_json(self):
        text = render_chrome_trace(build_trace())
        assert ": " not in text and "\n" not in text
        assert json.loads(text)["traceEvents"]

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(build_trace(), path, metadata={"k": 1})
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        assert content.endswith("\n")
        assert json.loads(content)["metadata"] == {"k": 1}


class TestDeterminism:
    def test_same_model_renders_byte_identical_traces(self):
        first = render_chrome_trace(run_traced_pingpong())
        second = render_chrome_trace(run_traced_pingpong())
        assert first == second
        assert json.loads(first)["traceEvents"]

    def test_simulation_trace_has_exec_spans_and_signals(self):
        payload = to_chrome_trace(run_traced_pingpong())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert any(e.get("cat") == "exec" for e in spans)
        assert any(e["ph"] == "i" and e.get("cat") == "signal" for e in events)
        assert any(e["ph"] == "C" for e in events)
