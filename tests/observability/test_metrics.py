"""Metrics aggregation: histogram buckets, per-PE/segment arithmetic."""

from __future__ import annotations

from repro.observability import (
    KERNEL_TRACK,
    SYSTEM_TRACK,
    LatencyHistogram,
    Tracer,
    bus_track,
    collect_metrics,
    efsm_track,
    pe_track,
)


class TestLatencyHistogram:
    def test_power_of_two_buckets(self):
        histogram = LatencyHistogram()
        for latency in (0, 1, 2, 3, 4, 5, 1000):
            histogram.observe(latency)
        # 0 -> bucket 0; 1 -> 1; 2 -> 2; 3,4 -> 4; 5 -> 8; 1000 -> 1024
        assert histogram.buckets == {0: 1, 1: 1, 2: 1, 4: 2, 8: 1, 1024: 1}
        assert histogram.count == 7
        assert histogram.max_ps == 1000

    def test_mean_of_empty_population_is_zero(self):
        assert LatencyHistogram().mean_ps == 0.0

    def test_to_dict_uses_string_bucket_keys(self):
        histogram = LatencyHistogram()
        histogram.observe(3)
        assert histogram.to_dict()["buckets"] == {"4": 1}


def build_trace() -> Tracer:
    """A small synthetic trace with every event category."""
    tracer = Tracer()
    tracer.span("p1", pe_track("cpu"), start_ps=0, duration_ps=300, category="exec")
    tracer.span("p1", pe_track("cpu"), start_ps=500, duration_ps=200, category="exec")
    tracer.span(
        "cpu", bus_track("seg"), start_ps=100, duration_ps=50,
        category="bus", bytes=32, wait_ps=10,
    )
    tracer.span(
        "cpu", bus_track("seg"), start_ps=200, duration_ps=50,
        category="bus", bytes=8, wait_ps=0, fault="bus-corrupt",
    )
    tracer.instant(
        "msg", SYSTEM_TRACK, category="signal", time_ps=150,
        sender="a", receiver="b", latency_ps=50, transport="bus",
    )
    tracer.instant(
        "msg", SYSTEM_TRACK, category="signal", time_ps=250,
        sender="a", receiver="a", latency_ps=3, transport="local",
    )
    tracer.instant("msg", SYSTEM_TRACK, category="dispatch", time_ps=100)
    tracer.instant("msg", SYSTEM_TRACK, category="drop", time_ps=300)
    tracer.instant(
        "pe-stall", pe_track("cpu"), category="fault", time_ps=400, extra_ps=77
    )
    tracer.instant("t", efsm_track("p1"), category="efsm", time_ps=10)
    tracer.counter("ready", pe_track("cpu"), {"depth": 4}, time_ps=50)
    tracer.counter("ready", pe_track("cpu"), {"depth": 2}, time_ps=60)
    tracer.counter("requests", bus_track("seg"), {"depth": 3}, time_ps=70)
    tracer.counter("queue_depth", KERNEL_TRACK, {"depth": 9}, time_ps=80)
    return tracer


class TestCollectMetrics:
    def test_pe_breakdown(self):
        report = collect_metrics(build_trace(), end_time_ps=1000)
        cpu = report.pes["cpu"]
        assert cpu.busy_ps == 500 and cpu.steps == 2
        assert cpu.stall_ps == 77
        assert cpu.ready_queue_peak == 4
        assert cpu.utilization(1000) == 0.5
        assert cpu.idle_ps(1000) == 500

    def test_segment_breakdown(self):
        report = collect_metrics(build_trace(), end_time_ps=1000)
        seg = report.segments["seg"]
        assert seg.busy_ps == 100 and seg.transfers == 2
        assert seg.wait_ps == 10 and seg.bytes == 40
        assert seg.queue_peak == 3
        assert seg.faulted_transfers == 1
        assert seg.occupancy(1000) == 0.1

    def test_signal_accounting_and_latency_by_transport(self):
        report = collect_metrics(build_trace(), end_time_ps=1000)
        assert report.dispatched_signals == 1
        assert report.delivered_signals == 2
        assert report.dropped_signals == 1
        assert report.transitions == 1
        assert report.faults_by_kind == {"pe-stall": 1}
        assert report.kernel_queue_peak == 9
        assert set(report.latency) == {"bus", "local"}
        assert report.latency["bus"].count == 1
        assert report.latency["bus"].max_ps == 50

    def test_latency_keyed_by_group_with_group_of(self):
        report = collect_metrics(
            build_trace(), end_time_ps=1000, group_of={"a": "g1", "b": "g2"}
        )
        assert set(report.latency) == {"g1->g2", "g1->g1"}

    def test_to_dict_utilization_consistent_with_simulated_time(self):
        report = collect_metrics(build_trace(), end_time_ps=1000)
        data = report.to_dict()
        for pe in data["pes"].values():
            assert pe["busy_ps"] + pe["idle_ps"] == data["end_time_ps"]
            assert pe["utilization"] == pe["busy_ps"] / data["end_time_ps"]
