"""Tracer API: spans, instants, counters, clock binding, handle nesting."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.observability import (
    KERNEL_TRACK,
    SYSTEM_TRACK,
    Tracer,
    bus_track,
    efsm_track,
    pe_track,
)


class TestTracks:
    def test_helpers_build_group_lane_pairs(self):
        assert pe_track("cpu1") == ("pe", "cpu1")
        assert bus_track("seg1") == ("bus", "seg1")
        assert efsm_track("p1") == ("efsm", "p1")
        assert KERNEL_TRACK == ("kernel", "scheduler")
        assert SYSTEM_TRACK == ("system", "dispatch")


class TestClock:
    def test_implicit_time_is_zero_without_clock(self):
        tracer = Tracer()
        tracer.instant("x", SYSTEM_TRACK)
        assert tracer.instants()[0].time_ps == 0

    def test_bound_clock_supplies_timestamps(self):
        now = [0]
        tracer = Tracer(clock=lambda: now[0])
        now[0] = 42
        tracer.instant("x", SYSTEM_TRACK)
        assert tracer.instants()[0].time_ps == 42

    def test_bind_clock_after_construction(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 7)
        assert tracer.now_ps() == 7

    def test_explicit_time_overrides_clock(self):
        tracer = Tracer(clock=lambda: 99)
        tracer.instant("x", SYSTEM_TRACK, time_ps=5)
        assert tracer.instants()[0].time_ps == 5


class TestSpans:
    def test_begin_end_produces_span(self):
        now = [100]
        tracer = Tracer(clock=lambda: now[0])
        handle = tracer.begin("step", pe_track("cpu"), category="exec", n=1)
        now[0] = 400
        span = tracer.end(handle, m=2)
        assert span.start_ps == 100 and span.duration_ps == 300
        assert span.end_ps == 400
        assert span.args == {"n": 1, "m": 2}
        assert tracer.open_spans == 0

    def test_nested_handles_stay_valid(self):
        # the bus holds one open span per in-flight segment grant; closing
        # the later one must not invalidate the earlier handle
        tracer = Tracer()
        outer = tracer.begin("outer", bus_track("s1"), time_ps=0)
        inner = tracer.begin("inner", bus_track("s2"), time_ps=10)
        tracer.end(inner, time_ps=20)
        tracer.end(outer, time_ps=30)
        names = [span.name for span in tracer.spans()]
        assert names == ["inner", "outer"]
        assert tracer.open_spans == 0

    def test_double_end_raises(self):
        tracer = Tracer()
        handle = tracer.begin("x", pe_track("cpu"), time_ps=0)
        tracer.end(handle, time_ps=1)
        with pytest.raises(SimulationError):
            tracer.end(handle, time_ps=2)

    def test_end_before_start_raises(self):
        tracer = Tracer()
        handle = tracer.begin("x", pe_track("cpu"), time_ps=10)
        with pytest.raises(SimulationError):
            tracer.end(handle, time_ps=5)

    def test_one_shot_span(self):
        tracer = Tracer()
        tracer.span("x", pe_track("cpu"), start_ps=5, duration_ps=10, k=3)
        (span,) = tracer.spans()
        assert span.start_ps == 5 and span.end_ps == 15 and span.args == {"k": 3}

    def test_negative_duration_raises(self):
        tracer = Tracer()
        with pytest.raises(SimulationError):
            tracer.span("x", pe_track("cpu"), start_ps=0, duration_ps=-1)


class TestViews:
    def test_filters_partition_the_stream(self):
        tracer = Tracer()
        tracer.span("s", pe_track("cpu"), start_ps=0, duration_ps=1)
        tracer.instant("i", SYSTEM_TRACK)
        tracer.counter("c", KERNEL_TRACK, {"depth": 2})
        assert len(tracer.events) == 3
        assert [e.name for e in tracer.spans()] == ["s"]
        assert [e.name for e in tracer.instants()] == ["i"]
        assert [e.name for e in tracer.counters()] == ["c"]
        assert tracer.counters()[0].values == {"depth": 2}
