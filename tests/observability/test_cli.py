"""CLI + flow acceptance for the observability layer.

Covers ``repro trace`` in all three formats, ``flow --trace`` artefacts
and the determinism satellite: exploration summaries must not depend on
the worker count.
"""

from __future__ import annotations

import json
import os

from repro.__main__ import main
from repro.mapping import MappingModel
from repro.flow import run_design_flow

from tests.conftest import build_pingpong, build_two_cpu_platform


class TestTraceCommand:
    def test_text_format_prints_metric_tables(self, capsys):
        assert main(["trace", "examples", "--duration-us", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Per-PE execution" in out
        assert "HIBI segment occupancy" in out
        assert "signals:" in out

    def test_json_format_uses_envelope(self, capsys):
        assert main(
            ["trace", "examples", "--duration-us", "2000", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.trace-metrics/1"
        assert payload["meta"]["duration_us"] == 2000
        results = payload["results"]
        end = results["end_time_ps"]
        assert end == 2000 * 1_000_000
        for pe in results["pes"].values():
            assert pe["busy_ps"] + pe["idle_ps"] == end
            assert pe["utilization"] == pe["busy_ps"] / end

    def test_chrome_format_is_a_plain_trace_container(self, capsys):
        assert main(
            ["trace", "--duration-us", "2000", "--format", "chrome"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "schema" not in payload  # deliberately unenveloped
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "ts", "pid", "tid"} <= set(event)
        assert payload["metadata"]["duration_us"] == 2000

    def test_out_writes_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(
            ["trace", "--duration-us", "2000", "--out", path]
        ) == 0
        assert "ui.perfetto.dev" in capsys.readouterr().out
        with open(path, encoding="utf-8") as handle:
            assert json.loads(handle.read())["traceEvents"]

    def test_chrome_output_is_deterministic(self, capsys):
        argv = ["trace", "--duration-us", "2000", "--format", "chrome"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestFlowTrace:
    def test_flow_trace_writes_trace_and_metrics(self, tmp_path):
        app = build_pingpong()
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=5_000, trace=True
        )
        assert "trace" in result.steps_run or "simulate" in result.steps_run
        trace_path = result.artifacts["trace"]
        metrics_path = result.artifacts["metrics"]
        assert os.path.exists(trace_path) and os.path.exists(metrics_path)
        with open(trace_path, encoding="utf-8") as handle:
            assert json.loads(handle.read())["traceEvents"]
        with open(metrics_path, encoding="utf-8") as handle:
            metrics = json.loads(handle.read())
        assert metrics["schema"] == "repro.trace-metrics/1"
        assert result.metrics is not None
        assert metrics["results"]["pes"] == result.metrics.to_dict()["pes"]
        # latency flows are keyed by process group, not transport
        assert all("->" in key for key in metrics["results"]["latency"])

    def test_flow_without_trace_has_no_trace_artifacts(self, tmp_path):
        app = build_pingpong()
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
        result = run_design_flow(
            app, platform, mapping, str(tmp_path), duration_us=5_000
        )
        assert "trace" not in result.artifacts
        assert result.metrics is None


class TestWorkerInvariance:
    def test_observability_summary_identical_for_workers_0_and_1(self):
        from repro.exploration import mapping_sweep_specs, run_candidates

        specs = mapping_sweep_specs(
            "repro.cases.tutwlan:exploration_factory",
            duration_us=2_000,
            limit=2,
        )
        serial = run_candidates(specs, workers=0)
        pooled = run_candidates(specs, workers=1)
        serial_summaries = [o.result.observability for o in serial.ranking()]
        pooled_summaries = [o.result.observability for o in pooled.ranking()]
        assert serial_summaries == pooled_summaries
        for summary in serial_summaries:
            assert summary["end_time_ps"] > 0
            assert set(summary["pe_utilization"]) == set(summary["pe_busy_ps"])
