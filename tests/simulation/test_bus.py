"""HIBI bus model: latency, contention, arbitration, bridging."""

import pytest

from repro.platform import PlatformModel, standard_library
from repro.simulation import HibiBus, Kernel
from repro.simulation.kernel import cycles_to_ps


def single_segment_platform(arbitration="priority"):
    platform = PlatformModel("P", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.instantiate("cpu2", "NiosCPU")
    platform.instantiate("cpu3", "NiosCPU")
    platform.segment("seg", "HIBISegment", arbitration=arbitration)
    platform.attach("cpu1", "seg", address=0x100, priority_class=0)
    platform.attach("cpu2", "seg", address=0x200, priority_class=1)
    platform.attach("cpu3", "seg", address=0x300, priority_class=2)
    return platform


def bridged_platform():
    platform = PlatformModel("P", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.instantiate("cpu2", "NiosCPU")
    platform.segment("segA", "HIBISegment")
    platform.segment("segB", "HIBISegment")
    platform.segment("bridge", "HIBIBridgeSegment")
    platform.attach("cpu1", "segA", address=0x100)
    platform.attach("cpu2", "segB", address=0x200)
    platform.attach("segA", "bridge", address=0x300)
    platform.attach("segB", "bridge", address=0x400)
    return platform


def run_transfer(platform, source, target, size, kernel=None):
    kernel = kernel or Kernel()
    bus = HibiBus(platform, kernel)
    done = []
    bus.transfer(source, target, size, lambda latency: done.append(latency))
    kernel.run()
    assert len(done) == 1
    return done[0], bus


class TestSingleTransfer:
    def test_latency_matches_cycle_model(self):
        platform = single_segment_platform()
        spec = platform.segments["seg"].spec
        latency, _ = run_transfer(platform, "cpu1", "cpu2", 64)
        expected_cycles = spec.transfer_cycles(64) + spec.arbitration_cycles
        assert latency == cycles_to_ps(expected_cycles, spec.frequency_hz)

    def test_larger_transfers_take_longer(self):
        platform = single_segment_platform()
        small, _ = run_transfer(platform, "cpu1", "cpu2", 8)
        large, _ = run_transfer(single_segment_platform(), "cpu1", "cpu2", 1024)
        assert large > small

    def test_self_transfer_rejected(self):
        platform = single_segment_platform()
        bus = HibiBus(platform, Kernel())
        with pytest.raises(Exception):
            bus.transfer("cpu1", "cpu1", 8, lambda latency: None)

    def test_stats_accumulate(self):
        platform = single_segment_platform()
        _, bus = run_transfer(platform, "cpu1", "cpu2", 64)
        stats = bus.stats()["seg"]
        assert stats.transfers == 1
        assert stats.words == 16
        assert stats.busy_ps > 0


class TestBridgedTransfer:
    def test_crosses_three_segments(self):
        platform = bridged_platform()
        latency, bus = run_transfer(platform, "cpu1", "cpu2", 64)
        stats = bus.stats()
        assert stats["segA"].transfers == 1
        assert stats["bridge"].transfers == 1
        assert stats["segB"].transfers == 1

    def test_bridged_latency_is_about_three_hops(self):
        same_segment = single_segment_platform()
        direct, _ = run_transfer(same_segment, "cpu1", "cpu2", 64)
        bridged = bridged_platform()
        crossed, _ = run_transfer(bridged, "cpu1", "cpu2", 64)
        assert 2.5 * direct <= crossed <= 3.5 * direct


class TestContention:
    def start_three(self, arbitration):
        platform = single_segment_platform(arbitration=arbitration)
        kernel = Kernel()
        bus = HibiBus(platform, kernel)
        completions = []
        # all three PEs request the bus at t=0 targeting another PE
        bus.transfer("cpu1", "cpu2", 256, lambda l: completions.append(("cpu1", kernel.now_ps)))
        bus.transfer("cpu2", "cpu3", 256, lambda l: completions.append(("cpu2", kernel.now_ps)))
        bus.transfer("cpu3", "cpu1", 256, lambda l: completions.append(("cpu3", kernel.now_ps)))
        kernel.run()
        return completions

    def test_transfers_serialise_on_one_segment(self):
        completions = self.start_three("priority")
        times = [t for _, t in completions]
        assert len(set(times)) == 3  # strictly serialised

    def test_priority_order(self):
        completions = self.start_three("priority")
        # cpu1 has priority class 0 (highest): it finishes first; cpu2 next
        assert [name for name, _ in completions] == ["cpu1", "cpu2", "cpu3"]

    def test_round_robin_rotates(self):
        platform = single_segment_platform(arbitration="round-robin")
        kernel = Kernel()
        bus = HibiBus(platform, kernel)
        order = []
        # cpu3 requests first and wins the idle bus; then the queue holds
        # cpu1 and cpu2: round-robin continues from cpu3's address (0x300),
        # wrapping to 0x100 (cpu1) before 0x200 (cpu2) -- same as priority
        # here, so distinguish by queueing cpu2 before cpu1:
        bus.transfer("cpu3", "cpu1", 256, lambda l: order.append("cpu3"))
        bus.transfer("cpu2", "cpu3", 256, lambda l: order.append("cpu2"))
        bus.transfer("cpu1", "cpu2", 256, lambda l: order.append("cpu1"))
        kernel.run()
        assert order[0] == "cpu3"
        # after serving 0x300, round-robin picks 0x100 (cpu1) despite cpu2
        # having queued first
        assert order[1] == "cpu1"

    def test_priority_beats_fifo(self):
        platform = single_segment_platform(arbitration="priority")
        kernel = Kernel()
        bus = HibiBus(platform, kernel)
        order = []
        bus.transfer("cpu3", "cpu1", 256, lambda l: order.append("cpu3"))
        bus.transfer("cpu2", "cpu3", 256, lambda l: order.append("cpu2"))
        bus.transfer("cpu1", "cpu2", 256, lambda l: order.append("cpu1"))
        kernel.run()
        # cpu3 grabbed the idle bus; then priority class 0 (cpu1) wins
        assert order == ["cpu3", "cpu1", "cpu2"]

    def test_wait_time_recorded(self):
        platform = single_segment_platform()
        kernel = Kernel()
        bus = HibiBus(platform, kernel)
        bus.transfer("cpu1", "cpu2", 256, lambda l: None)
        bus.transfer("cpu2", "cpu3", 256, lambda l: None)
        kernel.run()
        assert bus.stats()["seg"].wait_ps > 0


class TestMaxReservation:
    def test_chunked_transfer_pays_extra_arbitration(self):
        platform = PlatformModel("P", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        platform.instantiate("cpu2", "NiosCPU")
        platform.segment("seg", "HIBISegment")
        platform.attach("cpu1", "seg", address=0x100, max_reservation_cycles=8)
        platform.attach("cpu2", "seg", address=0x200)
        limited, _ = run_transfer(platform, "cpu1", "cpu2", 256)

        free_platform = single_segment_platform()
        unlimited, _ = run_transfer(free_platform, "cpu1", "cpu2", 256)
        assert limited > unlimited


class TestUtilization:
    def test_utilization_fraction(self):
        platform = single_segment_platform()
        kernel = Kernel()
        bus = HibiBus(platform, kernel)
        bus.transfer("cpu1", "cpu2", 64, lambda l: None)
        kernel.run()
        end = kernel.now_ps
        utilization = bus.utilization(end)
        assert utilization["seg"] == pytest.approx(1.0)  # busy the whole time
        assert bus.utilization(0)["seg"] == 0.0
