"""EFSM executor: run-to-completion semantics."""

import pytest

from repro.errors import SimulationError
from repro.simulation import ProcessExecutor
from repro.uml import StateMachine


def machine():
    return StateMachine("m")


class TestStart:
    def test_start_runs_entry_and_completions(self):
        m = machine()
        m.variable("x", 0)
        m.state("a", initial=True, entry="x = 1;")
        m.state("b", entry="x = x + 10;")
        m.transition("a", "b")  # completion
        executor = ProcessExecutor("p", m)
        outcome = executor.start()
        assert outcome.fired
        assert outcome.from_state == "a"
        assert outcome.to_state == "b"
        assert executor.variables["x"] == 11

    def test_guarded_completion_chain(self):
        m = machine()
        m.variable("x", 0)
        m.state("a", initial=True)
        m.state("b")
        m.state("c")
        m.transition("a", "b", guard="x == 0", effect="x = 1;")
        m.transition("b", "c", guard="x == 1")
        executor = ProcessExecutor("p", m)
        outcome = executor.start()
        assert outcome.to_state == "c"
        assert outcome.guards_evaluated >= 2

    def test_double_start_rejected(self):
        m = machine()
        m.state("a", initial=True)
        executor = ProcessExecutor("p", m)
        executor.start()
        with pytest.raises(SimulationError):
            executor.start()

    def test_missing_initial_state_rejected(self):
        m = machine()
        m.state("a")
        with pytest.raises(SimulationError):
            ProcessExecutor("p", m)

    def test_completion_livelock_detected(self):
        m = machine()
        m.state("a", initial=True)
        m.state("b")
        m.transition("a", "b")
        m.transition("b", "a")
        executor = ProcessExecutor("p", m)
        with pytest.raises(SimulationError):
            executor.start()


class TestSignals:
    def make_executor(self):
        m = machine()
        m.variable("total", 0)
        m.state("a", initial=True)
        m.state("b", entry="total = total + 100;")
        m.on_signal("a", "b", "go", params=["n"], guard="n > 0", effect="total = total + n;")
        m.on_signal("a", "a", "nop", internal=True)
        executor = ProcessExecutor("p", m)
        executor.start()
        return executor

    def test_consume_fires_matching_transition(self):
        executor = self.make_executor()
        outcome, reason = executor.consume_signal("go", [5])
        assert reason is None
        assert outcome.to_state == "b"
        assert executor.variables["total"] == 105

    def test_guard_false_drops(self):
        executor = self.make_executor()
        outcome, reason = executor.consume_signal("go", [-1])
        assert outcome is None
        assert reason == "guards-false"
        assert executor.current.name == "a"

    def test_unknown_signal_drops(self):
        executor = self.make_executor()
        outcome, reason = executor.consume_signal("mystery", [])
        assert outcome is None
        assert reason == "no-transition"

    def test_too_few_args_raises(self):
        executor = self.make_executor()
        with pytest.raises(SimulationError):
            executor.consume_signal("go", [])

    def test_extra_args_ignored(self):
        executor = self.make_executor()
        outcome, _ = executor.consume_signal("go", [1, 2, 3])
        assert outcome is not None

    def test_priority_selects_first_enabled(self):
        m = machine()
        m.variable("which", 0)
        m.state("a", initial=True)
        m.on_signal("a", "a", "s", effect="which = 2;", priority=2, internal=True)
        m.on_signal("a", "a", "s", effect="which = 1;", priority=1, internal=True)
        executor = ProcessExecutor("p", m)
        executor.start()
        executor.consume_signal("s", [])
        assert executor.variables["which"] == 1

    def test_guard_falls_through_to_lower_priority(self):
        m = machine()
        m.variable("which", 0)
        m.variable("gate", 0)
        m.state("a", initial=True)
        m.on_signal("a", "a", "s", guard="gate == 1", effect="which = 1;",
                    priority=0, internal=True)
        m.on_signal("a", "a", "s", effect="which = 2;", priority=1, internal=True)
        executor = ProcessExecutor("p", m)
        executor.start()
        executor.consume_signal("s", [])
        assert executor.variables["which"] == 2


class TestInternalVsExternal:
    def test_external_self_transition_reruns_entry(self):
        m = machine()
        m.variable("entries", 0)
        m.state("a", initial=True, entry="entries = entries + 1;")
        m.on_signal("a", "a", "ext")
        executor = ProcessExecutor("p", m)
        executor.start()
        executor.consume_signal("ext", [])
        assert executor.variables["entries"] == 2

    def test_internal_transition_skips_entry_exit(self):
        m = machine()
        m.variable("entries", 0)
        m.variable("exits", 0)
        m.state("a", initial=True, entry="entries = entries + 1;",
                exit="exits = exits + 1;")
        m.on_signal("a", "a", "int", internal=True)
        executor = ProcessExecutor("p", m)
        executor.start()
        executor.consume_signal("int", [])
        assert executor.variables["entries"] == 1
        assert executor.variables["exits"] == 0


class TestTimersAndSends:
    def test_timer_transition(self):
        m = machine()
        m.state("a", initial=True, entry="set_timer(t, 10);")
        m.state("b")
        m.on_timer("a", "b", "t")
        executor = ProcessExecutor("p", m)
        start_outcome = executor.start()
        assert start_outcome.timers_set == [("t", 10)]
        outcome, reason = executor.fire_timer("t")
        assert reason is None
        assert outcome.to_state == "b"

    def test_unexpected_timer_dropped(self):
        m = machine()
        m.state("a", initial=True)
        executor = ProcessExecutor("p", m)
        executor.start()
        outcome, reason = executor.fire_timer("ghost")
        assert outcome is None
        assert reason == "no-transition"

    def test_sends_collected_in_order(self):
        m = machine()
        m.state("a", initial=True)
        m.on_signal(
            "a", "a", "go",
            effect="send first(1) via p; send second(2) via q;",
            internal=True,
        )
        executor = ProcessExecutor("p", m)
        executor.start()
        outcome, _ = executor.consume_signal("go", [])
        assert [(s.signal, s.args, s.via) for s in outcome.sends] == [
            ("first", (1,), "p"),
            ("second", (2,), "q"),
        ]

    def test_exit_effect_entry_order(self):
        m = machine()
        m.variable("trace", 0)
        m.state("a", initial=True, exit="trace = trace * 10 + 1;")
        m.state("b", entry="trace = trace * 10 + 3;")
        m.on_signal("a", "b", "go", effect="trace = trace * 10 + 2;")
        executor = ProcessExecutor("p", m)
        executor.start()
        executor.consume_signal("go", [])
        assert executor.variables["trace"] == 123


class TestFinalState:
    def test_final_state_terminates(self):
        m = machine()
        m.state("a", initial=True)
        final = m.final_state()
        m.on_signal("a", final, "die")
        executor = ProcessExecutor("p", m)
        executor.start()
        outcome, _ = executor.consume_signal("die", [])
        assert outcome.reached_final
        assert executor.terminated
        with pytest.raises(SimulationError):
            executor.consume_signal("anything", [])
