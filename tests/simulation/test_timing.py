"""Cost model arithmetic."""

from repro.platform import ProcessingElementSpec
from repro.simulation import CostModel, WORKSTATION_SPEC, timer_duration_ps
from repro.simulation.kernel import PS_PER_US
from repro.simulation.timing import GUARD_STATEMENTS, TRANSITION_BASE_STATEMENTS


def spec(**overrides):
    defaults = dict(
        name="PE",
        frequency_hz=100_000_000,
        cycles_per_statement={"general": 10, "dsp": 20, "hardware": 5},
        context_switch_cycles=50,
        signal_dispatch_cycles=7,
    )
    defaults.update(overrides)
    return ProcessingElementSpec(**defaults)


class TestStepCost:
    def test_statement_cost(self):
        model = CostModel(spec())
        cost = model.step_cost("general", statements=10, guards_evaluated=0,
                               sends=0, context_switch=False)
        assert cost.cycles == (TRANSITION_BASE_STATEMENTS + 10) * 10

    def test_guards_charged(self):
        model = CostModel(spec())
        base = model.step_cost("general", 0, 0, 0, False).cycles
        with_guards = model.step_cost("general", 0, 3, 0, False).cycles
        assert with_guards - base == 3 * GUARD_STATEMENTS * 10

    def test_sends_charged(self):
        model = CostModel(spec())
        base = model.step_cost("general", 0, 0, 0, False).cycles
        with_sends = model.step_cost("general", 0, 0, 2, False).cycles
        assert with_sends - base == 2 * 7

    def test_context_switch_charged(self):
        model = CostModel(spec())
        base = model.step_cost("general", 0, 0, 0, False).cycles
        switched = model.step_cost("general", 0, 0, 0, True).cycles
        assert switched - base == 50

    def test_process_type_selects_cost(self):
        model = CostModel(spec())
        general = model.step_cost("general", 10, 0, 0, False).cycles
        dsp = model.step_cost("dsp", 10, 0, 0, False).cycles
        hardware = model.step_cost("hardware", 10, 0, 0, False).cycles
        assert dsp == 2 * general
        assert hardware == general // 2

    def test_duration_respects_frequency(self):
        fast = CostModel(spec(frequency_hz=200_000_000))
        slow = CostModel(spec(frequency_hz=50_000_000))
        fast_cost = fast.step_cost("general", 10, 0, 0, False)
        slow_cost = slow.step_cost("general", 10, 0, 0, False)
        assert fast_cost.cycles == slow_cost.cycles
        assert slow_cost.duration_ps == 4 * fast_cost.duration_ps


class TestTimerDuration:
    def test_microsecond_units(self):
        assert timer_duration_ps(1) == PS_PER_US
        assert timer_duration_ps(250) == 250 * PS_PER_US


class TestWorkstationSpec:
    def test_attribution_excludes_scheduler_overhead(self):
        # the paper's profiling attributes application work only
        assert WORKSTATION_SPEC.context_switch_cycles == 0

    def test_uniform_statement_cost(self):
        costs = set(WORKSTATION_SPEC.cycles_per_statement.values())
        assert len(costs) == 1
