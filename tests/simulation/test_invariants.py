"""System-level simulation invariants on real runs.

These are the safety properties any scheduler/bus implementation must
keep; they are checked over full TUTMAC runs, not toy fixtures.
"""

import pytest

from repro.simulation import SystemSimulation
from repro.cases.tutwlan import build_tutwlan_system


@pytest.fixture(scope="module")
def platform_run():
    return SystemSimulation(*build_tutwlan_system()).run(50_000)


class TestExecutionInvariants:
    def test_pe_steps_never_overlap(self, platform_run):
        """A PE executes one run-to-completion step at a time."""
        by_pe = {}
        for record in platform_run.log.exec_records:
            if record.pe == "-":
                continue  # environment pseudo-PE is concurrent by design
            by_pe.setdefault(record.pe, []).append(record)
        for pe, records in by_pe.items():
            records.sort(key=lambda r: r.time_ps)
            for earlier, later in zip(records, records[1:]):
                assert earlier.time_ps + earlier.duration_ps <= later.time_ps, (
                    pe, earlier, later
                )

    def test_busy_time_equals_step_durations(self, platform_run):
        for pe, busy_ps in platform_run.pe_busy_ps.items():
            total = sum(
                r.duration_ps
                for r in platform_run.log.exec_records
                if r.pe == pe
            )
            assert total == busy_ps

    def test_cycles_and_durations_nonnegative(self, platform_run):
        for record in platform_run.log.exec_records:
            assert record.cycles >= 0
            assert record.duration_ps >= 0

    def test_environment_costs_nothing(self, platform_run):
        for record in platform_run.log.exec_records:
            if record.pe == "-":
                assert record.cycles == 0
                assert record.duration_ps == 0


class TestSignalInvariants:
    def test_latencies_nonnegative_and_ordered(self, platform_run):
        for record in platform_run.log.signal_records:
            assert record.latency_ps >= 0
            assert record.time_ps >= record.latency_ps  # sent at time - latency

    def test_bus_signals_pay_wire_latency(self, platform_run):
        bus_records = [
            r for r in platform_run.log.signal_records if r.transport == "bus"
        ]
        local_records = [
            r for r in platform_run.log.signal_records if r.transport == "local"
        ]
        assert bus_records and local_records
        assert min(r.latency_ps for r in bus_records) > max(
            r.latency_ps for r in local_records
        ) * 0  # bus latency strictly positive
        assert all(r.latency_ps > 0 for r in bus_records)

    def test_transport_matches_mapping(self, platform_run):
        """local ⇔ same PE, bus ⇔ different PEs, env ⇔ environment endpoint."""
        application, platform, mapping = build_tutwlan_system()
        pe_of = {
            name: mapping.pe_of_process(name)
            for name in application.processes
        }
        for record in platform_run.log.signal_records:
            sender_pe = pe_of[record.sender]
            receiver_pe = pe_of[record.receiver]
            if sender_pe is None or receiver_pe is None:
                assert record.transport == "env", record
            elif sender_pe == receiver_pe:
                assert record.transport == "local", record
            else:
                assert record.transport == "bus", record


class TestBusInvariants:
    def test_segment_busy_time_bounded_by_horizon(self, platform_run):
        for name, stats in platform_run.bus_stats.items():
            assert 0 <= stats.busy_ps <= platform_run.end_time_ps

    def test_bridge_symmetry(self, platform_run):
        """Everything crossing the bridge also crossed both end segments."""
        stats = platform_run.bus_stats
        assert stats["bridge"].transfers <= stats["hibisegment1"].transfers
        assert stats["bridge"].transfers == stats["hibisegment2"].transfers
