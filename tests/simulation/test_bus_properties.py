"""Property-based tests of the HIBI bus model."""

from hypothesis import given, settings, strategies as st

from repro.platform import PlatformModel, standard_library
from repro.simulation import HibiBus, Kernel


def platform_with(arbitration="priority", width=32):
    platform = PlatformModel("P", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.instantiate("cpu2", "NiosCPU")
    platform.segment(
        "seg", "HIBISegment", arbitration=arbitration, data_width_bits=width
    )
    platform.attach("cpu1", "seg", address=0x100)
    platform.attach("cpu2", "seg", address=0x200)
    return platform


def single_latency(platform, size):
    kernel = Kernel()
    bus = HibiBus(platform, kernel)
    out = []
    bus.transfer("cpu1", "cpu2", size, out.append)
    kernel.run()
    return out[0]


@given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1, max_value=4096))
@settings(max_examples=40, deadline=None)
def test_latency_monotone_in_size(size_a, size_b):
    platform = platform_with()
    latency_a = single_latency(platform, size_a)
    latency_b = single_latency(platform_with(), size_b)
    if size_a <= size_b:
        assert latency_a <= latency_b
    else:
        assert latency_a >= latency_b


@given(st.integers(min_value=1, max_value=2048))
@settings(max_examples=30, deadline=None)
def test_wider_bus_never_slower(size):
    narrow = single_latency(platform_with(width=16), size)
    wide = single_latency(platform_with(width=64), size)
    assert wide <= narrow


@given(
    st.lists(
        st.tuples(st.sampled_from(["cpu1", "cpu2"]), st.integers(1, 512)),
        min_size=1,
        max_size=12,
    ),
    st.sampled_from(["priority", "round-robin"]),
)
@settings(max_examples=30, deadline=None)
def test_all_transfers_complete_exactly_once(requests, arbitration):
    """Conservation: every requested transfer completes once, whatever the
    arbitration policy and contention pattern."""
    platform = platform_with(arbitration=arbitration)
    kernel = Kernel()
    bus = HibiBus(platform, kernel)
    completions = []
    for source, size in requests:
        target = "cpu2" if source == "cpu1" else "cpu1"
        bus.transfer(source, target, size, completions.append)
    kernel.run()
    assert len(completions) == len(requests)
    assert all(latency > 0 for latency in completions)
    stats = bus.stats()["seg"]
    assert stats.transfers == len(requests)


@given(st.integers(min_value=1, max_value=1024))
@settings(max_examples=20, deadline=None)
def test_serialised_pair_takes_sum_of_busy_times(size):
    """Two same-size contending transfers: the second completes one
    occupancy later than the first (no overlap, no gap)."""
    platform = platform_with()
    kernel = Kernel()
    bus = HibiBus(platform, kernel)
    done = []
    bus.transfer("cpu1", "cpu2", size, lambda latency: done.append(kernel.now_ps))
    bus.transfer("cpu1", "cpu2", size, lambda latency: done.append(kernel.now_ps))
    kernel.run()
    first, second = done
    assert second == 2 * first
