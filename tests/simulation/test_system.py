"""Full-system simulation: scheduling, transports, timers, determinism."""

import pytest

from repro.errors import SimulationError
from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.simulation import SystemSimulation, TRANSPORT_BUS, TRANSPORT_ENV, TRANSPORT_LOCAL
from repro.uml import Port

from tests.conftest import build_pingpong, build_two_cpu_platform


def run_pingpong(colocated=False, duration_us=10_000):
    app = build_pingpong()
    platform = build_two_cpu_platform()
    mapping = MappingModel(app, platform)
    if colocated:
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu1")
    else:
        mapping.map("g1", "cpu1")
        mapping.map("g2", "cpu2")
    simulation = SystemSimulation(app, platform, mapping)
    return simulation.run(duration_us), simulation


class TestTransports:
    def test_cross_pe_signals_use_bus(self):
        result, _ = run_pingpong(colocated=False)
        transports = {r.transport for r in result.log.signal_records}
        assert transports == {TRANSPORT_BUS}
        assert result.bus_stats["seg1"].transfers > 0

    def test_same_pe_signals_stay_local(self):
        result, _ = run_pingpong(colocated=True)
        transports = {r.transport for r in result.log.signal_records}
        assert transports == {TRANSPORT_LOCAL}
        assert result.bus_stats["seg1"].transfers == 0

    def test_local_delivery_is_faster(self):
        remote, _ = run_pingpong(colocated=False)
        local, _ = run_pingpong(colocated=True)
        remote_latency = max(r.latency_ps for r in remote.log.signal_records)
        local_latency = max(r.latency_ps for r in local.log.signal_records)
        assert local_latency < remote_latency

    def test_colocation_trades_bus_traffic_for_pe_load(self):
        remote, _ = run_pingpong(colocated=False)
        local, _ = run_pingpong(colocated=True)
        # colocation eliminates bus traffic entirely ...
        assert local.bus_stats["seg1"].transfers == 0
        assert remote.bus_stats["seg1"].transfers > 0
        # ... but concentrates all execution (and context switches) on cpu1
        assert local.pe_busy_ps["cpu1"] > remote.pe_busy_ps["cpu1"]
        assert local.pe_busy_ps["cpu2"] == 0


class TestDeterminism:
    def test_identical_runs_produce_identical_logs(self):
        first, _ = run_pingpong()
        second, _ = run_pingpong()
        assert first.writer.render() == second.writer.render()

    def test_exec_records_time_ordered(self):
        result, _ = run_pingpong()
        times = [r.time_ps for r in result.log.exec_records]
        assert times == sorted(times)


class TestLifecycle:
    def test_run_twice_rejected(self):
        _, simulation = run_pingpong()
        with pytest.raises(SimulationError):
            simulation.run(10)

    def test_unmapped_group_rejected_at_init(self):
        app = build_pingpong()
        platform = build_two_cpu_platform()
        mapping = MappingModel(app, platform)
        mapping.map("g1", "cpu1")
        with pytest.raises(Exception):
            SystemSimulation(app, platform, mapping)

    def test_end_time_matches_duration(self):
        result, _ = run_pingpong(duration_us=5_000)
        assert result.end_time_ps == 5_000 * 1_000_000


class TestPriorityScheduling:
    def build_priority_app(self):
        """Three jobs land while the PE is busy; dequeue order shows priority.

        One source sends lo, hi, lo2 in a single step, so all three jobs
        arrive at the same instant.  The first delivery seizes the idle PE
        with a slow handler; the remaining two queue and must be granted by
        priority (worker_hi before worker_lo2) rather than arrival order.
        """
        app = ApplicationModel("Prio")
        app.signal("job", [("n", "Int32")])
        worker = app.component("Worker")
        worker.add_port(Port("inp", provided=["job"]))
        machine = app.behavior(worker)
        machine.variable("done", 0)
        machine.variable("i", 0)
        machine.state("s", initial=True)
        machine.on_signal(
            "s", "s", "job", params=["n"],
            effect="i = 0; while (i < 50) { i = i + 1; } done = done + 1;",
            internal=True,
        )
        source = app.component("Source")
        source.add_port(Port("out_first", required=["job"]))
        source.add_port(Port("out_hi", required=["job"]))
        source.add_port(Port("out_lo", required=["job"]))
        machine2 = app.behavior(source)
        machine2.state(
            "s",
            initial=True,
            entry=(
                "send job(1) via out_first;"
                "send job(2) via out_lo;"
                "send job(3) via out_hi;"
            ),
        )
        app.process(app.top, "worker_first", worker, priority=0)
        app.process(app.top, "worker_lo", worker, priority=1)
        app.process(app.top, "worker_hi", worker, priority=9)
        app.process(app.top, "src", source, priority=0)
        app.connect(app.top, ("src", "out_first"), ("worker_first", "inp"))
        app.connect(app.top, ("src", "out_lo"), ("worker_lo", "inp"))
        app.connect(app.top, ("src", "out_hi"), ("worker_hi", "inp"))
        app.group("g")
        for name in ("worker_first", "worker_lo", "worker_hi", "src"):
            app.assign(name, "g")
        return app

    def test_higher_priority_process_dequeued_first(self):
        app = self.build_priority_app()
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        result = SystemSimulation(app, platform, mapping).run(5_000)
        worker_execs = [
            r for r in result.log.exec_records
            if r.process.startswith("worker") and r.trigger == "job"
        ]
        # the source starts first (canonical name order) and its three jobs
        # queue while the worker start steps occupy the PE; once the PE is
        # free the jobs are granted strictly by process priority: hi (9),
        # lo (1), first (0) — not by arrival order (first was sent first)
        assert [r.process for r in worker_execs] == [
            "worker_hi",
            "worker_lo",
            "worker_first",
        ]


class TestEnvironment:
    def build_env_app(self):
        app = ApplicationModel("EnvApp")
        app.signal("stim", [("n", "Int32")])
        app.signal("resp", [("n", "Int32")])
        inner = app.component("Inner")
        inner.add_port(Port("io", provided=["stim"], required=["resp"]))
        machine = app.behavior(inner)
        machine.state("s", initial=True)
        machine.on_signal("s", "s", "stim", params=["n"],
                          effect="send resp(n) via io;", internal=True)
        app.process(app.top, "i1", inner)
        app.top.add_port(Port("pEnv"))
        app.connect(app.top, (None, "pEnv"), ("i1", "io"))
        tester = app.component("Tester")
        tester.add_port(Port("out", required=["stim"], provided=["resp"]))
        machine2 = app.behavior(tester)
        machine2.variable("got", 0)
        machine2.state("s", initial=True, entry="set_timer(t, 50);")
        machine2.on_timer("s", "s", "t",
                          effect="send stim(1) via out; set_timer(t, 50);",
                          internal=True)
        machine2.on_signal("s", "s", "resp", params=["n"],
                           effect="got = got + 1;", internal=True, priority=1)
        app.environment_process("t1", tester)
        app.bind_boundary("pEnv", "t1", "out")
        app.group("g")
        app.assign("i1", "g")
        return app

    def test_environment_executes_at_zero_cost(self):
        app = self.build_env_app()
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        simulation = SystemSimulation(app, platform, mapping)
        result = simulation.run(1_000)
        env_execs = [r for r in result.log.exec_records if r.process == "t1"]
        assert env_execs
        assert all(r.cycles == 0 for r in env_execs)
        assert all(r.pe == "-" for r in env_execs)

    def test_boundary_signals_marked_env_transport(self):
        app = self.build_env_app()
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        result = SystemSimulation(app, platform, mapping).run(1_000)
        transports = {r.transport for r in result.log.signal_records}
        assert transports == {TRANSPORT_ENV}
        # the response loop actually closed
        assert simulation_got(result) > 0


def simulation_got(result):
    return sum(
        1 for r in result.log.signal_records if r.signal == "resp"
    )


class TestTimerSemantics:
    def test_rearmed_timer_replaces_previous(self):
        app = ApplicationModel("T")
        app.signal("noop")
        comp = app.component("C")
        machine = app.behavior(comp)
        machine.variable("fires", 0)
        machine.state(
            "s",
            initial=True,
            entry="set_timer(t, 100); set_timer(t, 200);",  # re-arm replaces
        )
        machine.on_timer("s", "s", "t", effect="fires = fires + 1;", internal=True)
        app.process(app.top, "p1", comp)
        app.group("g")
        app.assign("p1", "g")
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        simulation = SystemSimulation(app, platform, mapping)
        simulation.run(1_000)
        assert simulation.executors["p1"].variables["fires"] == 1

    def test_reset_timer_cancels(self):
        app = ApplicationModel("T")
        app.signal("noop")
        comp = app.component("C")
        machine = app.behavior(comp)
        machine.variable("fires", 0)
        machine.state(
            "s", initial=True, entry="set_timer(t, 100); reset_timer(t);"
        )
        machine.on_timer("s", "s", "t", effect="fires = fires + 1;", internal=True)
        app.process(app.top, "p1", comp)
        app.group("g")
        app.assign("p1", "g")
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        simulation = SystemSimulation(app, platform, mapping)
        simulation.run(1_000)
        assert simulation.executors["p1"].variables["fires"] == 0


class TestDrops:
    def test_unhandled_signal_logged_as_drop(self):
        app = ApplicationModel("D")
        app.signal("x")
        deaf = app.component("Deaf")
        deaf.add_port(Port("inp", provided=["x"]))
        machine = app.behavior(deaf)
        machine.state("s", initial=True)  # no transition for x
        talker = app.component("Talker")
        talker.add_port(Port("out", required=["x"]))
        machine2 = app.behavior(talker)
        machine2.state("s", initial=True, entry="send x() via out;")
        app.process(app.top, "deaf1", deaf)
        app.process(app.top, "talker1", talker)
        app.connect(app.top, ("talker1", "out"), ("deaf1", "inp"))
        app.group("g")
        app.assign("deaf1", "g")
        app.assign("talker1", "g")
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        result = SystemSimulation(app, platform, mapping).run(1_000)
        assert result.dropped_signals == 1
        assert result.log.drop_records[0].process == "deaf1"
