"""Executor semantics of hierarchical state machines."""

import pytest

from repro.simulation import ProcessExecutor
from repro.uml import StateMachine


def traced_machine():
    """off / on{idle, busy}: every entry/exit appends a digit to `trace`.

    trace digits: on.entry=1, idle.entry=2, busy.entry=3,
                  idle.exit=4, busy.exit=5, on.exit=6, off.entry=7.
    """
    machine = StateMachine("m")
    machine.variable("trace", 0)
    machine.state("off", initial=True, entry="trace = trace * 10 + 7;")
    machine.state("on", entry="trace = trace * 10 + 1;",
                  exit="trace = trace * 10 + 6;")
    machine.state("idle", parent="on", initial=True,
                  entry="trace = trace * 10 + 2;",
                  exit="trace = trace * 10 + 4;")
    machine.state("busy", parent="on",
                  entry="trace = trace * 10 + 3;",
                  exit="trace = trace * 10 + 5;")
    machine.on_signal("off", "on", "power")
    machine.on_signal("idle", "busy", "work")
    machine.on_signal("busy", "idle", "rest")
    machine.on_signal("on", "off", "power_off")
    return machine


def started(machine):
    executor = ProcessExecutor("p", machine)
    executor.start()
    return executor


class TestEntryDescent:
    def test_entering_composite_descends_to_initial_substate(self):
        executor = started(traced_machine())
        executor.variables["trace"] = 0
        executor.consume_signal("power", [])
        # on.entry (1) then idle.entry (2)
        assert executor.variables["trace"] == 12
        assert executor.current.name == "idle"

    def test_initial_state_descends_too(self):
        machine = StateMachine("m")
        machine.variable("trace", 0)
        machine.state("top", initial=True, entry="trace = trace * 10 + 1;")
        machine.state("inner", parent="top", initial=True,
                      entry="trace = trace * 10 + 2;")
        executor = ProcessExecutor("p", machine)
        outcome = executor.start()
        assert executor.current.name == "inner"
        assert executor.variables["trace"] == 12
        assert outcome.to_state == "inner"


class TestSiblingTransitions:
    def test_transition_between_substates_stays_inside(self):
        executor = started(traced_machine())
        executor.consume_signal("power", [])
        executor.variables["trace"] = 0
        executor.consume_signal("work", [])
        # idle.exit (4) then busy.entry (3); the composite is NOT re-entered
        assert executor.variables["trace"] == 43
        assert executor.current.name == "busy"


class TestBubbling:
    def test_signal_unhandled_by_leaf_bubbles_to_composite(self):
        executor = started(traced_machine())
        executor.consume_signal("power", [])
        executor.consume_signal("work", [])
        executor.variables["trace"] = 0
        outcome, reason = executor.consume_signal("power_off", [])
        assert reason is None
        # busy.exit (5), on.exit (6), off.entry (7)
        assert executor.variables["trace"] == 567
        assert executor.current.name == "off"

    def test_leaf_transition_shadows_composite(self):
        machine = traced_machine()
        # give the leaf its own power_off handling
        machine.on_signal("idle", "busy", "power_off")
        executor = ProcessExecutor("p", machine)
        executor.start()
        executor.consume_signal("power", [])
        executor.consume_signal("power_off", [])
        assert executor.current.name == "busy"  # leaf transition won

    def test_unknown_signal_still_drops(self):
        executor = started(traced_machine())
        executor.consume_signal("power", [])
        outcome, reason = executor.consume_signal("mystery", [])
        assert outcome is None
        assert reason == "no-transition"


class TestTimersInHierarchy:
    def test_composite_timer_fires_from_any_substate(self):
        machine = StateMachine("m")
        machine.state("run", initial=True, entry="set_timer(watchdog, 100);")
        machine.state("a", parent="run", initial=True)
        machine.state("b", parent="run")
        machine.state("dead")
        machine.on_signal("a", "b", "go")
        machine.on_timer("run", "dead", "watchdog")
        executor = ProcessExecutor("p", machine)
        executor.start()
        executor.consume_signal("go", [])
        assert executor.current.name == "b"
        outcome, reason = executor.fire_timer("watchdog")
        assert reason is None
        assert executor.current.name == "dead"


class TestCompletionsInHierarchy:
    def test_composite_completion_after_descent(self):
        machine = StateMachine("m")
        machine.variable("x", 0)
        machine.state("stage", initial=True)
        machine.state("inner", parent="stage", initial=True, entry="x = 5;")
        machine.state("done")
        # completion transition on the composite, guarded on inner's effect
        machine.transition("stage", "done", guard="x == 5")
        executor = ProcessExecutor("p", machine)
        outcome = executor.start()
        assert executor.current.name == "done"
        assert outcome.to_state == "done"


class TestNestedFinal:
    def test_top_level_final_terminates(self):
        machine = StateMachine("m")
        machine.state("a", initial=True)
        final = machine.final_state()
        machine.on_signal("a", final, "die")
        executor = ProcessExecutor("p", machine)
        executor.start()
        executor.consume_signal("die", [])
        assert executor.terminated

    def test_nested_final_does_not_terminate_machine(self):
        machine = StateMachine("m")
        machine.state("comp", initial=True)
        machine.state("sub", parent="comp", initial=True)
        nested_final = machine.final_state("sub_done")
        nested_final.parent = machine.find_state("comp")
        machine.find_state("comp").substates.append(nested_final)
        machine.state("after")
        machine.on_signal("sub", nested_final, "finish")
        machine.on_signal("comp", "after", "move_on")
        executor = ProcessExecutor("p", machine)
        executor.start()
        executor.consume_signal("finish", [])
        assert not executor.terminated
        executor.consume_signal("move_on", [])
        assert executor.current.name == "after"
