"""Calendar-queue kernel vs the legacy heap kernel: one contract.

The calendar rewrite's correctness oracle: every backend reachable via
``select_backend`` must produce **byte-identical** artefacts — tutlog,
Chrome trace, checkpoint snapshot hashes, exploration rankings — for any
model, any worker count, and any checkpoint geometry.  These tests pin
that plus the calendar queue's own edge cases (same-tick FIFO, overflow
migration, tombstones, restore into a differently-shaped queue).
"""

import random

import pytest

from repro.cases.tutwlan import build_tutwlan_system
from repro.checkpoint import (
    Checkpointer,
    CheckpointStore,
    EveryEvents,
    resume_simulation,
    state_hash,
)
from repro.errors import SimulationError, SimulationInterrupted
from repro.exploration import mapping_sweep_specs, run_candidates
from repro.observability.export import render_chrome_trace
from repro.observability.tracer import Tracer
from repro.simulation.kernel import (
    BACKEND_ENV_VAR,
    EV_SEQ,
    HeapKernel,
    Kernel,
    select_backend,
)
from repro.simulation.system import SystemSimulation

TUTWLAN_BUILDER = "repro.cases.tutwlan:exploration_factory"
DURATION_US = 2_000


class TestSelectBackend:
    def test_named_backends(self):
        assert select_backend("calendar") is Kernel
        assert select_backend("heap") is HeapKernel

    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert select_backend() is Kernel

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "heap")
        assert select_backend() is HeapKernel

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "heap")
        assert select_backend("calendar") is Kernel

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown kernel backend"):
            select_backend("quantum")

    def test_compiled_requires_extension(self):
        # the mypyc extension is optional and not built here
        with pytest.raises(SimulationError, match="not built"):
            select_backend("compiled")

    def test_auto_falls_back_to_calendar(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert select_backend() is Kernel

    def test_system_simulation_accepts_backend(self):
        application, platform, mapping = build_tutwlan_system()
        simulation = SystemSimulation(
            application, platform, mapping, kernel_backend="heap"
        )
        assert isinstance(simulation.kernel, HeapKernel)


@pytest.mark.parametrize("backend", [Kernel, HeapKernel])
class TestQueueEdgeCases:
    def test_same_tick_fifo_order(self, backend):
        # a whole tick of same-time events fires in scheduling order,
        # including events added to the tick from within the tick itself
        # (they carry larger sequence numbers, so they fire last)
        kernel = backend()
        fired = []
        kernel.schedule(500, lambda: fired.append("late"))

        def first():
            fired.append("first")
            kernel.schedule(0, lambda: fired.append("nested"))

        kernel.schedule(100, first)
        for index in range(50):
            kernel.schedule(100, lambda i=index: fired.append(i))
        kernel.run()
        assert fired == ["first"] + list(range(50)) + ["nested", "late"]

    def test_far_future_overflow_ordering(self, backend):
        # delays far beyond the calendar's bucket window must overflow
        # and migrate back without perturbing dispatch order
        kernel = backend()
        fired = []
        delays = [
            5, 1_000, 40_000, 70_000_000, 3_000_000_000, 70_000_001, 6
        ]
        for delay in delays:
            kernel.schedule(delay, lambda d=delay: fired.append(d))
        kernel.run()
        assert fired == sorted(delays)
        if backend is Kernel:
            assert kernel.queue_stats()["migrations"] >= 1

    def test_cancel_tombstones_across_structures(self, backend):
        # cancellations must hold wherever the event currently lives:
        # active bucket, near-future bucket, or overflow heap
        kernel = backend()
        fired = []
        events = []
        for delay in (10, 2_000, 50_000, 900_000_000):
            events.append(
                kernel.schedule(delay, lambda d=delay: fired.append(d))
            )
        for event in events[::2]:
            kernel.cancel(event)
        assert kernel.pending == 2
        kernel.run()
        assert fired == [2_000, 900_000_000]

    def test_compaction_preserves_order_under_cancel_storm(self, backend):
        kernel = backend()
        fired = []
        rng = random.Random(17)
        events = [
            kernel.schedule(
                rng.randrange(1, 5_000_000), lambda i=i: fired.append(i)
            )
            for i in range(400)
        ]
        keep = []
        for index, event in enumerate(events):
            if index % 5 == 0:
                keep.append((event[EV_SEQ], index))
            else:
                kernel.cancel(event)
        assert kernel.pending == len(keep)
        kernel.run()
        assert sorted(fired) == sorted(index for _, index in keep)

    def test_until_pushback_resumes_exactly(self, backend):
        kernel = backend()
        fired = []
        for delay in (100, 200, 300, 400):
            kernel.schedule(delay, lambda d=delay: fired.append(d))
        assert kernel.run(until_ps=250) == 2
        assert kernel.now_ps == 250
        assert kernel.run() == 2
        assert fired == [100, 200, 300, 400]

    def test_hook_registered_mid_run_takes_effect(self, backend):
        # a callback that installs after_event mid-run gets the hook
        # called for its own dispatch, exactly like the legacy loop
        kernel = backend()
        seen = []

        def hook():
            seen.append(kernel.dispatched)

        def install():
            kernel.after_event = hook

        kernel.schedule(10, install)
        kernel.schedule(20, lambda: None)
        kernel.schedule(30, lambda: kernel.__setattr__("after_event", None))
        kernel.schedule(40, lambda: None)
        kernel.run()
        # hook fires for the installing event (1), the next (2) and the
        # uninstalling event's dispatch happens before its hook phase (3)
        assert seen == [1, 2]

    def test_dispatched_coherent_inside_hooks(self, backend):
        kernel = backend()
        counts = []
        kernel.after_event = lambda: counts.append(kernel.dispatched)
        for delay in (10, 20, 30):
            kernel.schedule(delay, lambda: None)
        kernel.run()
        assert counts == [1, 2, 3]
        assert kernel.dispatched == 3


class TestRestoreIntoDifferentQueueShape:
    def _snapshot_events(self, source):
        """Run half a workload, then capture the survivors' schedule."""
        fired = []
        events = []
        rng = random.Random(99)
        for index in range(300):
            delay = rng.randrange(1, 2_000_000)
            events.append(
                (delay, source.schedule(delay, lambda i=index: fired.append(i)))
            )
        source.run(until_ps=500_000)
        survivors = [
            (event[0], event[EV_SEQ])
            for _, event in events
            if not event[3] and not event[4]
        ]
        return fired, survivors, source.state_dict()

    @pytest.mark.parametrize(
        "target_factory",
        [
            lambda: Kernel(),
            lambda: Kernel(bucket_shift=2, span=4),
            lambda: Kernel(bucket_shift=16, span=8),
            lambda: HeapKernel(),
        ],
        ids=["calendar-default", "calendar-tiny", "calendar-wide", "heap"],
    )
    def test_pending_events_replay_identically(self, target_factory):
        # the snapshot protocol never records queue shape, so pending
        # events must re-materialize into any bucket geometry (or the
        # heap backend) and replay in the identical order
        reference = Kernel()
        reference_fired, survivors, state = self._snapshot_events(reference)
        reference.run()

        target = target_factory()
        target.load_state_dict(state)
        replay = []
        for time_ps, sequence in survivors:
            target.restore_event(
                time_ps, sequence, lambda s=sequence: replay.append(s)
            )
        assert target.pending == len(survivors)
        target.run()
        # the reference finished dispatching everything after the cut in
        # (time, sequence) order; the restored queue must do the same
        assert replay == [s for _, s in sorted(survivors)]
        assert target.now_ps == reference.now_ps
        assert target.dispatched == reference.dispatched


def _random_soup(kernel, seed, total=4_000):
    """A seeded storm of schedules/cancels/reschedules, traced."""
    rng = random.Random(seed)
    trace = []
    cancellable = []

    def work(tag):
        trace.append((kernel.now_ps, tag))
        action = rng.random()
        if action < 0.55:
            delay = rng.choice((0, 7, 512, 1_024, 65_536, 10_000_000))
            cancellable.append(
                kernel.schedule(delay, lambda t=len(trace): work(t))
            )
        if action < 0.2 and cancellable:
            kernel.cancel(cancellable.pop(rng.randrange(len(cancellable))))

    for index in range(64):
        kernel.schedule(rng.randrange(0, 100_000), lambda i=index: work(i))
    kernel.run(until_ps=50_000_000)
    return trace


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_backend_differential_event_soup(seed):
    """Seeded random workloads dispatch identically on both backends."""
    heap_trace = _random_soup(HeapKernel(), seed)
    calendar_trace = _random_soup(Kernel(), seed)
    assert heap_trace == calendar_trace
    assert len(heap_trace) > 100


class TestSystemDifferential:
    """Whole-flow byte-identity: the tentpole's correctness oracle."""

    def _run(self, backend, traced=True):
        application, platform, mapping = build_tutwlan_system()
        tracer = Tracer() if traced else None
        simulation = SystemSimulation(
            application, platform, mapping,
            tracer=tracer, kernel_backend=backend,
        )
        result = simulation.run(DURATION_US)
        return simulation, result

    def test_tutlog_trace_and_snapshot_hashes_match(self):
        heap_sim, heap_result = self._run("heap")
        cal_sim, cal_result = self._run("calendar")
        assert heap_result.writer.render() == cal_result.writer.render()
        assert render_chrome_trace(heap_sim.tracer) == render_chrome_trace(
            cal_sim.tracer
        )
        assert state_hash(heap_sim.state_dict()) == state_hash(
            cal_sim.state_dict()
        )
        assert heap_result.dispatched_events == cal_result.dispatched_events

    def test_interrupt_on_calendar_resume_on_heap(self, tmp_path):
        # snapshots are backend-agnostic: interrupt under the calendar
        # queue, resume under the heap, and the bytes still match the
        # uninterrupted calendar reference
        _, reference = self._run("calendar", traced=False)
        assert reference.dispatched_events > 40

        def checkpointed(simulation, root, interrupt=None):
            checkpointer = Checkpointer(
                CheckpointStore(root),
                EveryEvents(100),
                tag="x",
                interrupt_after_events=interrupt,
            )
            checkpointer.attach(simulation)
            try:
                return simulation.run(DURATION_US)
            finally:
                checkpointer.detach()

        application, platform, mapping = build_tutwlan_system()
        interrupted = SystemSimulation(
            application, platform, mapping, kernel_backend="calendar"
        )
        with pytest.raises(SimulationInterrupted) as excinfo:
            checkpointed(interrupted, tmp_path / "int", interrupt=40)

        resumed_sim = SystemSimulation(
            build_tutwlan_system()[0], platform, mapping,
            kernel_backend="heap",
        )
        resume_simulation(resumed_sim, excinfo.value.snapshot)
        resumed = checkpointed(resumed_sim, tmp_path / "res")
        assert resumed.writer.render() == reference.writer.render()
        assert resumed.dispatched_events == reference.dispatched_events


@pytest.mark.parametrize("workers", [0, 1, 4])
def test_exploration_ranking_backend_invariant(workers, monkeypatch):
    """Rankings must not depend on the kernel backend or worker count.

    The backend reaches exploration workers through the environment
    (subprocesses inherit ``REPRO_KERNEL_BACKEND``), so this also pins
    the env-var plumbing end to end.
    """
    specs = mapping_sweep_specs(TUTWLAN_BUILDER, duration_us=DURATION_US, limit=3)
    signatures = {}
    for backend in ("heap", "calendar"):
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        run = run_candidates(specs, workers=workers)
        signatures[backend] = [
            (o.spec.digest(), o.result.stable_hash(), o.cost)
            for o in run.ranking()
        ]
    assert signatures["heap"] == signatures["calendar"]
