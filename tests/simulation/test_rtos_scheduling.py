"""RTOS scheduling policies in the system simulation."""

import pytest

from repro.application import ApplicationModel
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.simulation import SystemSimulation
from repro.uml import Port


def build_three_worker_app():
    """One source floods three workers of different priority on one PE."""
    app = ApplicationModel("RtosApp")
    app.signal("job", [("n", "Int32")])
    worker = app.component("Worker")
    worker.add_port(Port("inp", provided=["job"]))
    machine = app.behavior(worker)
    machine.variable("done", 0)
    machine.variable("i", 0)
    machine.state("s", initial=True)
    machine.on_signal(
        "s", "s", "job", params=["n"],
        effect="i = 0; while (i < 30) { i = i + 1; } done = done + 1;",
        internal=True,
    )
    source = app.component("Source")
    for port in ("out_a", "out_b", "out_c"):
        source.add_port(Port(port, required=["job"]))
    machine2 = app.behavior(source)
    machine2.state(
        "s", initial=True,
        entry=(
            "send job(1) via out_a; send job(2) via out_b; send job(3) via out_c;"
            "send job(4) via out_a; send job(5) via out_b; send job(6) via out_c;"
        ),
    )
    app.process(app.top, "w_a", worker, priority=0)
    app.process(app.top, "w_b", worker, priority=5)
    app.process(app.top, "w_c", worker, priority=9)
    app.process(app.top, "src", source)
    app.connect(app.top, ("src", "out_a"), ("w_a", "inp"))
    app.connect(app.top, ("src", "out_b"), ("w_b", "inp"))
    app.connect(app.top, ("src", "out_c"), ("w_c", "inp"))
    app.group("g")
    for name in ("w_a", "w_b", "w_c", "src"):
        app.assign(name, "g")
    return app


def run_with_policy(policy, dispatch_overhead=0, tick=0):
    app = build_three_worker_app()
    platform = PlatformModel("OneCpu", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    if policy is not None:
        platform.configure_rtos(
            "cpu1",
            scheduling=policy,
            dispatch_overhead_cycles=dispatch_overhead,
            tick_period_us=tick,
        )
    mapping = MappingModel(app, platform)
    mapping.map("g", "cpu1")
    result = SystemSimulation(app, platform, mapping).run(10_000)
    jobs = [
        r.process for r in result.log.exec_records
        if r.trigger == "job"
    ]
    return jobs, result


class TestPolicies:
    def test_priority_policy_orders_by_priority(self):
        jobs, _ = run_with_policy("priority")
        # all six jobs pending when the PE frees up: all w_c first, then w_b
        assert jobs == ["w_c", "w_c", "w_b", "w_b", "w_a", "w_a"]

    def test_fifo_policy_orders_by_arrival(self):
        jobs, _ = run_with_policy("fifo")
        assert jobs == ["w_a", "w_b", "w_c", "w_a", "w_b", "w_c"]

    def test_round_robin_rotates_fairly(self):
        jobs, _ = run_with_policy("round-robin")
        # rotation over process names: each worker served once per cycle
        assert jobs[:3] != ["w_c", "w_c", "w_b"]
        assert sorted(jobs[:3]) == ["w_a", "w_b", "w_c"]
        assert sorted(jobs[3:]) == ["w_a", "w_b", "w_c"]

    def test_default_is_priority(self):
        with_default, _ = run_with_policy(None)
        with_priority, _ = run_with_policy("priority")
        assert with_default == with_priority


class TestOverheadAccounting:
    def test_dispatch_overhead_charged_per_step(self):
        _, without = run_with_policy("priority", dispatch_overhead=0)
        _, with_overhead = run_with_policy("priority", dispatch_overhead=200)
        free = without.log.cycles_by_process()
        taxed = with_overhead.log.cycles_by_process()
        step_count = sum(
            1 for r in with_overhead.log.exec_records if r.process == "w_a"
        )
        assert taxed["w_a"] == free["w_a"] + 200 * step_count

    def test_overhead_extends_busy_time(self):
        _, without = run_with_policy("priority", dispatch_overhead=0)
        _, with_overhead = run_with_policy("priority", dispatch_overhead=500)
        assert with_overhead.pe_busy_ps["cpu1"] > without.pe_busy_ps["cpu1"]


class TestTickResolution:
    def build_timer_app(self):
        app = ApplicationModel("TickApp")
        app.signal("noop")
        comp = app.component("C")
        machine = app.behavior(comp)
        machine.variable("fires", 0)
        machine.state("s", initial=True, entry="set_timer(t, 130);")
        machine.on_timer(
            "s", "s", "t", effect="fires = fires + 1;", internal=True
        )
        app.process(app.top, "p1", comp)
        app.group("g")
        app.assign("p1", "g")
        return app

    def run_timer(self, tick):
        app = self.build_timer_app()
        platform = PlatformModel("OneCpu", standard_library())
        platform.instantiate("cpu1", "NiosCPU")
        if tick:
            platform.configure_rtos("cpu1", tick_period_us=tick)
        mapping = MappingModel(app, platform)
        mapping.map("g", "cpu1")
        result = SystemSimulation(app, platform, mapping).run(1_000)
        fires = [
            r for r in result.log.exec_records if r.trigger == "timer:t"
        ]
        return fires[0].time_ps if fires else None

    def test_tickless_timer_fires_exactly(self):
        fired_at = self.run_timer(tick=0)
        assert fired_at is not None
        assert fired_at == pytest.approx(130 * 1_000_000, abs=2_000_000)

    def test_tick_rounds_timer_up(self):
        # 130 us timer on a 100 us tick fires at the 200 us tick boundary
        tickless = self.run_timer(tick=0)
        ticked = self.run_timer(tick=100)
        assert ticked > tickless
        assert ticked >= 200 * 1_000_000
