"""Simulation log-file format: render, parse, aggregate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulation import (
    DropRecord,
    ExecRecord,
    LogWriter,
    SignalRecord,
    parse_log,
)

NAMES = st.sampled_from(["rca", "mng", "frag", "crc", "user", "phy"])


def sample_writer():
    writer = LogWriter(meta={"application": "Demo"})
    writer.exec_step(
        time_ps=0, process="a", pe="cpu1", cycles=100, duration_ps=2000,
        from_state="idle", to_state="run", trigger="start",
    )
    writer.signal(
        time_ps=2000, signal="ping", sender="a", receiver="b", bytes=12,
        latency_ps=500, transport="bus",
    )
    writer.drop(time_ps=2500, process="b", signal="pong", reason="no-transition")
    writer.finish(5000)
    return writer


class TestRoundTrip:
    def test_parse_recovers_records(self):
        log = parse_log(sample_writer().render())
        assert len(log.exec_records) == 1
        assert len(log.signal_records) == 1
        assert len(log.drop_records) == 1
        assert log.end_time_ps == 5000
        assert log.meta["application"] == "Demo"

    def test_exec_fields(self):
        log = parse_log(sample_writer().render())
        record = log.exec_records[0]
        assert record.process == "a"
        assert record.cycles == 100
        assert record.from_state == "idle"

    def test_signal_fields(self):
        log = parse_log(sample_writer().render())
        record = log.signal_records[0]
        assert record.sender == "a"
        assert record.transport == "bus"
        assert record.latency_ps == 500

    def test_write_and_read_file(self, tmp_path):
        from repro.simulation import read_log

        path = tmp_path / "run.tutlog"
        sample_writer().write(path)
        log = read_log(path)
        assert log.end_time_ps == 5000


class TestErrors:
    def test_missing_magic(self):
        with pytest.raises(SimulationError):
            parse_log("EXEC time=0\n")

    def test_truncated_log(self):
        text = sample_writer().render()
        truncated = "\n".join(text.splitlines()[:-1])
        with pytest.raises(SimulationError):
            parse_log(truncated)

    def test_malformed_record(self):
        with pytest.raises(SimulationError):
            parse_log("TUTLOG 1\nEXEC time=zero\nEND time=1 events=0\n")

    def test_unknown_record_kind(self):
        with pytest.raises(SimulationError):
            parse_log("TUTLOG 1\nWAT x=1\nEND time=1 events=0\n")

    def test_comments_and_blank_lines_tolerated(self):
        text = "TUTLOG 1\n\n# a comment\nEND time=9 events=0\n"
        assert parse_log(text).end_time_ps == 9


class TestAggregation:
    def test_cycles_by_process(self):
        writer = LogWriter()
        for cycles in (10, 20, 30):
            writer.exec_step(
                time_ps=0, process="p", pe="cpu", cycles=cycles, duration_ps=0,
                from_state="s", to_state="s", trigger="t",
            )
        writer.exec_step(
            time_ps=0, process="q", pe="cpu", cycles=5, duration_ps=0,
            from_state="s", to_state="s", trigger="t",
        )
        writer.finish(1)
        log = parse_log(writer.render())
        assert log.cycles_by_process() == {"p": 60, "q": 5}

    def test_signal_counts(self):
        writer = LogWriter()
        for _ in range(3):
            writer.signal(
                time_ps=0, signal="x", sender="a", receiver="b", bytes=1,
                latency_ps=0, transport="local",
            )
        writer.signal(
            time_ps=0, signal="y", sender="b", receiver="a", bytes=1,
            latency_ps=0, transport="local",
        )
        writer.finish(1)
        log = parse_log(writer.render())
        assert log.signal_counts() == {("a", "b"): 3, ("b", "a"): 1}


@given(
    st.lists(
        st.tuples(
            NAMES,
            NAMES,
            st.integers(0, 10**6),
            st.integers(0, 10**4),
        ),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_roundtrip(records):
    """Any batch of records survives render → parse exactly."""
    writer = LogWriter()
    for sender, receiver, time_ps, size in records:
        writer.signal(
            time_ps=time_ps, signal="sig", sender=sender, receiver=receiver,
            bytes=size, latency_ps=time_ps // 2, transport="local",
        )
    writer.finish(10**7)
    log = parse_log(writer.render())
    assert len(log.signal_records) == len(records)
    for record, (sender, receiver, time_ps, size) in zip(log.signal_records, records):
        assert record.sender == sender
        assert record.receiver == receiver
        assert record.time_ps == time_ps
        assert record.bytes == size
