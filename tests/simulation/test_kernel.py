"""Discrete-event kernel: ordering, cancellation, budget."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Kernel, cycles_to_ps
from repro.simulation.kernel import EV_SEQ, PS_PER_US


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(300, lambda: fired.append("c"))
        kernel.schedule(100, lambda: fired.append("a"))
        kernel.schedule(200, lambda: fired.append("b"))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        kernel = Kernel()
        fired = []
        for label in "abc":
            kernel.schedule(50, lambda l=label: fired.append(l))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(500, lambda: seen.append(kernel.now_ps))
        kernel.run()
        assert seen == [500]

    def test_nested_scheduling(self):
        kernel = Kernel()
        fired = []
        def first():
            fired.append(("first", kernel.now_ps))
            kernel.schedule(10, lambda: fired.append(("second", kernel.now_ps)))
        kernel.schedule(100, first)
        kernel.run()
        assert fired == [("first", 100), ("second", 110)]

    def test_negative_delay_rejected(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-1, lambda: None)

    def test_negative_delay_is_a_value_error(self):
        # regression: the guard must raise a ValueError subclass so plain
        # argument validation catches it (mirrors cycles_to_ps's guard)
        kernel = Kernel()
        with pytest.raises(ValueError):
            kernel.schedule(-1, lambda: None)

    def test_schedule_at_past_time_is_a_value_error(self):
        kernel = Kernel()
        kernel.schedule(10, lambda: None)
        kernel.run()
        assert kernel.now_ps == 10
        with pytest.raises(ValueError):
            kernel.schedule_at(5, lambda: None)

    def test_schedule_at(self):
        kernel = Kernel()
        seen = []
        kernel.schedule_at(777, lambda: seen.append(kernel.now_ps))
        kernel.run()
        assert seen == [777]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = Kernel()
        fired = []
        event = kernel.schedule(100, lambda: fired.append("x"))
        kernel.cancel(event)
        kernel.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        kernel = Kernel()
        kernel.schedule(10, lambda: None)
        event = kernel.schedule(20, lambda: None)
        kernel.cancel(event)
        assert kernel.pending == 1


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(100, lambda: fired.append("early"))
        kernel.schedule(10_000, lambda: fired.append("late"))
        dispatched = kernel.run(until_ps=1000)
        assert fired == ["early"]
        assert dispatched == 1
        assert kernel.now_ps == 1000  # clock advanced to the horizon

    def test_resume_after_until(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(100, lambda: fired.append(1))
        kernel.schedule(500, lambda: fired.append(2))
        kernel.run(until_ps=200)
        kernel.run()
        assert fired == [1, 2]

    def test_event_budget(self):
        kernel = Kernel(max_events=10)
        def loop():
            kernel.schedule(1, loop)
        kernel.schedule(1, loop)
        with pytest.raises(SimulationError):
            kernel.run(until_ps=10_000)


class TestCyclesToPs:
    def test_50mhz_cycle_is_20ns(self):
        assert cycles_to_ps(1, 50_000_000) == 20_000

    def test_scales_linearly(self):
        assert cycles_to_ps(100, 50_000_000) == 100 * 20_000

    def test_microsecond_constant(self):
        assert cycles_to_ps(50, 50_000_000) == PS_PER_US

    def test_zero_frequency_rejected(self):
        with pytest.raises(SimulationError):
            cycles_to_ps(1, 0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(SimulationError, match="non-negative"):
            cycles_to_ps(-1, 50_000_000)

    def test_zero_cycles_ok(self):
        assert cycles_to_ps(0, 50_000_000) == 0


class TestPendingCounter:
    """`Kernel.pending` is a live counter (O(1)), not a heap scan."""

    def test_counts_scheduled_events(self):
        kernel = Kernel()
        for delay in (10, 20, 30):
            kernel.schedule(delay, lambda: None)
        assert kernel.pending == 3

    def test_cancel_decrements(self):
        kernel = Kernel()
        events = [kernel.schedule(d, lambda: None) for d in (10, 20, 30)]
        kernel.cancel(events[1])
        assert kernel.pending == 2

    def test_double_cancel_is_idempotent(self):
        kernel = Kernel()
        event = kernel.schedule(10, lambda: None)
        kernel.schedule(20, lambda: None)
        kernel.cancel(event)
        kernel.cancel(event)
        assert kernel.pending == 1

    def test_cancel_after_dispatch_is_a_noop(self):
        kernel = Kernel()
        event = kernel.schedule(10, lambda: None)
        kernel.schedule(20, lambda: None)
        kernel.run(until_ps=15)
        kernel.cancel(event)  # already fired: must not corrupt the counter
        assert kernel.pending == 1

    def test_dispatch_decrements(self):
        kernel = Kernel()
        for delay in (10, 20, 30):
            kernel.schedule(delay, lambda: None)
        kernel.run(until_ps=25)
        assert kernel.pending == 1

    def test_tombstones_are_compacted(self):
        # cancel-heavy models (timer resets) must not grow the queue
        # unboundedly: once tombstones outnumber live events every
        # structure is rebuilt with only live entries
        kernel = Kernel()
        events = [kernel.schedule(d + 1, lambda: None) for d in range(100)]
        for event in events[:90]:
            kernel.cancel(event)
        assert kernel.pending == 10
        assert kernel._size - kernel._tombstones == 10
        assert kernel._size < 30
        assert kernel.run() == 10


class TestStateProtocol:
    def test_dispatched_counts_lifetime_events(self):
        kernel = Kernel()
        for delay in (10, 20):
            kernel.schedule(delay, lambda: None)
        kernel.run()
        assert kernel.dispatched == 2

    def test_state_roundtrip_preserves_clock_and_counters(self):
        kernel = Kernel()
        kernel.schedule(10, lambda: None)
        kernel.schedule(20, lambda: None)
        kernel.run()
        state = kernel.state_dict()

        restored = Kernel()
        restored.load_state_dict(state)
        assert restored.now_ps == kernel.now_ps
        assert restored.dispatched == 2
        # new events get fresh (higher) sequence numbers
        event = restored.schedule(5, lambda: None)
        assert event[EV_SEQ] > 2

    def test_load_requires_fresh_kernel(self):
        used = Kernel()
        used.schedule(10, lambda: None)
        with pytest.raises(SimulationError, match="fresh"):
            used.load_state_dict({"now_ps": 0, "sequence": 0, "dispatched": 0})

    def test_restore_event_replays_original_order(self):
        # two same-time events restored out of order must still fire in
        # original sequence order — the property byte-identical resume
        # rests on
        kernel = Kernel()
        kernel.load_state_dict({"now_ps": 100, "sequence": 7, "dispatched": 5})
        fired = []
        kernel.restore_event(150, 6, lambda: fired.append("b"))
        kernel.restore_event(150, 3, lambda: fired.append("a"))
        kernel.run()
        assert fired == ["a", "b"]

    def test_restore_event_rejects_future_sequence(self):
        kernel = Kernel()
        kernel.load_state_dict({"now_ps": 0, "sequence": 2, "dispatched": 0})
        with pytest.raises(SimulationError, match="ahead"):
            kernel.restore_event(10, 3, lambda: None)

    def test_restore_event_rejects_past_time(self):
        kernel = Kernel()
        kernel.load_state_dict({"now_ps": 100, "sequence": 5, "dispatched": 0})
        with pytest.raises(SimulationError, match="before"):
            kernel.restore_event(50, 1, lambda: None)

    def test_after_event_hook_fires_per_dispatch(self):
        kernel = Kernel()
        calls = []
        kernel.after_event = lambda: calls.append(kernel.now_ps)
        kernel.schedule(10, lambda: None)
        kernel.schedule(20, lambda: None)
        kernel.run()
        assert calls == [10, 20]
