"""Workstation reference simulation (paper §4.4 Table 4 setting)."""

from repro.simulation import (
    REFERENCE_PE,
    build_reference_mapping,
    build_reference_platform,
    run_reference_simulation,
)

from tests.conftest import build_pingpong


class TestReferencePlatform:
    def test_single_workstation_pe(self):
        platform = build_reference_platform()
        assert list(platform.processing_elements) == [REFERENCE_PE]
        assert not platform.segments

    def test_reference_mapping_covers_all_groups(self):
        app = build_pingpong()
        mapping = build_reference_mapping(app)
        assert mapping.assignment() == {
            "g1": REFERENCE_PE,
            "g2": REFERENCE_PE,
        }


class TestReferenceRun:
    def test_all_signals_local(self):
        app = build_pingpong()
        result = run_reference_simulation(app, duration_us=5_000)
        assert {r.transport for r in result.log.signal_records} == {"local"}
        assert result.writer.meta["reference"] == "workstation"

    def test_all_execution_on_workstation(self):
        app = build_pingpong()
        result = run_reference_simulation(app, duration_us=5_000)
        pes = {r.pe for r in result.log.exec_records}
        assert pes == {REFERENCE_PE}

    def test_no_bus_traffic(self):
        app = build_pingpong()
        result = run_reference_simulation(app, duration_us=5_000)
        assert result.bus_stats == {}
