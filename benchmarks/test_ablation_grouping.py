"""Ablation A1 — grouping strategy comparison (paper §3.1 grouping criteria).

Compares cross-group communication (the paper's grouping objective) for:
the paper's manual grouping, the automatic communication-minimising merge
(the paper's announced future-work tool), an arbitrary round-robin
grouping, and per-process grouping.  The expected ordering: automatic ≤
paper < round-robin < per-process.
"""

from repro.cases.tutmac import PAPER_GROUPING, build_tutmac
from repro.exploration import (
    communication_minimizing_grouping,
    external_traffic,
    per_process_grouping,
    round_robin_grouping,
)
from repro.profiling import profile_run
from repro.simulation import run_reference_simulation
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact


def run_ablation():
    application = build_tutmac()
    result = run_reference_simulation(application, duration_us=100_000)
    data = profile_run(result, application)
    types = {
        name: process.process_type()
        for name, process in application.processes.items()
        if not process.is_environment
    }
    strategies = {
        "paper (Figure 6)": dict(PAPER_GROUPING),
        "auto comm-minimising": communication_minimizing_grouping(data, types, 4),
        "round-robin": round_robin_grouping(types, types, 4, seed=2),
        "per-process": per_process_grouping(types, types),
    }
    scores = {
        name: external_traffic(assignment, data)
        for name, assignment in strategies.items()
    }
    return data, strategies, scores


def test_ablation_grouping_strategies(benchmark):
    data, strategies, scores = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    rows = [
        (name, len(set(strategies[name].values())), scores[name])
        for name in scores
    ]
    rows.sort(key=lambda r: r[2])
    table = render_table(
        ("Strategy", "Groups", "Cross-group signals"),
        rows,
        title="Ablation A1: grouping strategy vs. cross-group communication",
    )
    record_artifact("ablation_a1_grouping.txt", table)

    assert scores["auto comm-minimising"] <= scores["paper (Figure 6)"]
    assert scores["paper (Figure 6)"] < scores["per-process"]
    assert scores["round-robin"] <= scores["per-process"]
    # per-process externalises every inter-process signal
    assert scores["per-process"] == max(scores.values())
    print()
    print(table)
