"""Ablation A4 — CRC on the hardware accelerator vs in software (paper §4).

"The platform library contains implementations of some time critical
algorithms, such as Cyclic Redundancy Check (CRC), that can be used for
hardware acceleration of protocol functions."  This bench maps group4
(the crc process) either onto the CRC accelerator (paper, Figure 8) or in
software onto processor1, and compares the cycles the CRC work costs.
"""

from repro.cases.tutwlan import build_tutwlan_system
from repro.profiling import profile_run
from repro.simulation import SystemSimulation
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact

DURATION_US = 100_000


def run_variant(crc_on_accelerator):
    overrides = {} if crc_on_accelerator else {"group4": "processor1"}
    application, platform, mapping = build_tutwlan_system(
        mapping_overrides=overrides
    )
    simulation = SystemSimulation(application, platform, mapping)
    result = simulation.run(DURATION_US)
    data = profile_run(result, application)
    crc_execs = [r for r in result.log.exec_records if r.process == "crc"]
    crc_pe = crc_execs[0].pe if crc_execs else "-"
    return data, crc_pe


def run_ablation():
    return {
        "accelerator (paper)": run_variant(True),
        "software on processor1": run_variant(False),
    }


def test_ablation_crc_acceleration(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for name, (data, crc_pe) in results.items():
        rows.append(
            (
                name,
                crc_pe,
                data.group_cycles["group4"],
                f"{100 * data.group_share('group4'):.2f} %",
            )
        )
    table = render_table(
        ("Variant", "CRC runs on", "group4 cycles", "group4 share"),
        rows,
        title="Ablation A4: CRC hardware acceleration",
    )
    record_artifact("ablation_a4_accelerator.txt", table)

    accel_data, accel_pe = results["accelerator (paper)"]
    soft_data, soft_pe = results["software on processor1"]
    assert accel_pe == "accelerator1"
    assert soft_pe == "processor1"
    # hardware CRC is dramatically cheaper: 1 cycle/stmt vs 40 cycles/stmt
    # for a hardware-type process falling back to software
    assert accel_data.group_cycles["group4"] * 10 < soft_data.group_cycles["group4"]
    print()
    print(table)
