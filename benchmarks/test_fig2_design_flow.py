"""Experiment F2 — paper Figure 2: the design and profiling flow, end to end.

Runs every box of Figure 2 on the TUTMAC/TUTWLAN system: model validation,
XMI export, group-info parsing (profiling stage 1), code generation with
instrumentation, simulation producing the log-file, and the profiling
report.  The bench verifies every artefact exists and is consistent.
"""

import os

from repro.cases.tutwlan import build_tutwlan_system
from repro.flow import run_design_flow
from repro.profiling import group_info_from_xmi
from repro.simulation import read_log

from benchmarks.conftest import record_artifact


def run_flow(tmp_dir):
    application, platform, mapping = build_tutwlan_system()
    return run_design_flow(
        application, platform, mapping, tmp_dir, duration_us=100_000
    ), application


def test_fig2_design_flow(benchmark, tmp_path):
    result, application = benchmark.pedantic(
        run_flow, args=(str(tmp_path),), rounds=1, iterations=1
    )
    record_artifact("fig2_profiling_report.txt", result.report_text)

    # every artefact of the flow exists
    assert os.path.exists(result.xmi_path)
    assert os.path.exists(result.log_path)
    assert os.path.exists(result.report_path)
    assert os.path.exists(os.path.join(result.code_directory, "Makefile"))
    generated = os.listdir(result.code_directory)
    assert "tut_runtime.c" in generated
    assert "RadioChannelAccess.c" in generated

    # the log-file round-trips and the XMI feeds stage 1
    log = read_log(result.log_path)
    assert log.exec_records and log.signal_records
    info = group_info_from_xmi(
        open(result.xmi_path).read(), profiles=[application.profile]
    )
    assert info.group_of("rca") == "group1"

    # the profiling result reflects the platform run (group4 on the
    # accelerator is nearly free; group1 dominates)
    shares = result.profiling.shares()
    assert shares["group1"] > 0.5
    assert shares["group4"] < 0.02
    print()
    print(result.report_text[: result.report_text.index("Per-process")])
