"""Experiment T2 — paper Table 2: tagged values of application stereotypes."""

from repro.tutprofile import (
    APPLICATION_STEREOTYPES,
    TUT_PROFILE,
    render_table2,
    tagged_value_rows,
)

from benchmarks.conftest import record_artifact

#: Tag inventory of Table 2, verbatim from the paper.
PAPER_TAGS = {
    "Application": {"Priority", "CodeMemory", "DataMemory", "RealTimeType"},
    "ApplicationComponent": {"CodeMemory", "DataMemory", "RealTimeType"},
    "ApplicationProcess": {
        "Priority", "CodeMemory", "DataMemory", "RealTimeType", "ProcessType",
    },
    "ProcessGroup": {"Fixed", "ProcessType"},
    "ProcessGrouping": {"Fixed"},
}


def test_table2_application_tagged_values(benchmark):
    table = benchmark(render_table2, TUT_PROFILE)
    record_artifact("table2_application_tags.txt", table)
    rows = tagged_value_rows(TUT_PROFILE, APPLICATION_STEREOTYPES)
    by_stereotype = {}
    for stereotype, tag, _ in rows:
        by_stereotype.setdefault(stereotype.strip("«»"), set()).add(tag)
    assert by_stereotype == PAPER_TAGS
    print()
    print(table)
