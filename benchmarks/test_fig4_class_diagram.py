"""Experiment F4 — paper Figure 4: TUTMAC class diagram.

Tutmac_Protocol («Application») composed of five components: Management,
RadioManagement, RadioChannelAccess (functional, «ApplicationComponent»)
and UserInterface, DataProcessing (structural, unstereotyped).
"""

from repro.diagrams import class_diagram_dot, class_diagram_text

from benchmarks.conftest import record_artifact


def test_fig4_class_diagram(benchmark, tutmac_app):
    dot = benchmark(class_diagram_dot, tutmac_app)
    record_artifact("fig4_class_diagram.dot", dot)
    text = class_diagram_text(tutmac_app)
    record_artifact("fig4_class_diagram.txt", text)

    assert tutmac_app.top.name == "Tutmac_Protocol"
    assert tutmac_app.top.has_stereotype("Application")
    functional = {"Management", "RadioManagement", "RadioChannelAccess"}
    structural = {"UserInterface", "DataProcessing"}
    for name in functional:
        component = tutmac_app.components[name]
        assert component.has_stereotype("ApplicationComponent")
        assert component.is_functional
        assert name in dot
    for name in structural:
        klass = tutmac_app.structurals[name]
        assert not klass.applied_stereotypes
        assert klass.is_structural
    assert {p.name for p in tutmac_app.top.parts} == {"ui", "dp", "mng", "rmng", "rca"}
    print()
    print(text)
