"""Experiment F8 — paper Figure 8: mapping TUTMAC onto the TUTWLAN platform.

group1 and group3 map to processor1 ("the designer prefers the processes
of the two process groups to be implemented on the same processor"),
group2 to processor2, and group4 to accelerator1 ("processes that can be
implemented on an existing hardware accelerator").
"""

from repro.cases.tutwlan import PAPER_MAPPING
from repro.diagrams import mapping_diagram_dot, mapping_diagram_text

from benchmarks.conftest import record_artifact


def test_fig8_mapping(benchmark, tutwlan_system):
    _, platform, mapping = tutwlan_system
    dot = benchmark(mapping_diagram_dot, mapping)
    record_artifact("fig8_mapping.dot", dot)
    text = mapping_diagram_text(mapping)
    record_artifact("fig8_mapping.txt", text)

    assert mapping.assignment() == PAPER_MAPPING
    assert mapping.groups_on("processor1") == ["group1", "group3"]
    assert mapping.groups_on("processor2") == ["group2"]
    assert mapping.groups_on("processor3") == []
    assert mapping.groups_on("accelerator1") == ["group4"]
    mapping.check_complete()
    # the hardware group rides the accelerator
    assert platform.pe("accelerator1").spec.component_type == "hw accelerator"
    print()
    print(text)
