"""Experiment T1 — paper Table 1: TUT-Profile stereotype summary.

Regenerates the stereotype summary from the live profile registry and
checks it lists exactly the paper's eleven stereotypes with their
metaclasses.
"""

from repro.tutprofile import ALL_STEREOTYPES, TUT_PROFILE, render_table1, stereotype_summary_rows

from benchmarks.conftest import record_artifact


def test_table1_stereotype_summary(benchmark):
    table = benchmark(render_table1, TUT_PROFILE)
    record_artifact("table1_stereotypes.txt", table)
    rows = stereotype_summary_rows(TUT_PROFILE)
    assert len(rows) == len(ALL_STEREOTYPES) == 11
    # paper row samples
    assert "Application (Class)" in table
    assert "ProcessGrouping (Dependency)" in table
    assert "PlatformMapping (Dependency)" in table
    assert "Functional application component (active class, has behavior)" in table
    print()
    print(table)
