"""Ablation A5 — the profiling-guided improvement loop (paper §4.4, §5).

"TUT-Profile and the profiling tool were used to improve performance of
TUTMAC by minimizing the communication between process groups."  Starting
from a deliberately bad mapping (every group on its own PE), the loop
profiles, co-locates the heaviest communicating groups, and keeps moves
that reduce the cost.  The bench verifies the loop converges to a design
with strictly less bus traffic.
"""

from repro.cases.tutmac import build_tutmac
from repro.cases.tutwlan import build_tutwlan_platform
from repro.exploration import improvement_loop
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact

BAD_INITIAL = {
    "group1": "processor1",
    "group2": "processor2",
    "group3": "processor3",
    "group4": "accelerator1",
}


def factory():
    application = build_tutmac()
    platform = build_tutwlan_platform(profile=application.profile)
    return application, platform


def run_loop():
    return improvement_loop(
        factory, BAD_INITIAL, duration_us=50_000, max_iterations=6
    )


def test_ablation_improvement_loop(benchmark):
    history = benchmark.pedantic(run_loop, rounds=1, iterations=1)
    rows = []
    for step, candidate in enumerate(history):
        assignment = ", ".join(
            f"{g}->{pe.replace('processor', 'p').replace('accelerator', 'acc')}"
            for g, pe in sorted(candidate.assignment.items())
        )
        rows.append(
            (
                step,
                candidate.result.bus_bytes,
                round(candidate.result.max_pe_utilization, 3),
                assignment,
            )
        )
    table = render_table(
        ("Step", "Bus bytes", "Peak util", "Mapping"),
        rows,
        title="Ablation A5: profiling-guided mapping improvement",
    )
    record_artifact("ablation_a5_improvement_loop.txt", table)

    assert len(history) >= 2, "the loop found no improving move"
    first, last = history[0], history[-1]
    assert last.cost < first.cost
    assert last.result.bus_bytes < first.result.bus_bytes
    # costs decrease monotonically along accepted moves
    costs = [candidate.cost for candidate in history]
    assert costs == sorted(costs, reverse=True)
    print()
    print(table)
