"""Experiment F7 — paper Figure 7: the TUTWLAN terminal platform.

Four processing elements (three processors + a CRC accelerator) on two
HIBI segments joined by a bridge segment: processor1/processor2 on
hibisegment1, processor3/accelerator1 on hibisegment2.
"""

from repro.diagrams import platform_diagram_dot, platform_diagram_text

from benchmarks.conftest import record_artifact


def test_fig7_platform(benchmark, tutwlan_system):
    _, platform, _ = tutwlan_system
    dot = benchmark(platform_diagram_dot, platform)
    record_artifact("fig7_platform.dot", dot)
    text = platform_diagram_text(platform)
    record_artifact("fig7_platform.txt", text)

    assert set(platform.processing_elements) == {
        "processor1", "processor2", "processor3", "accelerator1"
    }
    assert platform.pe("accelerator1").spec.component_type == "hw accelerator"
    assert set(platform.agents_on("hibisegment1")) == {"processor1", "processor2"}
    assert set(platform.agents_on("hibisegment2")) == {"processor3", "accelerator1"}
    assert set(platform.agents_on("bridge")) == {"hibisegment1", "hibisegment2"}
    assert platform.segments["bridge"].is_bridge
    # cross-segment transfers traverse the bridge, as drawn
    assert platform.transfer_path("processor2", "processor3") == [
        "hibisegment1", "bridge", "hibisegment2"
    ]
    # every wrapper carries HIBI parameters
    for wrapper in platform.wrappers:
        assert wrapper.dependency.has_stereotype("HIBIWrapper")
        assert wrapper.spec.address > 0
    print()
    print(text)
