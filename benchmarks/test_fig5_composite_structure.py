"""Experiment F5 — paper Figure 5: composite structure of Tutmac_Protocol.

Five parts communicate through ports wired by eleven connectors, with
boundary ports pUser, pPhy and pMngUser.  The bench regenerates the
diagram and verifies every paper connection by resolving actual routes.
"""

from repro.diagrams import composite_structure_dot, composite_structure_text

from benchmarks.conftest import record_artifact

#: (sender process, signal) -> (receiver process, port), one probe per
#: Figure 5 connector, both directions where the figure labels both.
PAPER_CONNECTIONS = [
    ("user", "msdu_req", "msduRec"),      # pUser / UserPort (UToUi)
    ("msduDel", "msdu_ind", "user"),      # (UiToU)
    ("msduRec", "sdu_tx", "frag"),        # ui.DPPort -- dp (UiToDp)
    ("defrag", "sdu_rx", "msduDel"),      # (DpToUi)
    ("msduRec", "ui_status", "mng"),      # ui.MngPort -- mng.UIPort
    ("mng", "flow_ctrl", "msduRec"),
    ("mng", "dp_cfg", "frag"),            # dp.ManagementPort -- mng.DPPort
    ("frag", "pdu_tx", "rca"),            # dp.ChannelAccessPort -- rca.DataPort
    ("rca", "pdu_rx", "defrag"),
    ("mng", "beacon_req", "rca"),         # mng.RChPort -- rca.MngPort
    ("rca", "beacon_cnf", "mng"),
    ("mng", "rmng_cfg", "rmng"),          # mng.RMngPort -- rmng.MngPort
    ("rmng", "rmng_status", "mng"),
    ("rca", "ch_load", "rmng"),           # rca.RMngPort -- rmng.RChPort
    ("rca", "phy_tx", "phy"),             # pPhy / rca.PhyPort
    ("phy", "phy_rx", "rca"),
    ("rmng", "meas_req", "phy"),          # pPhy / rmng.PhyPort
    ("phy", "meas_ind", "rmng"),
    ("mngUser", "mng_cmd", "mng"),        # pMngUser / mng.MngUserPort
    ("mng", "mng_rsp", "mngUser"),
]


def test_fig5_composite_structure(benchmark, tutmac_app):
    dot = benchmark(composite_structure_dot, tutmac_app)
    record_artifact("fig5_composite_structure.dot", dot)
    text = composite_structure_text(tutmac_app)
    record_artifact("fig5_composite_structure.txt", text)

    assert [p.name for p in tutmac_app.top.ports] == ["pUser", "pPhy", "pMngUser"]
    assert len(tutmac_app.top.connectors) == 11
    for sender, signal, receiver in PAPER_CONNECTIONS:
        destination, _ = tutmac_app.route(sender, signal)
        assert destination == receiver, (sender, signal, destination)
    print()
    print(text)
