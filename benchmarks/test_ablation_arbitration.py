"""Ablation A3 — HIBI arbitration: priority vs round-robin (Table 3 tag).

Saturates one shared segment with transfers from three initiators of
different priority classes and compares per-initiator waiting under both
arbitration schemes: priority starves the low class, round-robin evens
the waits out.
"""

from repro.platform import PlatformModel, standard_library
from repro.simulation import HibiBus, Kernel
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact

TRANSFERS_PER_CPU = 30
SIZE_BYTES = 256


def build(arbitration):
    platform = PlatformModel("Arb", standard_library())
    for index, name in enumerate(("hi", "mid", "lo")):
        platform.instantiate(f"cpu_{name}", "NiosCPU")
    platform.instantiate("sink", "NiosCPU")
    platform.segment("seg", "HIBISegment", arbitration=arbitration)
    platform.attach("cpu_hi", "seg", address=0x100, priority_class=0)
    platform.attach("cpu_mid", "seg", address=0x200, priority_class=1)
    platform.attach("cpu_lo", "seg", address=0x300, priority_class=2)
    platform.attach("sink", "seg", address=0x400, priority_class=3)
    return platform


def saturate(arbitration):
    platform = build(arbitration)
    kernel = Kernel()
    bus = HibiBus(platform, kernel)
    finish = {"cpu_hi": [], "cpu_mid": [], "cpu_lo": []}
    for _ in range(TRANSFERS_PER_CPU):
        for name in finish:
            bus.transfer(
                name, "sink", SIZE_BYTES,
                lambda latency, n=name: finish[n].append(kernel.now_ps),
            )
    kernel.run()
    return {name: max(times) for name, times in finish.items()}, bus


def run_ablation():
    results = {}
    for arbitration in ("priority", "round-robin"):
        completion, bus = saturate(arbitration)
        results[arbitration] = completion
    return results


def test_ablation_arbitration(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for arbitration, completion in results.items():
        for name in ("cpu_hi", "cpu_mid", "cpu_lo"):
            rows.append((arbitration, name, completion[name] // 1000))
    table = render_table(
        ("Arbitration", "Initiator", "Last completion (ns)"),
        rows,
        title="Ablation A3: arbitration scheme vs per-initiator completion",
    )
    record_artifact("ablation_a3_arbitration.txt", table)

    priority = results["priority"]
    round_robin = results["round-robin"]
    # under priority arbitration the high class finishes strictly first
    assert priority["cpu_hi"] < priority["cpu_mid"] < priority["cpu_lo"]
    # round-robin treats the classes almost equally: the spread between the
    # first and last finisher shrinks dramatically
    priority_spread = priority["cpu_lo"] - priority["cpu_hi"]
    rr_spread = max(round_robin.values()) - min(round_robin.values())
    assert rr_spread < priority_spread / 2
    print()
    print(table)
