"""Simulator throughput: how fast the DES executes the TUTMAC system.

Not a paper experiment — an engineering benchmark tracking the event rate
of the reproduction's simulator so regressions are visible.
"""

from repro.cases.tutwlan import build_tutwlan_system
from repro.simulation import SystemSimulation

from benchmarks.conftest import record_artifact


def run_platform_simulation():
    simulation = SystemSimulation(*build_tutwlan_system())
    return simulation.run(200_000)


def test_simulator_event_rate(benchmark):
    result = benchmark.pedantic(run_platform_simulation, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean
    events_per_second = result.dispatched_events / seconds
    record_artifact(
        "simulator_performance.txt",
        f"TUTMAC on TUTWLAN, 200 ms simulated\n"
        f"  kernel events dispatched: {result.dispatched_events}\n"
        f"  wall time: {seconds:.3f} s\n"
        f"  events/s: {events_per_second:,.0f}\n"
        f"  log records: {len(result.log.records)}\n",
    )
    assert result.dispatched_events > 5_000
    assert events_per_second > 5_000  # generous floor against regressions
