"""Ablation A2 — mapping alternatives on the TUTWLAN platform (paper §4.3).

The paper maps group1+group3 to processor1 deliberately.  This bench
simulates the paper mapping against alternatives and reports bus bytes,
peak PE utilisation and end-to-end MSDU deliveries.
"""

from repro.cases.tutwlan import PAPER_MAPPING, build_tutwlan_system
from repro.exploration import summarize
from repro.simulation import SystemSimulation
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact

ALTERNATIVES = {
    "paper (Fig 8: g1+g3 on p1)": {},
    "g3 split to processor3": {"group3": "processor3"},
    "all software on processor1": {
        "group2": "processor1",
        "group3": "processor1",
    },
    "spread over three CPUs": {
        "group2": "processor2",
        "group3": "processor3",
    },
}

DURATION_US = 100_000


def evaluate_alternative(overrides):
    application, platform, mapping = build_tutwlan_system(
        mapping_overrides=overrides
    )
    simulation = SystemSimulation(application, platform, mapping)
    result = simulation.run(DURATION_US)
    metrics = summarize(result, application)
    delivered = simulation.executors["user"].variables.get("delivered", 0)
    return metrics, delivered


def run_ablation():
    rows = {}
    for name, overrides in ALTERNATIVES.items():
        metrics, delivered = evaluate_alternative(overrides)
        rows[name] = (metrics, delivered)
    return rows


def test_ablation_mapping_alternatives(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = render_table(
        ("Mapping", "Bus bytes", "Peak PE util", "MSDUs delivered"),
        [
            (name, metrics.bus_bytes, round(metrics.max_pe_utilization, 3), delivered)
            for name, (metrics, delivered) in rows.items()
        ],
        title="Ablation A2: mapping alternatives",
    )
    record_artifact("ablation_a2_mapping.txt", table)

    paper_metrics, paper_delivered = rows["paper (Fig 8: g1+g3 on p1)"]
    split_metrics, _ = rows["g3 split to processor3"]
    concentrated_metrics, _ = rows["all software on processor1"]

    # co-locating g1+g3 (paper) moves less over the bus than splitting g3 out
    assert paper_metrics.bus_bytes < split_metrics.bus_bytes
    # concentrating everything minimises bus bytes but maximises PE load
    assert concentrated_metrics.bus_bytes < paper_metrics.bus_bytes
    assert (
        concentrated_metrics.max_pe_utilization
        > paper_metrics.max_pe_utilization
    )
    # the protocol still works under the paper mapping
    assert paper_delivered > 0
    print()
    print(table)
