"""Experiment T4b — paper Table 4(b): number of signals between groups.

The absolute counts of the paper's matrix did not survive scanning, but
its structure did: it is a sparse matrix whose non-zero entries are the
protocol's pipelines (user plane through groups 2→1, downlink through
1→3→2, the CRC service 2↔4 and 3↔4, and the environment rows/columns for
the user, radio and management interfaces).  We regenerate the matrix and
check exactly that sparsity pattern, plus rate consistency against the
configured workload.
"""

from repro.cases.tutmac import build_tutmac
from repro.profiling import profile_run, render_table4b
from repro.simulation import run_reference_simulation

from benchmarks.conftest import REFERENCE_DURATION_US, record_artifact

EXPECTED_NONZERO = [
    ("group1", "group1"),       # management-plane internal signalling
    ("group1", "group3"),       # rca -> defrag (downlink PDUs)
    ("group1", "Environment"),  # rca -> phy (transmissions), mng -> mngUser
    ("group2", "group1"),       # frag -> rca (uplink PDUs)
    ("group2", "group2"),       # msduRec -> frag
    ("group2", "group4"),       # frag -> crc
    ("group2", "Environment"),  # msduDel -> user
    ("group3", "group2"),       # defrag -> msduDel
    ("group3", "group4"),       # defrag -> crc
    ("group4", "group2"),       # crc -> frag
    ("group4", "group3"),       # crc -> defrag
    ("Environment", "group1"),  # phy -> rca, mngUser -> mng
    ("Environment", "group2"),  # user -> msduRec
]

EXPECTED_ZERO = [
    ("group3", "group1"),
    ("group4", "group1"),
    ("group3", "group3"),
    ("group4", "group4"),
    ("group4", "Environment"),
    ("Environment", "group3"),
    ("Environment", "group4"),
    ("Environment", "Environment"),
]


def run_table4b():
    application = build_tutmac()
    result = run_reference_simulation(
        application, duration_us=REFERENCE_DURATION_US
    )
    return profile_run(result, application), application


def test_table4b_signal_matrix(benchmark):
    data, application = benchmark.pedantic(run_table4b, rounds=1, iterations=1)
    table = render_table4b(data)
    record_artifact("table4b_group_signals.txt", table)

    for sender, receiver in EXPECTED_NONZERO:
        assert data.signals_between(sender, receiver) > 0, (sender, receiver)
    for sender, receiver in EXPECTED_ZERO:
        assert data.signals_between(sender, receiver) == 0, (sender, receiver)

    # rate consistency: uplink PDUs = MSDUs x fragments per MSDU
    params = application.params
    duration_s = data.end_time_ps / 1e12
    msdus = duration_s * 1e6 / params.msdu_period_us
    expected_pdus = msdus * params.uplink_fragments
    measured = data.signals_between("group2", "group1")
    assert 0.8 * expected_pdus <= measured <= 1.05 * expected_pdus
    print()
    print(table)
