"""Shared benchmark fixtures and artefact recording.

Every benchmark regenerates one table or figure of the paper (or one
ablation) and writes the artefact to ``benchmarks/results/`` so the
rendered output can be inspected and diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Reference-simulation horizon. 200 ms covers 800 TDMA slots, 100 MSDUs
#: and 20 beacons — enough for stable Table 4 proportions.
REFERENCE_DURATION_US = 200_000


def record_artifact(name: str, text: str) -> str:
    """Write a rendered table/figure under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


@pytest.fixture(scope="session")
def tutmac_app():
    from repro.cases.tutmac import build_tutmac

    return build_tutmac()


@pytest.fixture(scope="session")
def reference_profiling(tutmac_app):
    """Table 4's setting: the TUTMAC run on the workstation reference."""
    from repro.profiling import profile_run
    from repro.simulation import run_reference_simulation

    result = run_reference_simulation(
        tutmac_app, duration_us=REFERENCE_DURATION_US
    )
    return profile_run(result, tutmac_app)


@pytest.fixture(scope="session")
def tutwlan_system():
    from repro.cases.tutwlan import build_tutwlan_system

    return build_tutwlan_system()
