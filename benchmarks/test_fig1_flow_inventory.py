"""Experiment F1 — paper Figure 1: design flow with TUT-Profile.

Figure 1 shows the tool stack: TUT-Profile + Telelogic TAU G2 + the custom
UML profiling tool, targeting an Altera FPGA prototype.  The reproduction
has a stand-in for every box (see DESIGN.md §2); this bench regenerates
the inventory and verifies each box resolves to an importable subsystem.
"""

import importlib

from repro.flow import FLOW_INVENTORY

from benchmarks.conftest import record_artifact


def render_inventory():
    lines = ["Figure 1: design flow with TUT-Profile (stand-ins)"]
    for box, stand_in in FLOW_INVENTORY.items():
        lines.append(f"  {box:<28} -> {stand_in}")
    return "\n".join(lines)


def test_fig1_flow_inventory(benchmark):
    text = benchmark(render_inventory)
    record_artifact("fig1_flow_inventory.txt", text)
    assert len(FLOW_INVENTORY) >= 5
    # every stand-in names at least one importable module
    for stand_in in FLOW_INVENTORY.values():
        module_name = stand_in.split()[0]
        importlib.import_module(module_name)
    print()
    print(text)
