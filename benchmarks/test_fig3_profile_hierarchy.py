"""Experiment F3 — paper Figure 3: the TUT-Profile hierarchy.

Application --composes--> ApplicationComponent --instantiates-->
ApplicationProcess --grouped into--> ProcessGroup --mapped to-->
PlatformComponentInstance <--instantiates-- PlatformComponent
<--composes-- Platform.
"""

from repro.diagrams import profile_hierarchy_dot
from repro.tutprofile import profile_hierarchy_edges

from benchmarks.conftest import record_artifact

PAPER_EDGES = {
    ("Application", "composition", "ApplicationComponent"),
    ("ApplicationComponent", "instantiate", "ApplicationProcess"),
    ("ApplicationProcess", "grouping", "ProcessGroup"),
    ("ProcessGroup", "mapping", "PlatformComponentInstance"),
    ("PlatformComponent", "instantiate", "PlatformComponentInstance"),
    ("Platform", "composition", "PlatformComponent"),
}


def test_fig3_profile_hierarchy(benchmark):
    dot = benchmark(profile_hierarchy_dot)
    record_artifact("fig3_profile_hierarchy.dot", dot)
    assert set(profile_hierarchy_edges()) == PAPER_EDGES
    assert dot.startswith("digraph")
    for node in ("Application", "ProcessGroup", "Platform"):
        assert node in dot
    print()
    print(dot)
