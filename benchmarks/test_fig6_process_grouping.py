"""Experiment F6 — paper Figure 6: TUTMAC process grouping.

group1 = {rca, mng, rmng}; group2 = {msduRec, msduDel, frag}; the model
additionally carries group3 = {defrag} and group4 = {crc} (Figure 8 and
Table 4).  The paper's grouping objective — minimise communication between
process groups — is verified quantitatively: the paper grouping produces
less cross-group traffic than splitting the hot pairs.
"""

from repro.cases.tutmac import PAPER_GROUPING, build_tutmac
from repro.diagrams import grouping_diagram_text
from repro.exploration import external_traffic
from repro.profiling import profile_run
from repro.simulation import run_reference_simulation

from benchmarks.conftest import record_artifact

PAPER_GROUPS = {
    "group1": {"rca", "mng", "rmng"},
    "group2": {"msduRec", "msduDel", "frag"},
    "group3": {"defrag"},
    "group4": {"crc"},
}


def test_fig6_process_grouping(benchmark, tutmac_app):
    text = benchmark(grouping_diagram_text, tutmac_app)
    record_artifact("fig6_process_grouping.txt", text)

    for group, members in PAPER_GROUPS.items():
        assert {p.name for p in tutmac_app.processes_in(group)} == members

    # quantitative check of the grouping objective (paper §4.1)
    result = run_reference_simulation(build_tutmac(), duration_us=100_000)
    data = profile_run(result, build_tutmac())
    paper = dict(PAPER_GROUPING)
    split = dict(paper, frag="group3")  # split the hot msduRec->frag pair
    assert external_traffic(paper, data) < external_traffic(split, data)
    print()
    print(text)
