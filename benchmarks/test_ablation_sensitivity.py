"""Ablation A7 — robustness of the Table 4(a) shape to workload calibration.

Our TUTMAC workload parameters are calibrated (the paper does not publish
its internals), so the reproduction claim rests on the *shape* of Table
4(a) being robust: group1 must dominate, with g1 > g2 > g3 > g4, across a
±2× sweep of the main calibration knobs (traffic rate, slot-scan work,
slot period).  This bench runs the sweep and checks the shape at every
point.
"""

from repro.cases.tutmac import DEFAULT_PARAMETERS, TutmacParameters, build_tutmac
from repro.profiling import profile_run
from repro.simulation import run_reference_simulation
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact

SWEEP = [
    ("baseline", {}),
    ("0.5x traffic", {"msdu_period_us": 4000, "downlink_period_us": 4000}),
    ("2x traffic", {"msdu_period_us": 1000, "downlink_period_us": 1000}),
    ("0.5x slot work", {"slot_scan_iterations": 40}),
    ("2x slot work", {"slot_scan_iterations": 160}),
    ("2x slot period", {"slot_time_us": 500}),
]


def run_point(overrides):
    params = TutmacParameters(
        **{
            **{
                field: getattr(DEFAULT_PARAMETERS, field)
                for field in DEFAULT_PARAMETERS.__dataclass_fields__
            },
            **overrides,
        }
    )
    application = build_tutmac(params=params)
    result = run_reference_simulation(application, duration_us=100_000)
    return profile_run(result, application)


def run_sweep():
    return {name: run_point(overrides) for name, overrides in SWEEP}


def test_ablation_table4a_sensitivity(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for name, data in results.items():
        rows.append(
            (
                name,
                f"{100 * data.group_share('group1'):.1f} %",
                f"{100 * data.group_share('group2'):.1f} %",
                f"{100 * data.group_share('group3'):.1f} %",
                f"{100 * data.group_share('group4'):.1f} %",
            )
        )
    table = render_table(
        ("Workload point", "group1", "group2", "group3", "group4"),
        rows,
        title="Ablation A7: Table 4(a) shape across a ±2x calibration sweep",
    )
    record_artifact("ablation_a7_sensitivity.txt", table)

    for name, data in results.items():
        cycles = data.group_cycles
        # the qualitative shape holds at every sweep point
        assert (
            cycles["group1"] > cycles["group2"] > cycles["group3"]
            > cycles["group4"] > 0
        ), name
        assert data.group_share("group1") > 0.75, name
        assert cycles["Environment"] == 0, name
    # traffic scales the user plane in the expected direction
    assert (
        results["2x traffic"].group_share("group2")
        > results["0.5x traffic"].group_share("group2")
    )
    # slot work scales group1's dominance in the expected direction
    assert (
        results["2x slot work"].group_share("group1")
        > results["0.5x slot work"].group_share("group1")
    )
    print()
    print(table)
