"""Experiment T4a — paper Table 4(a): execution time per process group.

Paper (TUTMAC simulated on the workstation processor):

    Group1       92.1 %     (radio channel access + management)
    Group2        5.2 %     (user-plane: msduRec, msduDel, frag)
    Group3        2.5 %     (defrag)
    Group4        0.2 %     (crc)
    Environment   0.0 %

We reproduce the *shape*: the same ordering, group1 dominating by more
than an order of magnitude, and each share within a tolerance band
(EXPERIMENTS.md records paper-vs-measured).
"""

from repro.cases.tutmac import build_tutmac
from repro.profiling import profile_run, render_table4a
from repro.simulation import run_reference_simulation

from benchmarks.conftest import REFERENCE_DURATION_US, record_artifact

PAPER_SHARES = {
    "group1": (92.1, 85.0, 96.0),
    "group2": (5.2, 2.0, 10.0),
    "group3": (2.5, 1.0, 6.0),
    "group4": (0.2, 0.05, 1.5),
}


def run_table4a():
    application = build_tutmac()
    result = run_reference_simulation(
        application, duration_us=REFERENCE_DURATION_US
    )
    return profile_run(result, application)


def test_table4a_group_execution_time(benchmark):
    data = benchmark.pedantic(run_table4a, rounds=1, iterations=1)
    table = render_table4a(data)
    record_artifact("table4a_group_time.txt", table)

    comparison = ["group    paper   measured"]
    for group, (paper, low, high) in sorted(PAPER_SHARES.items()):
        measured = 100.0 * data.group_share(group)
        comparison.append(f"{group}  {paper:5.1f} %  {measured:5.1f} %")
        assert low <= measured <= high, (group, measured)
    record_artifact("table4a_paper_vs_measured.txt", "\n".join(comparison))

    cycles = data.group_cycles
    assert cycles["group1"] > cycles["group2"] > cycles["group3"] > cycles["group4"] > 0
    assert cycles["group1"] > 10 * cycles["group2"]
    assert cycles["Environment"] == 0
    print()
    print(table)
    print()
    print("\n".join(comparison))
