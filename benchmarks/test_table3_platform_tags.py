"""Experiment T3 — paper Table 3: tagged values of platform stereotypes."""

from repro.tutprofile import (
    MAPPING_STEREOTYPES,
    PLATFORM_STEREOTYPES,
    TUT_PROFILE,
    render_table3,
    tagged_value_rows,
)

from benchmarks.conftest import record_artifact

#: Tag inventory of Table 3, verbatim from the paper (plus the Mapping
#: stereotype's Fixed tag described in Section 3.3).
PAPER_TAGS = {
    "PlatformComponent": {"Type", "Area", "Power"},
    "PlatformComponentInstance": {"Priority", "ID", "IntMemory"},
    "PlatformCommunicationWrapper": {"Address", "BufferSize", "MaxTime"},
    "PlatformCommunicationSegment": {"DataWidth", "Frequency", "Arbitration"},
    "PlatformMapping": {"Fixed"},
}


def test_table3_platform_tagged_values(benchmark):
    table = benchmark(render_table3, TUT_PROFILE)
    record_artifact("table3_platform_tags.txt", table)
    rows = tagged_value_rows(
        TUT_PROFILE, PLATFORM_STEREOTYPES + MAPPING_STEREOTYPES
    )
    by_stereotype = {}
    for stereotype, tag, _ in rows:
        by_stereotype.setdefault(stereotype.strip("«»"), set()).add(tag)
    assert by_stereotype == PAPER_TAGS
    print()
    print(table)
