"""Ablation A6 — RTOS scheduling policies (paper §5 future work).

"In addition, real-time operating system will be used in system
processors, which will also be accounted in the TUT-Profile."  The
«PlatformRtos» extension implements that accounting.  This bench measures
two of its effects:

1. on a flooded processor, the ready-queue policy decides how long the
   highest-priority process waits: priority < round-robin ≤ fifo;
2. on the TUTMAC/TUTWLAN system, RTOS dispatch overhead on processor1
   inflates group1's measured cycles by exactly overhead × steps.
"""

from repro.application import ApplicationModel
from repro.cases.tutwlan import build_tutwlan_system
from repro.mapping import MappingModel
from repro.platform import PlatformModel, standard_library
from repro.profiling import profile_run
from repro.simulation import SystemSimulation
from repro.uml import Port
from repro.util.tables import render_table

from benchmarks.conftest import record_artifact


def build_flood_app(jobs_per_worker=10):
    app = ApplicationModel("Flood")
    app.signal("job", [("n", "Int32")])
    worker = app.component("Worker")
    worker.add_port(Port("inp", provided=["job"]))
    machine = app.behavior(worker)
    machine.variable("done", 0)
    machine.variable("i", 0)
    machine.state("s", initial=True)
    machine.on_signal(
        "s", "s", "job", params=["n"],
        effect="i = 0; while (i < 40) { i = i + 1; } done = done + 1;",
        internal=True,
    )
    source = app.component("Source")
    for port in ("out_lo", "out_hi"):
        source.add_port(Port(port, required=["job"]))
    sends = "".join(
        f"send job({k}) via out_lo; send job({k}) via out_hi;"
        for k in range(jobs_per_worker)
    )
    machine2 = app.behavior(source)
    machine2.state("s", initial=True, entry=sends)
    app.process(app.top, "w_lo", worker, priority=0)
    app.process(app.top, "w_hi", worker, priority=9)
    app.process(app.top, "src", source)
    app.connect(app.top, ("src", "out_lo"), ("w_lo", "inp"))
    app.connect(app.top, ("src", "out_hi"), ("w_hi", "inp"))
    app.group("g")
    for name in ("w_lo", "w_hi", "src"):
        app.assign(name, "g")
    return app


def high_priority_finish_time(policy):
    app = build_flood_app()
    platform = PlatformModel("OneCpu", standard_library())
    platform.instantiate("cpu1", "NiosCPU")
    platform.configure_rtos("cpu1", scheduling=policy)
    mapping = MappingModel(app, platform)
    mapping.map("g", "cpu1")
    result = SystemSimulation(app, platform, mapping).run(20_000)
    finishes = [
        r.time_ps + r.duration_ps
        for r in result.log.exec_records
        if r.process == "w_hi" and r.trigger == "job"
    ]
    return max(finishes)


def tutmac_with_overhead(overhead_cycles):
    application, platform, mapping = build_tutwlan_system()
    if overhead_cycles:
        platform.configure_rtos(
            "processor1", dispatch_overhead_cycles=overhead_cycles
        )
    result = SystemSimulation(application, platform, mapping).run(50_000)
    data = profile_run(result, application)
    steps = data.group_steps["group1"] + data.group_steps["group3"]
    return data.group_cycles["group1"] + data.group_cycles["group3"], steps


def run_ablation():
    policy_results = {
        policy: high_priority_finish_time(policy)
        for policy in ("priority", "fifo", "round-robin")
    }
    free_cycles, free_steps = tutmac_with_overhead(0)
    taxed_cycles, taxed_steps = tutmac_with_overhead(300)
    return policy_results, (free_cycles, free_steps, taxed_cycles, taxed_steps)


def test_ablation_rtos_scheduling(benchmark):
    policy_results, overhead = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    free_cycles, free_steps, taxed_cycles, taxed_steps = overhead
    table = render_table(
        ("Policy", "High-priority worker done (ns)"),
        [(p, t // 1000) for p, t in policy_results.items()],
        title="Ablation A6: ready-queue policy on a flooded processor",
    )
    overhead_table = render_table(
        ("RTOS dispatch overhead", "processor1 cycles", "steps"),
        [
            ("none", free_cycles, free_steps),
            ("300 cycles/step", taxed_cycles, taxed_steps),
        ],
        title="RTOS overhead accounting on TUTMAC/TUTWLAN (50 ms)",
    )
    record_artifact(
        "ablation_a6_rtos.txt", table + "\n\n" + overhead_table
    )

    # priority scheduling serves the high-priority worker strictly earlier
    assert policy_results["priority"] < policy_results["fifo"]
    assert policy_results["priority"] < policy_results["round-robin"]
    # overhead accounting: the mean step cost rises by ~the configured
    # overhead (step counts drift slightly — the slower processor runs a
    # few fewer TDMA slots within the horizon, a real feedback effect)
    assert abs(taxed_steps - free_steps) <= 0.02 * free_steps
    mean_increase = taxed_cycles / taxed_steps - free_cycles / free_steps
    assert 0.8 * 300 <= mean_increase <= 1.2 * 300
    print()
    print(table)
    print()
    print(overhead_table)
